//! Property-based invariants over randomly generated knowledge bases,
//! exercised through the public facade.

use patternkb::datagen::queries::QueryGenerator;
use patternkb::datagen::{wiki, WikiConfig};
use patternkb::prelude::*;
use proptest::prelude::*;

fn tiny_engine(seed: u64, d: usize) -> SearchEngine {
    let g = wiki::wiki(&WikiConfig {
        entities: 200,
        types: 8,
        attrs_per_type: 3,
        attr_pool: 8,
        vocab: 50,
        avg_degree: 3.0,
        value_pool: 20,
        seed,
        ..WikiConfig::default()
    });
    EngineBuilder::new()
        .graph(g)
        .height(d)
        .threads(1)
        .build()
        .unwrap()
}

/// Run a pre-parsed query under an explicit algorithm with `max_rows`.
fn run(
    e: &SearchEngine,
    q: &Query,
    k: usize,
    max_rows: usize,
    algo: AlgorithmChoice,
) -> SearchResponse {
    e.respond(
        &SearchRequest::query(q.clone())
            .k(k)
            .max_rows(max_rows)
            .algorithm(algo),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every returned pattern respects the height bound, has a positive
    /// subtree count consistent with its rows, and rows match the pattern's
    /// structure.
    #[test]
    fn results_are_well_formed(seed in 0u64..50, m in 1usize..4, d in 2usize..4) {
        let e = tiny_engine(seed, d);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), d, seed);
        let Some(spec) = qg.anchored(m) else { return Ok(()) };
        let q = Query::from_ids(spec.keywords);
        let r = run(&e, &q, 50, 64, AlgorithmChoice::PatternEnum);
        for p in &r.patterns {
            prop_assert!(p.height() <= d, "height {} > d {}", p.height(), d);
            prop_assert!(p.num_trees >= 1);
            prop_assert!(p.trees.len() <= p.num_trees);
            prop_assert_eq!(p.pattern.len(), q.len());
            prop_assert!(p.score.is_finite());
            for t in &p.trees {
                prop_assert_eq!(t.paths.len(), q.len());
                for (path, pat) in t.paths.iter().zip(&p.pattern) {
                    // Node counts match the pattern (incl. implied leaf).
                    let expect = pat.num_nodes() + usize::from(pat.edge_terminal);
                    prop_assert_eq!(path.nodes.len(), expect);
                    prop_assert_eq!(path.edge_terminal, pat.edge_terminal);
                    // All paths share the tree's root.
                    prop_assert_eq!(path.nodes[0], t.root);
                    // Types along the path match the pattern's types.
                    for (j, &ty) in pat.types.iter().enumerate() {
                        prop_assert_eq!(e.graph().node_type(path.nodes[j]), ty);
                    }
                }
            }
        }
        // Ranking is monotone.
        for w in r.patterns.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    /// Pattern scores equal the sum of their subtrees' scores under Sum
    /// aggregation (checked on fully materialized answers).
    #[test]
    fn sum_aggregation_consistent(seed in 0u64..30) {
        let e = tiny_engine(seed, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, seed + 100);
        let Some(spec) = qg.anchored(2) else { return Ok(()) };
        let q = Query::from_ids(spec.keywords);
        let r = run(&e, &q, 30, usize::MAX, AlgorithmChoice::PatternEnum);
        for p in &r.patterns {
            prop_assert_eq!(p.trees.len(), p.num_trees);
            let sum: f64 = p.trees.iter().map(|t| t.score).sum();
            prop_assert!((sum - p.score).abs() < 1e-9 * sum.abs().max(1.0),
                "sum {} vs score {}", sum, p.score);
        }
    }

    /// Adding keywords can only shrink the candidate root set, and the
    /// subtree count of a (q ∪ {w}) query never exceeds |paths| times that
    /// of q — sanity of the intersection semantics.
    #[test]
    fn more_keywords_fewer_roots(seed in 0u64..30) {
        let e = tiny_engine(seed, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, seed + 200);
        let Some(spec) = qg.anchored(3) else { return Ok(()) };
        let q3 = Query::from_ids(spec.keywords.clone());
        let q2 = Query::from_ids(spec.keywords[..2].iter().copied());
        let r3 = run(&e, &q3, 10, 64, AlgorithmChoice::LinearEnum);
        let r2 = run(&e, &q2, 10, 64, AlgorithmChoice::LinearEnum);
        prop_assert!(r3.stats.candidate_roots <= r2.stats.candidate_roots);
    }

    /// Adding isolated entities (no edges) under frozen PageRank changes
    /// nothing for existing queries: identical patterns, identical scores.
    #[test]
    fn isolated_additions_do_not_change_answers(seed in 0u64..30, extra in 1usize..4) {
        let mut e = tiny_engine(seed, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, seed + 400);
        let Some(spec) = qg.anchored(2) else { return Ok(()) };
        let q = Query::from_ids(spec.keywords.clone());
        let before = run(&e, &q, 100, 64, AlgorithmChoice::LinearEnum);
        // Capture the canonical text now — keyword ids may shift with the
        // rebuilt vocabulary.
        let words: Vec<String> = spec.keywords.iter()
            .map(|&w| e.text().vocab().resolve(w).to_string()).collect();

        let t = e.graph().node_type(NodeId(0));
        let mut d = GraphDelta::new(e.graph());
        for i in 0..extra {
            d.add_node(t, &format!("isolated island {i}")).unwrap();
        }
        e.apply_delta(&d, PagerankMode::Frozen).unwrap();

        let q2 = e.parse(&words.join(" ")).unwrap();
        let after = run(&e, &q2, 100, 64, AlgorithmChoice::LinearEnum);

        prop_assert_eq!(before.patterns.len(), after.patterns.len());
        for (a, b) in before.patterns.iter().zip(&after.patterns) {
            prop_assert_eq!(a.num_trees, b.num_trees);
            prop_assert!((a.score - b.score).abs() < 1e-9 * a.score.abs().max(1.0));
        }
    }

    /// Removing an edge can only destroy paths: for any existing query the
    /// subtree count never increases and no new pattern appears (frozen
    /// PageRank keeps surviving scores identical).
    #[test]
    fn edge_removal_is_monotone(seed in 0u64..30, pick in 0usize..1000) {
        let mut e = tiny_engine(seed, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, seed + 500);
        let Some(spec) = qg.anchored(2) else { return Ok(()) };
        let words: Vec<String> = spec.keywords.iter()
            .map(|&w| e.text().vocab().resolve(w).to_string()).collect();
        let q = Query::from_ids(spec.keywords);
        let before = run(&e, &q, 1000, 64, AlgorithmChoice::LinearEnum);
        let before_keys: Vec<Vec<u32>> = before.patterns.iter().map(|p| p.key()).collect();
        let n_before = e.count_subtrees(&q);

        let edges: Vec<_> = e.graph().edges().collect();
        if edges.is_empty() { return Ok(()) }
        let victim = edges[pick % edges.len()];
        let mut d = GraphDelta::new(e.graph());
        d.remove_edge(victim.source, victim.attr, victim.target).unwrap();
        e.apply_delta(&d, PagerankMode::Frozen).unwrap();

        let Ok(q2) = e.parse(&words.join(" ")) else { return Ok(()) };
        let after = run(&e, &q2, 1000, 64, AlgorithmChoice::LinearEnum);
        prop_assert!(e.count_subtrees(&q2) <= n_before);
        prop_assert!(after.patterns.len() <= before.patterns.len());
        for p in &after.patterns {
            prop_assert!(
                before_keys.contains(&p.key()),
                "edge removal created pattern {:?}", p.key()
            );
        }
    }

    /// Strict mode returns a subset of the lax answers (same or fewer
    /// subtrees per pattern, never new patterns).
    #[test]
    fn strict_is_subset(seed in 0u64..30) {
        let e = tiny_engine(seed, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, seed + 300);
        let Some(spec) = qg.anchored(2) else { return Ok(()) };
        let q = Query::from_ids(spec.keywords);
        let lax = run(&e, &q, 1000, 64, AlgorithmChoice::LinearEnum);
        let strict = e
            .respond(
                &SearchRequest::query(q.clone())
                    .k(1000)
                    .strict_trees(true)
                    .algorithm(AlgorithmChoice::LinearEnum),
            )
            .unwrap();
        prop_assert!(strict.patterns.len() <= lax.patterns.len());
        prop_assert!(strict.stats.subtrees <= lax.stats.subtrees);
        for sp in &strict.patterns {
            let lp = lax.patterns.iter().find(|p| p.key() == sp.key());
            prop_assert!(lp.is_some(), "strict invented a pattern");
            prop_assert!(sp.num_trees <= lp.unwrap().num_trees);
        }
    }
}
