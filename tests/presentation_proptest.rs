//! Property tests for the user-facing output layers: CSV escaping must
//! round-trip arbitrary cell content, Markdown must stay table-shaped, and
//! MMR diversification must obey its contract on arbitrary inputs.

use proptest::prelude::*;

use patternkb::prelude::NodeId;
use patternkb::search::diversify::{diversify, DiversifyConfig};
use patternkb::search::presentation::PresentedTable;
use patternkb::search::result::RankedPattern;
use patternkb::search::subtree::ValidSubtree;

/// Minimal RFC-4180 parser used only to verify our writer.
fn parse_csv(s: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut chars = s.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        quoted = false;
                    }
                }
                _ => cell.push(c),
            }
        } else {
            match c {
                '"' if cell.is_empty() => quoted = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                _ => cell.push(c),
            }
        }
    }
    if !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

fn cell_strategy() -> impl Strategy<Value = String> {
    // Adversarial cell content: quotes, commas, newlines, unicode.
    proptest::string::string_regex("[a-zA-Z0-9 ,\"\n€ü|\\\\]{0,16}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csv_roundtrips_arbitrary_cells(
        ncols in 1usize..5,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec(cell_strategy(), 1..5), 0..6),
        headers in proptest::collection::vec("[a-z]{1,8}", 1..5),
    ) {
        let ncols = ncols.min(headers.len());
        let columns: Vec<String> = headers.into_iter().take(ncols).collect();
        let rows: Vec<Vec<String>> = raw_rows
            .into_iter()
            .map(|r| (0..ncols).map(|c| r.get(c).cloned().unwrap_or_default()).collect())
            .collect();
        let table = PresentedTable { columns: columns.clone(), rows: rows.clone() };
        let parsed = parse_csv(&table.to_csv());
        prop_assert_eq!(&parsed[0], &columns);
        prop_assert_eq!(parsed.len(), rows.len() + 1);
        for (want, got) in rows.iter().zip(&parsed[1..]) {
            prop_assert_eq!(want, got);
        }
    }

    #[test]
    fn markdown_is_table_shaped(
        rows in proptest::collection::vec(
            proptest::collection::vec(cell_strategy(), 2..4), 0..5),
    ) {
        let columns = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|r| (0..3).map(|c| r.get(c).cloned().unwrap_or_default()).collect())
            .collect();
        let md = PresentedTable { columns, rows: rows.clone() }.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        // Cells may contain raw newlines, which Markdown can't represent in
        // a pipe table; the guarantee is per-logical-row pipe framing.
        prop_assert!(lines[0].starts_with('|'));
        prop_assert!(lines[1].contains("---"));
        for l in &lines {
            if !l.is_empty() {
                // Unescaped pipes never leak from cell content.
                prop_assert!(!l.contains("\\|\\|") || l.contains("\\|"));
            }
        }
    }

    #[test]
    fn diversify_contract(
        scores in proptest::collection::vec(0.01f64..100.0, 0..12),
        roots in proptest::collection::vec(
            proptest::collection::vec(0u32..10, 0..6), 0..12),
        lambda in 0.0f64..=1.0,
        k in 0usize..15,
    ) {
        let n = scores.len().min(roots.len());
        let mut patterns: Vec<RankedPattern> = (0..n)
            .map(|i| RankedPattern {
                pattern: vec![],
                score: scores[i],
                num_trees: roots[i].len(),
                trees: roots[i]
                    .iter()
                    .map(|&r| ValidSubtree { root: NodeId(r), paths: vec![], score: scores[i] })
                    .collect(),
            })
            .collect();
        // Input arrives best-first, as search algorithms produce it.
        patterns.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let out = diversify(&patterns, &DiversifyConfig { lambda, k });

        // Contract: bounded size; selections are distinct input elements;
        // the best-scoring pattern always leads a non-empty selection.
        prop_assert_eq!(out.len(), k.min(n));
        if !out.is_empty() {
            prop_assert_eq!(out[0].score, patterns[0].score);
        }
        for p in &out {
            prop_assert!(patterns.iter().any(|x| x.score == p.score));
        }
        // λ = 1 degenerates to the input prefix.
        if lambda == 1.0 {
            for (a, b) in out.iter().zip(&patterns) {
                prop_assert_eq!(a.score, b.score);
            }
        }
    }
}
