//! Failure injection and adversarial edge cases across the whole stack:
//! corrupted snapshots must surface typed errors (never panics, never
//! silently-wrong graphs), and degenerate graph/query shapes must be
//! answered correctly.

use patternkb::graph::mutate::{GraphDelta, PagerankMode};
use patternkb::graph::snapshot as gsnap;
use patternkb::index::compress::CompressedPathIndexes;
use patternkb::prelude::*;

fn figure1_engine() -> SearchEngine {
    let (g, _) = patternkb::datagen::figure1();
    EngineBuilder::new().graph(g).threads(1).build().unwrap()
}

fn build(g: KnowledgeGraph, d: usize) -> SearchEngine {
    EngineBuilder::new()
        .graph(g)
        .height(d)
        .threads(1)
        .build()
        .unwrap()
}

fn run(e: &SearchEngine, q: &Query, k: usize, algo: AlgorithmChoice) -> SearchResponse {
    e.respond(&SearchRequest::query(q.clone()).k(k).algorithm(algo))
        .unwrap()
}

// ---------------------------------------------------------------------
// Graph snapshot corruption
// ---------------------------------------------------------------------

#[test]
fn graph_snapshot_truncation_every_prefix() {
    let (g, _) = patternkb::datagen::figure1();
    let bytes = gsnap::encode(&g);
    // Every strict prefix must decode to a typed error, not a panic.
    for cut in 0..bytes.len() {
        if let Ok(g2) = gsnap::decode(&bytes[..cut]) {
            // The only acceptable "success" on a prefix would be an
            // identical graph, which is impossible for a strict prefix of
            // a non-trivial snapshot.
            panic!(
                "prefix of {cut}/{} bytes decoded to a graph with {} nodes",
                bytes.len(),
                g2.num_nodes()
            );
        }
    }
}

#[test]
fn graph_snapshot_bad_magic_and_version() {
    let (g, _) = patternkb::datagen::figure1();
    let mut bytes = gsnap::encode(&g);
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xff;
    assert!(matches!(
        gsnap::decode(&wrong_magic),
        Err(gsnap::SnapshotError::BadMagic)
    ));
    // Version field follows the 4-byte magic (little-endian u32).
    bytes[4] = 0xee;
    assert!(matches!(
        gsnap::decode(&bytes),
        Err(gsnap::SnapshotError::BadVersion(_))
    ));
}

#[test]
fn graph_snapshot_single_bit_flips_never_panic() {
    let (g, _) = patternkb::datagen::figure1();
    let bytes = gsnap::encode(&g);
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x01;
        // Either a typed error or a structurally valid graph (flips inside
        // text payloads produce different-but-valid graphs). Crucially:
        // no panic and no out-of-range ids.
        if let Ok(g2) = gsnap::decode(&corrupted) {
            for v in g2.nodes() {
                for (_, t) in g2.out_edges(v) {
                    assert!(t.0 < g2.num_nodes() as u32, "dangling edge after flip {i}");
                }
            }
        }
    }
}

#[test]
fn graph_snapshot_roundtrip_after_mutation() {
    // Snapshots of delta-produced graphs are as valid as built ones.
    let (g, _) = patternkb::datagen::figure1();
    let comp = g.type_by_text("Company").unwrap();
    let mut d = GraphDelta::new(&g);
    d.add_node(comp, "Snapshot Corp").unwrap();
    let g2 = d.apply(&g, PagerankMode::Recompute).unwrap();
    let back = gsnap::decode(&gsnap::encode(&g2)).unwrap();
    assert_eq!(back.num_nodes(), g2.num_nodes());
    assert_eq!(back.num_edges(), g2.num_edges());
    let last = NodeId((back.num_nodes() - 1) as u32);
    assert_eq!(back.node_text(last), "Snapshot Corp");
}

// ---------------------------------------------------------------------
// Index snapshot / compressed-stream corruption
// ---------------------------------------------------------------------

#[test]
fn index_snapshot_truncation_is_an_error() {
    let e = figure1_engine();
    let dir = std::env::temp_dir().join("patternkb_failure_injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("idx.pkbi");
    e.save_index(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0, 1, 4, bytes.len() / 3, bytes.len() - 1] {
        let tpath = dir.join(format!("idx_cut_{cut}.pkbi"));
        std::fs::write(&tpath, &bytes[..cut]).unwrap();
        let (g, _) = patternkb::datagen::figure1();
        let res = EngineBuilder::new().graph(g).index_snapshot(&tpath).build();
        assert!(
            matches!(res, Err(Error::Io(_))),
            "truncated index at {cut} bytes must not load"
        );
        std::fs::remove_file(&tpath).ok();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn compressed_tier_detects_or_survives_corruption() {
    let e = figure1_engine();
    let mut comp = CompressedPathIndexes::compress(e.index());
    let w = e.text().lookup_word("database").unwrap();
    assert!(comp.corrupt_for_test(w, 3));
    // Must be an error or a decodable (different) list — never a panic.
    let _ = comp.decompress_word(w).expect("word exists");
}

// ---------------------------------------------------------------------
// Degenerate graphs
// ---------------------------------------------------------------------

#[test]
fn single_node_graph() {
    let mut b = GraphBuilder::new();
    let t = b.add_type("Lonely");
    b.add_node(t, "only one here");
    let e = build(b.build(), 3);
    let q = e.parse("lonely").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    assert_eq!(r.patterns.len(), 1);
    assert_eq!(r.patterns[0].num_trees, 1);
    let q = e.parse("only one").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    assert_eq!(r.patterns.len(), 1, "two keywords on one node still answer");
}

#[test]
fn self_loop_paths_stay_simple() {
    let mut b = GraphBuilder::new();
    let t = b.add_type("Node");
    let a = b.add_attr("loops to");
    let v = b.add_node(t, "ouroboros");
    b.add_edge(v, a, v);
    let e = build(b.build(), 4);
    // The self loop must not create infinite or repeated-node paths.
    let q = e.parse("ouroboros").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    for p in &r.patterns {
        for pat in &p.pattern {
            assert!(
                pat.num_nodes() <= 1,
                "self-loop leaked into a path: {pat:?}"
            );
        }
    }
    // The only occurrence of "loops" is on the self-loop edge, whose
    // edge-terminal "subtree" (v → v) is not a tree; the paper's subtrees
    // are simple, so the query correctly has zero answers.
    let q = e.parse("loops").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    assert!(r.patterns.is_empty());
    assert_eq!(e.count_subtrees(&q), 0);
}

#[test]
fn two_cycle_answers_bounded() {
    let mut b = GraphBuilder::new();
    let t = b.add_type("Station");
    let a = b.add_attr("next");
    let x = b.add_node(t, "alpha stop");
    let y = b.add_node(t, "beta stop");
    b.add_edge(x, a, y);
    b.add_edge(y, a, x);
    let e = build(b.build(), 4);
    let q = e.parse("alpha beta").unwrap();
    let r = run(&e, &q, 100, AlgorithmChoice::PatternEnum);
    // Paths are simple, so patterns have at most 2 nodes per path.
    assert!(!r.patterns.is_empty());
    for p in &r.patterns {
        for pat in &p.pattern {
            assert!(pat.num_nodes() <= 2);
        }
    }
    assert_eq!(e.count_patterns(&q), r.patterns.len() as u64);
}

#[test]
fn parallel_attribute_values() {
    // "Products: Windows, Bing" — one attribute, several edges.
    let mut b = GraphBuilder::new();
    let company = b.add_type("Company");
    let product = b.add_type("Product");
    let products = b.add_attr("products");
    let ms = b.add_node(company, "Redmond Giant");
    let win = b.add_node(product, "window system");
    let bing = b.add_node(product, "bing search");
    b.add_edge(ms, products, win);
    b.add_edge(ms, products, bing);
    let e = build(b.build(), 2);
    let q = e.parse("giant products").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    // One pattern (Company)(products); both product edges are subtrees.
    let top = r.top().unwrap();
    assert_eq!(top.num_trees, 2);
}

#[test]
fn unicode_text_is_searchable_by_ascii_tokens() {
    let mut b = GraphBuilder::new();
    let t = b.add_type("Künstler");
    let v = b.add_node(t, "Dvořák — composer (Antonín)");
    let a = b.add_attr("née");
    b.add_text_edge(v, a, "Zlonice čtyři");
    let e = build(b.build(), 2);
    // The tokenizer treats non-ASCII as separators; ASCII runs remain.
    let q = e.parse("composer").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    assert_eq!(r.patterns.len(), 1);
    let table = r.top_table().unwrap();
    assert!(table.rows[0].iter().any(|c| c.contains("Dvořák")));
}

#[test]
fn duplicate_keywords_are_honest() {
    // "database database" — the same word twice maps both query positions
    // to (possibly) the same path; answers must exist and agree across
    // algorithms.
    let e = figure1_engine();
    let q = e.parse("database database").unwrap();
    let a = run(&e, &q, 100, AlgorithmChoice::LinearEnum);
    let b = run(&e, &q, 100, AlgorithmChoice::PatternEnum);
    let c = run(&e, &q, 100, AlgorithmChoice::Baseline);
    assert!(!a.patterns.is_empty());
    assert_eq!(a.patterns.len(), b.patterns.len());
    assert_eq!(a.patterns.len(), c.patterns.len());
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x.key(), y.key());
    }
}

#[test]
fn d_equals_one_only_trivial_paths() {
    let e_d1 = {
        let (g, _) = patternkb::datagen::figure1();
        build(g, 1)
    };
    // With d = 1 only single-node (node-terminal) paths exist: no
    // edge-terminal matches (they'd imply a 2-node height), so "revenue"
    // (attribute-only) has no paths at all.
    // Parse may fail (keyword absent from the d=1 index) — also acceptable.
    if let Ok(q) = e_d1.parse("database software company revenue") {
        assert!(run(&e_d1, &q, 10, AlgorithmChoice::PatternEnum)
            .patterns
            .is_empty());
    }
    let q = e_d1.parse("database").unwrap();
    let r = run(&e_d1, &q, 10, AlgorithmChoice::PatternEnum);
    for p in &r.patterns {
        for pat in &p.pattern {
            assert_eq!(pat.height(), 1);
        }
    }
}

#[test]
fn k_zero_is_a_typed_error() {
    // The request route rejects k = 0 up front instead of running a
    // pointless search.
    let e = figure1_engine();
    let q = e.parse("database company").unwrap();
    for algo in [
        AlgorithmChoice::Baseline,
        AlgorithmChoice::PatternEnum,
        AlgorithmChoice::PatternEnumPruned,
        AlgorithmChoice::LinearEnum,
    ] {
        let res = e.respond(&SearchRequest::query(q.clone()).k(0).algorithm(algo));
        assert!(
            matches!(res, Err(Error::InvalidRequest(_))),
            "{algo:?} must reject k = 0"
        );
    }
}

#[test]
fn unanswerable_multi_keyword_query() {
    let e = figure1_engine();
    // Both words exist, but no root reaches both.
    let q = e.parse("oracle gates").unwrap();
    for algo in [
        AlgorithmChoice::Baseline,
        AlgorithmChoice::PatternEnum,
        AlgorithmChoice::PatternEnumPruned,
        AlgorithmChoice::LinearEnum,
    ] {
        let r = run(&e, &q, 10, algo);
        assert!(r.patterns.is_empty(), "{algo:?}");
    }
    assert_eq!(e.count_patterns(&q), 0);
    assert_eq!(e.count_subtrees(&q), 0);
}

// ---------------------------------------------------------------------
// Mutation edge cases through the engine
// ---------------------------------------------------------------------

#[test]
fn mutation_to_empty_answers_and_back() {
    let mut e = figure1_engine();
    let dev = e.graph().attr_by_text("Developer").unwrap();
    // Remove a Developer edge (an anchor of pattern P1), then restore it.
    let edges: Vec<_> = e.graph().edges().collect();
    let dev_edge = edges.iter().find(|ed| ed.attr == dev).copied().unwrap();
    let mut d = GraphDelta::new(e.graph());
    d.remove_edge(dev_edge.source, dev_edge.attr, dev_edge.target)
        .unwrap();
    let stats = e.apply_delta(&d, PagerankMode::Frozen).unwrap();
    assert!(stats.postings_dropped > 0);

    // Re-add it: answers must return.
    let mut d = GraphDelta::new(e.graph());
    d.add_edge(dev_edge.source, dev_edge.attr, dev_edge.target)
        .unwrap();
    e.apply_delta(&d, PagerankMode::Frozen).unwrap();
    let q = e.parse("database software company revenue").unwrap();
    let r = run(&e, &q, 10, AlgorithmChoice::PatternEnum);
    assert_eq!(r.patterns.len(), 9, "round-trip mutation restored answers");
}

#[test]
fn many_chained_deltas_stay_queryable() {
    let mut e = figure1_engine();
    for step in 0..8 {
        let g = e.graph();
        let comp = g.type_by_text("Company").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(g);
        let v = d
            .add_node(comp, &format!("database vendor {step}"))
            .unwrap();
        d.add_text_edge(v, rev, &format!("US$ {step} billion"))
            .unwrap();
        e.apply_delta(&d, PagerankMode::Frozen).unwrap();
    }
    assert_eq!(e.version(), 8);
    let q = e.parse("vendor revenue").unwrap();
    let r = run(&e, &q, 100, AlgorithmChoice::PatternEnum);
    assert!(!r.patterns.is_empty());
    let top = r.top().unwrap();
    assert_eq!(top.num_trees, 8, "every delta's vendor row answers");
}

#[test]
fn index_rebuild_equals_incremental_through_engine() {
    // End-to-end: after a batch of engine deltas, a from-scratch engine
    // over the same graph returns identical answers.
    let mut e = figure1_engine();
    let g = e.graph();
    let soft = g.type_by_text("Software").unwrap();
    let dev = g.attr_by_text("Developer").unwrap();
    let comp = g.type_by_text("Company").unwrap();
    let mut d = GraphDelta::new(g);
    let pg = d.add_node(soft, "PostgreSQL database").unwrap();
    let org = d.add_node(comp, "Global Dev Group").unwrap();
    d.add_edge(pg, dev, org).unwrap();
    e.apply_delta(&d, PagerankMode::Recompute).unwrap();

    let fresh = build(e.graph().clone(), 3);
    for text in ["database software", "database developer", "group"] {
        let q1 = e.parse(text).unwrap();
        let q2 = fresh.parse(text).unwrap();
        let r1 = run(&e, &q1, 100, AlgorithmChoice::PatternEnum);
        let r2 = run(&fresh, &q2, 100, AlgorithmChoice::PatternEnum);
        assert_eq!(r1.patterns.len(), r2.patterns.len(), "{text}");
        for (a, b) in r1.patterns.iter().zip(&r2.patterns) {
            assert!((a.score - b.score).abs() < 1e-9, "{text}");
            assert_eq!(a.num_trees, b.num_trees, "{text}");
        }
    }
}
