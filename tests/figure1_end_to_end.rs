//! Cross-crate integration: the paper's running example, exercised through
//! the public facade's request/response API only.

use patternkb::prelude::*;

fn engine(d: usize) -> SearchEngine {
    let (g, _) = patternkb::datagen::figure1();
    EngineBuilder::new()
        .graph(g)
        .height(d)
        .threads(1)
        .build()
        .unwrap()
}

fn run(e: &SearchEngine, text: &str, k: usize) -> SearchResponse {
    e.respond(
        &SearchRequest::text(text)
            .k(k)
            .algorithm(AlgorithmChoice::PatternEnum),
    )
    .unwrap()
}

#[test]
fn paper_query_reproduces_figures_2_and_3() {
    let e = engine(3);
    let r = run(&e, "database software company revenue", 10);

    // Figure 2(a): the top pattern is P1.
    let top = r.top().expect("answers exist");
    let shown = top.display(e.graph());
    assert!(shown.contains("(Software) (Genre) (Model)"));
    assert!(shown.contains("(Software) (Developer) (Company) (Revenue)"));

    // Figure 3: two rows, SQL Server and Oracle DB with their developers'
    // revenues — the table comes back on the response.
    let table = r.top_table().expect("tables align with patterns");
    assert_eq!(table.rows.len(), 2);
    let flat: Vec<&String> = table.rows.iter().flatten().collect();
    assert!(flat.iter().any(|c| *c == "SQL Server"));
    assert!(flat.iter().any(|c| *c == "Oracle DB"));
    assert!(flat.iter().any(|c| *c == "US$ 77 billion"));
    assert!(flat.iter().any(|c| *c == "US$ 37 billion"));
}

#[test]
fn example_24_scores_hold_exactly() {
    let e = engine(3);
    let r = run(&e, "database software company revenue", 100);
    // score(P1) = 2 × (4 · 3.5 / 8) = 3.5
    assert!((r.patterns[0].score - 3.5).abs() < 1e-9);
    // P2 (Book root): 4 · (1/6 + 1/6 + 1 + 1) / 7
    let p2 = r
        .patterns
        .iter()
        .find(|p| e.graph().type_text(p.pattern[0].root_type()) == "Book")
        .expect("P2 found");
    let expected = 4.0 * (1.0 / 6.0 + 1.0 / 6.0 + 1.0 + 1.0) / 7.0;
    assert!((p2.score - expected).abs() < 1e-9);
    // Example 2.4's conclusion: score(P1) > score(P2).
    assert!(r.patterns[0].score > p2.score);
}

#[test]
fn d2_misses_p1_like_the_paper_warns() {
    // §5.1: "We will miss some of [the best interpretations] for d = 2."
    // P1 needs a 3-node revenue path, so at d = 2 it cannot exist.
    let e = engine(2);
    match e.respond(
        &SearchRequest::text("database software company revenue")
            .k(100)
            .algorithm(AlgorithmChoice::PatternEnum),
    ) {
        Ok(r) => {
            for p in &r.patterns {
                assert!(p.height() <= 2);
            }
            assert!(
                r.top().map(|t| t.num_trees).unwrap_or(0) < 2,
                "P1's two-row table must be absent at d = 2"
            );
        }
        Err(Error::UnknownWords(_)) => {
            // Also acceptable: some keyword becomes unreachable at d = 2.
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn stemming_and_case_do_not_change_answers() {
    let e = engine(3);
    let ra = run(&e, "database software company revenue", 10);
    let rb = run(&e, "Databases SOFTWARE companies Revenues", 10);
    assert_eq!(ra.query, rb.query, "parsing canonicalizes to one query");
    assert_eq!(ra.patterns.len(), rb.patterns.len());
    for (x, y) in ra.patterns.iter().zip(&rb.patterns) {
        assert_eq!(x.key(), y.key());
    }
}

#[test]
fn keyword_order_does_not_change_answer_set() {
    let e = engine(3);
    let ra = run(&e, "database software company revenue", 100);
    let rb = run(&e, "revenue company software database", 100);
    assert_eq!(ra.patterns.len(), rb.patterns.len());
    // Scores are permutation-invariant (sums over keywords).
    let mut sa: Vec<f64> = ra.patterns.iter().map(|p| p.score).collect();
    let mut sb: Vec<f64> = rb.patterns.iter().map(|p| p.score).collect();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (x, y) in sa.iter().zip(&sb) {
        assert!((x - y).abs() < 1e-9);
    }
}
