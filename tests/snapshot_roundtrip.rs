//! Snapshots of generated datasets round-trip and produce identical search
//! results — guaranteeing that the bench harness's on-disk caching cannot
//! change any experiment.

use patternkb::datagen::{imdb, wiki, ImdbConfig, WikiConfig};
use patternkb::graph::snapshot;
use patternkb::prelude::*;

#[test]
fn wiki_snapshot_preserves_search_results() {
    let g = wiki::wiki(&WikiConfig::tiny(3));
    let decoded = snapshot::decode(&snapshot::encode(&g)).expect("roundtrip");
    let e1 = EngineBuilder::new().graph(g).threads(1).build().unwrap();
    let e2 = EngineBuilder::new()
        .graph(decoded)
        .threads(1)
        .build()
        .unwrap();

    // Same index shape.
    assert_eq!(e1.index().num_postings(), e2.index().num_postings());
    assert_eq!(e1.index().patterns().len(), e2.index().patterns().len());

    // Same answers for a few queries drawn from the vocabulary.
    let mut qg = patternkb::datagen::queries::QueryGenerator::new(e1.graph(), e1.text(), 3, 9);
    for _ in 0..5 {
        let Some(spec) = qg.anchored(2) else { continue };
        let q1 = Query::from_ids(spec.keywords.clone());
        // Re-parse by surface on the second engine (vocab ids must agree
        // because the text is identical).
        let q2 = e2.parse(&spec.surface.join(" ")).expect("same vocab");
        let r1 = e1
            .respond(
                &SearchRequest::query(q1)
                    .k(20)
                    .algorithm(AlgorithmChoice::PatternEnum),
            )
            .unwrap();
        let r2 = e2
            .respond(
                &SearchRequest::query(q2)
                    .k(20)
                    .algorithm(AlgorithmChoice::PatternEnum),
            )
            .unwrap();
        assert_eq!(r1.patterns.len(), r2.patterns.len());
        for (a, b) in r1.patterns.iter().zip(&r2.patterns) {
            assert!((a.score - b.score).abs() < 1e-9);
            assert_eq!(a.num_trees, b.num_trees);
        }
    }
}

#[test]
fn imdb_snapshot_roundtrips() {
    let g = imdb::imdb(&ImdbConfig::tiny(4));
    let decoded = snapshot::decode(&snapshot::encode(&g)).expect("roundtrip");
    assert_eq!(decoded.num_nodes(), g.num_nodes());
    assert_eq!(decoded.num_edges(), g.num_edges());
    for v in g.nodes() {
        assert_eq!(decoded.node_text(v), g.node_text(v));
        assert!((decoded.pagerank(v) - g.pagerank(v)).abs() < 1e-15);
    }
}
