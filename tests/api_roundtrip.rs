//! The new request/response API, exercised through the public facade:
//! default requests reproduce the old facade methods' answers on the
//! Figure-1 graph, `SharedEngine::respond` serves correctly while ingests
//! land, and every error path is a typed [`Error`], never a panic.

use patternkb::prelude::*;

fn figure1_engine() -> SearchEngine {
    let (g, _) = patternkb::datagen::figure1();
    EngineBuilder::new().graph(g).threads(1).build().unwrap()
}

// ---------------------------------------------------------------------
// Round-trip: request defaults vs. the deprecated facade methods.
// ---------------------------------------------------------------------

#[test]
#[allow(deprecated)]
fn request_defaults_round_trip_old_facade() {
    let e = figure1_engine();
    for text in [
        "database software company revenue",
        "database company",
        "revenue",
        "bill gates",
        "software",
    ] {
        let q = e.parse(text).unwrap();

        // Old: parse + search (PATTERNENUM) + per-pattern table calls.
        let old = e.search(&q, &SearchConfig::default());
        // New: one request; only the algorithm is pinned (the default
        // request routes through the planner, which may legitimately pick
        // a different-but-agreeing algorithm).
        let new = e
            .respond(&SearchRequest::text(text).algorithm(AlgorithmChoice::PatternEnum))
            .unwrap();

        assert_eq!(old.patterns.len(), new.patterns.len(), "{text}");
        for (a, b) in old.patterns.iter().zip(&new.patterns) {
            assert_eq!(a.key(), b.key(), "{text}");
            assert!((a.score - b.score).abs() < 1e-12, "{text}");
            assert_eq!(a.num_trees, b.num_trees, "{text}");
        }
        // Tables come back on the response, identical to engine.table().
        for (p, t) in new.patterns.iter().zip(&new.tables) {
            assert_eq!(&e.table(p), t, "{text}");
        }
        // The default SearchConfig and the default SearchRequest agree on
        // every knob they share.
        let req = SearchRequest::text(text);
        let cfg = SearchConfig::default();
        assert_eq!(req.k, cfg.k);
        assert_eq!(req.max_rows, cfg.max_rows);
        assert_eq!(req.strict_trees, cfg.strict_trees);
    }
}

#[test]
#[allow(deprecated)]
fn auto_request_round_trips_search_auto() {
    let e = figure1_engine();
    for text in ["database software company revenue", "database company"] {
        let q = e.parse(text).unwrap();
        let (old, old_algo) = e.search_auto(&q, &SearchConfig::top(10));
        let new = e.respond(&SearchRequest::text(text).k(10)).unwrap();
        assert!(new.planned);
        assert_eq!(
            format!("{old_algo:?}"),
            format!("{:?}", new.algorithm),
            "planner decision must agree"
        );
        assert_eq!(old.patterns.len(), new.patterns.len());
        for (a, b) in old.patterns.iter().zip(&new.patterns) {
            assert_eq!(a.key(), b.key());
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}

#[test]
#[allow(deprecated)]
fn batch_round_trips_search_batch() {
    let e = figure1_engine();
    let texts = ["database company", "revenue", "software"];
    let queries: Vec<Query> = texts.iter().map(|t| e.parse(t).unwrap()).collect();
    let old = e.search_batch(&queries, &SearchConfig::top(10), Algorithm::PatternEnum, 2);
    let requests: Vec<SearchRequest> = texts
        .iter()
        .map(|t| {
            SearchRequest::text(*t)
                .k(10)
                .algorithm(AlgorithmChoice::PatternEnum)
        })
        .collect();
    let new = e.respond_batch(&requests, 2);
    assert_eq!(old.len(), new.len());
    for (a, b) in old.iter().zip(&new) {
        let b = b.as_ref().unwrap();
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key());
        }
    }
}

// ---------------------------------------------------------------------
// SharedEngine::respond under concurrent ingest.
// ---------------------------------------------------------------------

#[test]
fn shared_respond_concurrency_smoke() {
    let (g, _) = patternkb::datagen::figure1();
    let service = EngineBuilder::new()
        .graph(g)
        .threads(1)
        .cache_capacity(64)
        .build_shared()
        .unwrap();

    const INGESTS: usize = 6;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let served = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Readers: cached and uncached requests against whatever version
        // is current.
        for _ in 0..3 {
            scope.spawn(|| {
                let req = SearchRequest::text("company revenue").k(10);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = service.respond(&req).expect("keywords always present");
                    assert!(!r.patterns.is_empty(), "every version answers");
                    served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Writer: stream ingests.
        scope.spawn(|| {
            for step in 0..INGESTS {
                let snap = service.snapshot();
                let g = snap.graph();
                let comp = g.type_by_text("Company").unwrap();
                let rev = g.attr_by_text("Revenue").unwrap();
                let mut d = GraphDelta::new(g);
                let v = d.add_node(comp, &format!("smoke vendor {step}")).unwrap();
                d.add_text_edge(v, rev, &format!("US$ {step} million"))
                    .unwrap();
                service.apply_delta(&d, PagerankMode::Frozen).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });

    assert_eq!(service.version(), INGESTS as u64);
    assert!(served.load(std::sync::atomic::Ordering::Relaxed) > 0);
    // Final state sees every ingested vendor.
    let r = service
        .respond(&SearchRequest::text("smoke vendor").k(100))
        .unwrap();
    assert_eq!(r.top().unwrap().num_trees, INGESTS);
    // The built-in cache was exercised and never served stale data: any
    // hit at an old version would have failed the readers' assertions.
    let stats = service.cache_stats();
    assert!(stats.hits + stats.misses > 0);
}

// ---------------------------------------------------------------------
// Error paths: typed, never panicking.
// ---------------------------------------------------------------------

#[test]
fn unknown_words_error_lists_canonical_forms() {
    let e = figure1_engine();
    match e.respond(&SearchRequest::text("database zzzzqqqq wwwwkkkk")) {
        Err(Error::UnknownWords(ws)) => {
            assert_eq!(ws, vec!["zzzzqqqq".to_string(), "wwwwkkkk".to_string()]);
        }
        other => panic!("expected UnknownWords, got {other:?}"),
    }
    // Same behavior through the serving handle.
    let (g, _) = patternkb::datagen::figure1();
    let shared = EngineBuilder::new()
        .graph(g)
        .threads(1)
        .build_shared()
        .unwrap();
    assert!(matches!(
        shared.respond(&SearchRequest::text("zzzzqqqq")),
        Err(Error::UnknownWords(_))
    ));
}

#[test]
fn empty_input_is_a_typed_error() {
    let e = figure1_engine();
    for text in ["", "   ", "... !!!", "\t\n"] {
        assert!(
            matches!(
                e.respond(&SearchRequest::text(text)),
                Err(Error::EmptyQuery)
            ),
            "{text:?} must be EmptyQuery"
        );
    }
    assert!(matches!(
        e.respond(&SearchRequest::query(Query { keywords: vec![] })),
        Err(Error::EmptyQuery)
    ));
    // Errors are displayable for user-facing surfaces.
    let msg = e.respond(&SearchRequest::text("")).unwrap_err().to_string();
    assert!(msg.contains("empty"));
}
