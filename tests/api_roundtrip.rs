//! The request/response API, exercised through the public facade:
//! requests answer consistently across algorithms, parsed/pre-parsed
//! inputs, batch and single routes, and shard counts;
//! `SharedEngine::respond` serves correctly while ingests land; and every
//! error path is a typed [`Error`], never a panic.

use patternkb::prelude::*;

fn figure1_engine() -> SearchEngine {
    let (g, _) = patternkb::datagen::figure1();
    EngineBuilder::new().graph(g).threads(1).build().unwrap()
}

// ---------------------------------------------------------------------
// Round-trip: text vs pre-parsed requests, tables, defaults.
// ---------------------------------------------------------------------

#[test]
fn text_and_parsed_requests_agree() {
    let e = figure1_engine();
    for text in [
        "database software company revenue",
        "database company",
        "revenue",
        "bill gates",
        "software",
    ] {
        let q = e.parse(text).unwrap();

        let via_query = e
            .respond(&SearchRequest::query(q).algorithm(AlgorithmChoice::PatternEnum))
            .unwrap();
        let via_text = e
            .respond(&SearchRequest::text(text).algorithm(AlgorithmChoice::PatternEnum))
            .unwrap();

        assert_eq!(via_query.patterns.len(), via_text.patterns.len(), "{text}");
        for (a, b) in via_query.patterns.iter().zip(&via_text.patterns) {
            assert_eq!(a.key(), b.key(), "{text}");
            assert!((a.score - b.score).abs() < 1e-12, "{text}");
            assert_eq!(a.num_trees, b.num_trees, "{text}");
        }
        // Tables come back on the response, identical to engine.table().
        for (p, t) in via_text.patterns.iter().zip(&via_text.tables) {
            assert_eq!(&e.table(p), t, "{text}");
        }
        // The default SearchConfig and the default SearchRequest agree on
        // every knob they share.
        let req = SearchRequest::text(text);
        let cfg = SearchConfig::default();
        assert_eq!(req.k, cfg.k);
        assert_eq!(req.max_rows, cfg.max_rows);
        assert_eq!(req.strict_trees, cfg.strict_trees);
    }
}

#[test]
fn auto_requests_agree_with_forced_choice() {
    let e = figure1_engine();
    for text in ["database software company revenue", "database company"] {
        let auto = e.respond(&SearchRequest::text(text).k(10)).unwrap();
        assert!(auto.planned);
        let choice = match auto.algorithm {
            Algorithm::Baseline => AlgorithmChoice::Baseline,
            Algorithm::PatternEnum => AlgorithmChoice::PatternEnum,
            Algorithm::PatternEnumPruned => AlgorithmChoice::PatternEnumPruned,
            Algorithm::LinearEnum => AlgorithmChoice::LinearEnum,
            Algorithm::LinearEnumTopK(_) => AlgorithmChoice::LinearEnumTopK,
        };
        let forced = e
            .respond(&SearchRequest::text(text).k(10).algorithm(choice))
            .unwrap();
        assert!(!forced.planned);
        assert_eq!(auto.patterns.len(), forced.patterns.len());
        for (a, b) in auto.patterns.iter().zip(&forced.patterns) {
            assert_eq!(a.key(), b.key());
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}

#[test]
fn batch_round_trips_sequential_responds() {
    let e = figure1_engine();
    let texts = ["database company", "revenue", "software"];
    let requests: Vec<SearchRequest> = texts
        .iter()
        .map(|t| {
            SearchRequest::text(*t)
                .k(10)
                .algorithm(AlgorithmChoice::PatternEnum)
        })
        .collect();
    let sequential: Vec<SearchResponse> = requests.iter().map(|r| e.respond(r).unwrap()).collect();
    let batched = e.respond_batch(&requests, 2);
    assert_eq!(sequential.len(), batched.len());
    for (a, b) in sequential.iter().zip(&batched) {
        let b = b.as_ref().unwrap();
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key());
        }
    }
}

// ---------------------------------------------------------------------
// Shard knob: rebuilds with different shard counts answer identically
// and never share cache entries.
// ---------------------------------------------------------------------

#[test]
fn shard_counts_answer_identically_through_the_facade() {
    let single = figure1_engine();
    let reference = single
        .respond(&SearchRequest::text("database software company revenue").k(100))
        .unwrap();
    for shards in [2usize, 5] {
        let (g, _) = patternkb::datagen::figure1();
        let e = EngineBuilder::new()
            .graph(g)
            .threads(1)
            .shards(shards)
            .build()
            .unwrap();
        assert_eq!(e.num_shards(), shards);
        let r = e
            .respond(&SearchRequest::text("database software company revenue").k(100))
            .unwrap();
        assert_eq!(r.patterns.len(), reference.patterns.len());
        for (a, b) in reference.patterns.iter().zip(&r.patterns) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "shards = {shards}");
        }
        // Only shards holding all keywords participate, so the split can
        // cover fewer than `shards` entries — but never more.
        assert!(!r.stats.per_shard.is_empty() && r.stats.per_shard.len() <= shards);
    }
}

// ---------------------------------------------------------------------
// SharedEngine::respond under concurrent ingest.
// ---------------------------------------------------------------------

#[test]
fn shared_respond_concurrency_smoke() {
    let (g, _) = patternkb::datagen::figure1();
    let service = EngineBuilder::new()
        .graph(g)
        .threads(1)
        .cache_capacity(64)
        .build_shared()
        .unwrap();

    const INGESTS: usize = 6;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let served = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Readers: cached and uncached requests against whatever version
        // is current.
        for _ in 0..3 {
            scope.spawn(|| {
                let req = SearchRequest::text("company revenue").k(10);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = service.respond(&req).expect("keywords always present");
                    assert!(!r.patterns.is_empty(), "every version answers");
                    served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Writer: stream ingests.
        scope.spawn(|| {
            for step in 0..INGESTS {
                let snap = service.snapshot();
                let g = snap.graph();
                let comp = g.type_by_text("Company").unwrap();
                let rev = g.attr_by_text("Revenue").unwrap();
                let mut d = GraphDelta::new(g);
                let v = d.add_node(comp, &format!("smoke vendor {step}")).unwrap();
                d.add_text_edge(v, rev, &format!("US$ {step} million"))
                    .unwrap();
                service.apply_delta(&d, PagerankMode::Frozen).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });

    assert_eq!(service.version(), INGESTS as u64);
    assert!(served.load(std::sync::atomic::Ordering::Relaxed) > 0);
    // Final state sees every ingested vendor.
    let r = service
        .respond(&SearchRequest::text("smoke vendor").k(100))
        .unwrap();
    assert_eq!(r.top().unwrap().num_trees, INGESTS);
    // The built-in cache was exercised and never served stale data: any
    // hit at an old version would have failed the readers' assertions.
    let stats = service.cache_stats();
    assert!(stats.hits + stats.misses > 0);
}

// ---------------------------------------------------------------------
// Error paths: typed, never panicking.
// ---------------------------------------------------------------------

#[test]
fn unknown_words_error_lists_canonical_forms() {
    let e = figure1_engine();
    match e.respond(&SearchRequest::text("database zzzzqqqq wwwwkkkk")) {
        Err(Error::UnknownWords(ws)) => {
            assert_eq!(ws, vec!["zzzzqqqq".to_string(), "wwwwkkkk".to_string()]);
        }
        other => panic!("expected UnknownWords, got {other:?}"),
    }
    // Same behavior through the serving handle.
    let (g, _) = patternkb::datagen::figure1();
    let shared = EngineBuilder::new()
        .graph(g)
        .threads(1)
        .build_shared()
        .unwrap();
    assert!(matches!(
        shared.respond(&SearchRequest::text("zzzzqqqq")),
        Err(Error::UnknownWords(_))
    ));
}

#[test]
fn empty_input_is_a_typed_error() {
    let e = figure1_engine();
    for text in ["", "   ", "... !!!", "\t\n"] {
        assert!(
            matches!(
                e.respond(&SearchRequest::text(text)),
                Err(Error::EmptyQuery)
            ),
            "{text:?} must be EmptyQuery"
        );
    }
    assert!(matches!(
        e.respond(&SearchRequest::query(Query { keywords: vec![] })),
        Err(Error::EmptyQuery)
    ));
    // Errors are displayable for user-facing surfaces.
    let msg = e.respond(&SearchRequest::text("")).unwrap_err().to_string();
    assert!(msg.contains("empty"));
}
