//! Cross-crate property: all four algorithms agree on random synthetic
//! knowledge bases — the paper's correctness claims (Theorems 3 and 4)
//! checked end to end.

use patternkb::datagen::queries::QueryGenerator;
use patternkb::datagen::{imdb, wiki, ImdbConfig, WikiConfig};
use patternkb::prelude::*;

fn check_agreement(engine: &SearchEngine, queries: &[Query]) {
    let cfg = SearchConfig {
        max_rows: 4,
        ..SearchConfig::top(1_000)
    };
    for q in queries {
        let reference = engine.search_with(q, &cfg, Algorithm::LinearEnum);
        for algo in [
            Algorithm::Baseline,
            Algorithm::PatternEnum,
            Algorithm::PatternEnumPruned,
            Algorithm::LinearEnumTopK(SamplingConfig::exact()),
        ] {
            let other = engine.search_with(q, &cfg, algo);
            assert_eq!(
                reference.patterns.len(),
                other.patterns.len(),
                "{algo:?} pattern count diverged on {q:?}"
            );
            for (a, b) in reference.patterns.iter().zip(&other.patterns) {
                assert_eq!(a.key(), b.key(), "{algo:?} order diverged on {q:?}");
                assert_eq!(a.num_trees, b.num_trees);
                let tol = 1e-9 * a.score.abs().max(1.0);
                assert!(
                    (a.score - b.score).abs() < tol,
                    "{algo:?} score diverged on {q:?}: {} vs {}",
                    a.score,
                    b.score
                );
            }
        }
        // Counting agrees with enumeration.
        assert_eq!(engine.count_patterns(q), reference.patterns.len() as u64);
        assert_eq!(engine.count_subtrees(q), reference.stats.subtrees as u64);
    }
}

#[test]
fn agreement_on_wiki_like_kb() {
    for seed in [1u64, 2] {
        let g = wiki::wiki(&WikiConfig::tiny(seed));
        let engine = SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 0 });
        let mut qg = QueryGenerator::new(engine.graph(), engine.text(), 3, seed);
        let queries: Vec<Query> = (0..10)
            .filter_map(|i| qg.anchored(1 + (i % 4)))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        assert!(!queries.is_empty());
        check_agreement(&engine, &queries);
    }
}

#[test]
fn agreement_on_imdb_like_kb() {
    let g = imdb::imdb(&ImdbConfig::tiny(3));
    let engine = SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 0 });
    let mut qg = QueryGenerator::new(engine.graph(), engine.text(), 3, 5);
    let queries: Vec<Query> = (0..8)
        .filter_map(|i| qg.anchored(1 + (i % 3)))
        .map(|s| Query::from_ids(s.keywords))
        .collect();
    assert!(!queries.is_empty());
    check_agreement(&engine, &queries);
}

#[test]
fn agreement_at_different_heights() {
    let g = wiki::wiki(&WikiConfig::tiny(7));
    for d in [2usize, 4] {
        let engine =
            SearchEngine::build(g.clone(), SynonymTable::new(), &BuildConfig { d, threads: 0 });
        let mut qg = QueryGenerator::new(engine.graph(), engine.text(), d, 11);
        let queries: Vec<Query> = (0..6)
            .filter_map(|_| qg.anchored(2))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        check_agreement(&engine, &queries);
    }
}

#[test]
fn strict_mode_agreement_across_algorithms() {
    // Strict tree filtering must be applied identically by every algorithm.
    let g = wiki::wiki(&WikiConfig::tiny(13));
    let engine = SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 0 });
    let mut qg = QueryGenerator::new(engine.graph(), engine.text(), 3, 17);
    let cfg = SearchConfig {
        strict_trees: true,
        max_rows: 4,
        ..SearchConfig::top(1_000)
    };
    for _ in 0..6 {
        let Some(spec) = qg.anchored(3) else { continue };
        let q = Query::from_ids(spec.keywords);
        let reference = engine.search_with(&q, &cfg, Algorithm::LinearEnum);
        for algo in [Algorithm::Baseline, Algorithm::PatternEnum] {
            let other = engine.search_with(&q, &cfg, algo);
            assert_eq!(reference.patterns.len(), other.patterns.len());
            for (a, b) in reference.patterns.iter().zip(&other.patterns) {
                assert_eq!(a.key(), b.key());
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }
}

#[test]
fn planner_auto_matches_ground_truth() {
    // Whatever the planner picks must answer identically to LINEARENUM
    // (the planner only routes among exact algorithms at these scales).
    let g = wiki::wiki(&WikiConfig::tiny(37));
    let engine = SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 0 });
    let mut qg = QueryGenerator::new(engine.graph(), engine.text(), 3, 39);
    let cfg = SearchConfig {
        max_rows: 4,
        ..SearchConfig::top(100)
    };
    for i in 0..10 {
        let Some(spec) = qg.anchored(1 + (i % 4)) else { continue };
        let q = Query::from_ids(spec.keywords);
        let truth = engine.search_with(&q, &cfg, Algorithm::LinearEnum);
        let (auto, algo) = engine.search_auto(&q, &cfg);
        assert_eq!(truth.patterns.len(), auto.patterns.len(), "{algo:?} on {q:?}");
        for (a, b) in truth.patterns.iter().zip(&auto.patterns) {
            assert_eq!(a.key(), b.key());
            let tol = 1e-9 * a.score.abs().max(1.0);
            assert!((a.score - b.score).abs() < tol);
        }
    }
}

#[test]
fn pruned_pattern_enum_matches_exact_at_small_k() {
    // The admissible-bound pruner must return the *identical* top-k even
    // when k is small enough for the threshold to bite.
    let g = wiki::wiki(&WikiConfig::tiny(29));
    let engine = SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 0 });
    let mut qg = QueryGenerator::new(engine.graph(), engine.text(), 3, 31);
    let mut pruned_total = 0usize;
    for i in 0..12 {
        let Some(spec) = qg.anchored(1 + (i % 4)) else { continue };
        let q = Query::from_ids(spec.keywords);
        for k in [1usize, 3, 10] {
            let cfg = SearchConfig {
                max_rows: 4,
                ..SearchConfig::top(k)
            };
            let exact = engine.search_with(&q, &cfg, Algorithm::PatternEnum);
            let pruned = engine.search_with(&q, &cfg, Algorithm::PatternEnumPruned);
            assert_eq!(exact.patterns.len(), pruned.patterns.len(), "k={k} {q:?}");
            for (a, b) in exact.patterns.iter().zip(&pruned.patterns) {
                assert_eq!(a.key(), b.key(), "k={k} {q:?}");
                let tol = 1e-9 * a.score.abs().max(1.0);
                assert!((a.score - b.score).abs() < tol);
                assert_eq!(a.num_trees, b.num_trees);
            }
            pruned_total += pruned.stats.combos_pruned;
        }
    }
    assert!(pruned_total > 0, "pruning never fired on the workload");
}

#[test]
fn sampled_topk_subset_of_exact_patterns() {
    // Sampling may *miss* patterns but must never invent them, and reported
    // scores are exact (Algorithm 4 line 11).
    let g = wiki::wiki(&WikiConfig::tiny(19));
    let engine = SearchEngine::build(g, SynonymTable::new(), &BuildConfig { d: 3, threads: 0 });
    let mut qg = QueryGenerator::new(engine.graph(), engine.text(), 3, 23);
    let cfg = SearchConfig::top(50);
    for _ in 0..5 {
        let Some(spec) = qg.anchored(2) else { continue };
        let q = Query::from_ids(spec.keywords);
        let exact = engine.search_with(&q, &cfg, Algorithm::LinearEnum);
        let sampled = engine.search_with(
            &q,
            &cfg,
            Algorithm::LinearEnumTopK(SamplingConfig::new(0, 0.3, 7)),
        );
        for p in &sampled.patterns {
            let reference = exact
                .patterns
                .iter()
                .find(|e| e.key() == p.key());
            // With k=50 the exact list may be truncated; only check patterns
            // that fit (score high enough to appear).
            if let Some(reference) = reference {
                let tol = 1e-9 * reference.score.abs().max(1.0);
                assert!((reference.score - p.score).abs() < tol);
                assert_eq!(reference.num_trees, p.num_trees);
            }
        }
    }
}
