//! Cross-crate property: all four algorithms agree on random synthetic
//! knowledge bases — the paper's correctness claims (Theorems 3 and 4)
//! checked end to end through the request/response API.

use patternkb::datagen::queries::QueryGenerator;
use patternkb::datagen::{imdb, wiki, ImdbConfig, WikiConfig};
use patternkb::prelude::*;

fn engine(g: KnowledgeGraph, d: usize) -> SearchEngine {
    EngineBuilder::new().graph(g).height(d).build().unwrap()
}

fn run(e: &SearchEngine, q: &Query, k: usize, algo: AlgorithmChoice) -> SearchResponse {
    e.respond(
        &SearchRequest::query(q.clone())
            .k(k)
            .max_rows(4)
            .algorithm(algo),
    )
    .unwrap()
}

fn check_agreement(engine: &SearchEngine, queries: &[Query]) {
    for q in queries {
        let reference = run(engine, q, 1_000, AlgorithmChoice::LinearEnum);
        for algo in [
            AlgorithmChoice::Baseline,
            AlgorithmChoice::PatternEnum,
            AlgorithmChoice::PatternEnumPruned,
            AlgorithmChoice::LinearEnumTopK,
        ] {
            let other = run(engine, q, 1_000, algo);
            assert_eq!(
                reference.patterns.len(),
                other.patterns.len(),
                "{algo:?} pattern count diverged on {q:?}"
            );
            for (a, b) in reference.patterns.iter().zip(&other.patterns) {
                assert_eq!(a.key(), b.key(), "{algo:?} order diverged on {q:?}");
                assert_eq!(a.num_trees, b.num_trees);
                let tol = 1e-9 * a.score.abs().max(1.0);
                assert!(
                    (a.score - b.score).abs() < tol,
                    "{algo:?} score diverged on {q:?}: {} vs {}",
                    a.score,
                    b.score
                );
            }
        }
        // Counting agrees with enumeration.
        assert_eq!(engine.count_patterns(q), reference.patterns.len() as u64);
        assert_eq!(engine.count_subtrees(q), reference.stats.subtrees as u64);
    }
}

#[test]
fn agreement_on_wiki_like_kb() {
    for seed in [1u64, 2] {
        let e = engine(wiki::wiki(&WikiConfig::tiny(seed)), 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, seed);
        let queries: Vec<Query> = (0..10)
            .filter_map(|i| qg.anchored(1 + (i % 4)))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        assert!(!queries.is_empty());
        check_agreement(&e, &queries);
    }
}

#[test]
fn agreement_on_imdb_like_kb() {
    let e = engine(imdb::imdb(&ImdbConfig::tiny(3)), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 5);
    let queries: Vec<Query> = (0..8)
        .filter_map(|i| qg.anchored(1 + (i % 3)))
        .map(|s| Query::from_ids(s.keywords))
        .collect();
    assert!(!queries.is_empty());
    check_agreement(&e, &queries);
}

#[test]
fn agreement_at_different_heights() {
    let g = wiki::wiki(&WikiConfig::tiny(7));
    for d in [2usize, 4] {
        let e = engine(g.clone(), d);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), d, 11);
        let queries: Vec<Query> = (0..6)
            .filter_map(|_| qg.anchored(2))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        check_agreement(&e, &queries);
    }
}

#[test]
fn strict_mode_agreement_across_algorithms() {
    // Strict tree filtering must be applied identically by every algorithm.
    let e = engine(wiki::wiki(&WikiConfig::tiny(13)), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 17);
    let strict = |q: &Query, algo: AlgorithmChoice| {
        e.respond(
            &SearchRequest::query(q.clone())
                .k(1_000)
                .max_rows(4)
                .strict_trees(true)
                .algorithm(algo),
        )
        .unwrap()
    };
    for _ in 0..6 {
        let Some(spec) = qg.anchored(3) else { continue };
        let q = Query::from_ids(spec.keywords);
        let reference = strict(&q, AlgorithmChoice::LinearEnum);
        for algo in [AlgorithmChoice::Baseline, AlgorithmChoice::PatternEnum] {
            let other = strict(&q, algo);
            assert_eq!(reference.patterns.len(), other.patterns.len());
            for (a, b) in reference.patterns.iter().zip(&other.patterns) {
                assert_eq!(a.key(), b.key());
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }
}

#[test]
fn planner_auto_matches_ground_truth() {
    // Whatever the planner picks must answer identically to LINEARENUM
    // (the planner only routes among exact algorithms at these scales).
    let e = engine(wiki::wiki(&WikiConfig::tiny(37)), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 39);
    for i in 0..10 {
        let Some(spec) = qg.anchored(1 + (i % 4)) else {
            continue;
        };
        let q = Query::from_ids(spec.keywords);
        let truth = run(&e, &q, 100, AlgorithmChoice::LinearEnum);
        let auto = e
            .respond(&SearchRequest::query(q.clone()).k(100).max_rows(4))
            .unwrap();
        assert!(auto.planned, "default request routes through the planner");
        assert_eq!(
            truth.patterns.len(),
            auto.patterns.len(),
            "{:?} on {q:?}",
            auto.algorithm
        );
        for (a, b) in truth.patterns.iter().zip(&auto.patterns) {
            assert_eq!(a.key(), b.key());
            let tol = 1e-9 * a.score.abs().max(1.0);
            assert!((a.score - b.score).abs() < tol);
        }
    }
}

#[test]
fn pruned_pattern_enum_matches_exact_at_small_k() {
    // The admissible-bound pruner must return the *identical* top-k even
    // when k is small enough for the threshold to bite.
    let e = engine(wiki::wiki(&WikiConfig::tiny(29)), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 31);
    let mut pruned_total = 0usize;
    for i in 0..12 {
        let Some(spec) = qg.anchored(1 + (i % 4)) else {
            continue;
        };
        let q = Query::from_ids(spec.keywords);
        for k in [1usize, 3, 10] {
            let exact = run(&e, &q, k, AlgorithmChoice::PatternEnum);
            let pruned = run(&e, &q, k, AlgorithmChoice::PatternEnumPruned);
            assert_eq!(exact.patterns.len(), pruned.patterns.len(), "k={k} {q:?}");
            for (a, b) in exact.patterns.iter().zip(&pruned.patterns) {
                assert_eq!(a.key(), b.key(), "k={k} {q:?}");
                let tol = 1e-9 * a.score.abs().max(1.0);
                assert!((a.score - b.score).abs() < tol);
                assert_eq!(a.num_trees, b.num_trees);
            }
            pruned_total += pruned.stats.combos_pruned;
        }
    }
    assert!(pruned_total > 0, "pruning never fired on the workload");
}

#[test]
fn sampled_topk_subset_of_exact_patterns() {
    // Sampling may *miss* patterns but must never invent them, and reported
    // scores are exact (Algorithm 4 line 11).
    let e = engine(wiki::wiki(&WikiConfig::tiny(19)), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 23);
    for _ in 0..5 {
        let Some(spec) = qg.anchored(2) else { continue };
        let q = Query::from_ids(spec.keywords);
        let exact = run(&e, &q, 50, AlgorithmChoice::LinearEnum);
        let sampled = e
            .respond(
                &SearchRequest::query(q.clone())
                    .k(50)
                    .algorithm(AlgorithmChoice::LinearEnumTopK)
                    .sampling(SamplingConfig::new(0, 0.3, 7)),
            )
            .unwrap();
        for p in &sampled.patterns {
            let reference = exact.patterns.iter().find(|e| e.key() == p.key());
            // With k=50 the exact list may be truncated; only check patterns
            // that fit (score high enough to appear).
            if let Some(reference) = reference {
                let tol = 1e-9 * reference.score.abs().max(1.0);
                assert!((reference.score - p.score).abs() < tol);
                assert_eq!(reference.num_trees, p.num_trees);
            }
        }
    }
}
