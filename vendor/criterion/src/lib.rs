//! Minimal stand-in for crates.io `criterion`.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `warm_up_time` / `throughput`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by timed
//! batches, reporting median time per iteration to stdout. There is no
//! statistical analysis, HTML report, or outlier rejection; these benches
//! are for relative, same-machine comparison. Filters passed on the
//! command line (`cargo bench -- <substr>`) select benchmarks by name.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration; only recorded for display.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark's display identity inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The harness entry point handed to each bench function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>`; ignore criterion CLI flags (--bench,
        // --save-baseline, …) so invocations written for the real crate
        // still run.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (the shim uses it as timed batches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for measurement.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget before measurement.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Record the work each iteration performs (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a routine.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Times closures handed to it by the benchmark routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32);
        let budget = self.measurement_time.max(Duration::from_millis(1));
        let per_sample = budget / self.sample_size as u32;
        let iters_per_sample = match per_iter {
            Some(p) if p > Duration::ZERO => {
                (per_sample.as_nanos() / p.as_nanos().max(1)).clamp(1, 1_000_000) as u64
            }
            _ => 1,
        };
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        println!(
            "{name:<60} median {:>12.3?}  [{:.3?} .. {:.3?}]",
            median, lo, hi
        );
    }
}

/// Collect bench functions into one named runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut ran = 0usize;
        group.bench_function("f", |b| {
            ran += 1;
            b.iter(|| black_box(2u64 + 2));
        });
        group.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
            warm_up_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |_b| ran = true);
        group.finish();
        assert!(!ran);
    }
}
