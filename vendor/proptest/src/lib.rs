//! Minimal stand-in for crates.io `proptest`.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the `proptest` API its property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`, integer
//!   ranges, tuples, [`collection::vec`], [`bool::ANY`], [`any`], and a
//!   regex-subset string strategy ([`string::string_regex`], also invoked
//!   by using a `&str` literal as a strategy);
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`) plus
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`].
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (deterministic across runs), and there is **no shrinking** — a failing
//! case reports the generated inputs verbatim. That is a weaker debugging
//! experience but identical acceptance semantics: any bug a generated
//! input exposes still fails the suite.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The per-test RNG handed to strategies.
pub type TestRng = SmallRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy, produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe subset of [`Strategy`].
pub trait DynStrategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Generate one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value {
        self.generate(rng)
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain generation, selected by type: `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in: property tests on codecs care about
                // 0 / MAX far more than a uniform draw would surface them.
                match rng.gen_range(0u32..16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    _ => rng.gen::<$t>(),
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Mirror of `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Mirror of `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification for [`vec`]: an exact length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy yielding vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of `proptest::string`.
pub mod string {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Why a pattern was rejected by the shim's regex subset.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported generation regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One parsed regex element: what to emit, how many times.
    #[derive(Clone, Debug)]
    enum Node {
        /// A fixed character.
        Literal(char),
        /// One character drawn from a class (`[a-z0-9 ]`).
        Class(Vec<(char, char)>),
        /// A parenthesized sub-pattern.
        Group(Vec<(Node, usize, usize)>),
    }

    /// A generator for the regex subset the tests use: literals, escapes,
    /// character classes with ranges, groups, and `{m,n}` / `{n}` / `?` /
    /// `*` / `+` repetition (star/plus capped at 8 repeats).
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        nodes: Vec<(Node, usize, usize)>,
    }

    /// Parse `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_sequence(&mut chars, pattern, false)?;
        if chars.next().is_some() {
            return Err(Error(format!("unbalanced ')' in {pattern:?}")));
        }
        Ok(RegexGeneratorStrategy { nodes })
    }

    type CharStream<'a> = std::iter::Peekable<std::str::Chars<'a>>;

    fn parse_sequence(
        chars: &mut CharStream<'_>,
        pattern: &str,
        in_group: bool,
    ) -> Result<Vec<(Node, usize, usize)>, Error> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            let node = match c {
                ')' if in_group => break,
                ')' => return Err(Error(format!("unbalanced ')' in {pattern:?}"))),
                '(' => {
                    chars.next();
                    let inner = parse_sequence(chars, pattern, true)?;
                    if chars.next() != Some(')') {
                        return Err(Error(format!("unclosed '(' in {pattern:?}")));
                    }
                    Node::Group(inner)
                }
                '[' => {
                    chars.next();
                    Node::Class(parse_class(chars, pattern)?)
                }
                '\\' => {
                    chars.next();
                    let escaped = chars
                        .next()
                        .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?;
                    Node::Literal(unescape(escaped))
                }
                '.' => {
                    chars.next();
                    // "Any char": printable ASCII plus a sprinkle of
                    // multi-byte ranges so UTF-8 handling gets exercised.
                    Node::Class(vec![(' ', '~'), ('¡', 'ÿ'), ('α', 'ω'), ('€', '€')])
                }
                '|' | '*' | '+' | '?' | '{' | '^' | '$' => {
                    return Err(Error(format!(
                        "unsupported regex construct {c:?} in {pattern:?}"
                    )))
                }
                _ => {
                    chars.next();
                    Node::Literal(c)
                }
            };
            let (min, max) = parse_repeat(chars, pattern)?;
            nodes.push((node, min, max));
        }
        Ok(nodes)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut CharStream<'_>, pattern: &str) -> Result<Vec<(char, char)>, Error> {
        let mut ranges = Vec::new();
        loop {
            let c = match chars.next() {
                None => return Err(Error(format!("unclosed '[' in {pattern:?}"))),
                Some(']') => break,
                Some('\\') => unescape(
                    chars
                        .next()
                        .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?,
                ),
                Some(c) => c,
            };
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next(); // the '-'
                match ahead.peek() {
                    Some(&']') | None => ranges.push((c, c)), // literal trailing '-'
                    Some(&hi) => {
                        chars.next();
                        chars.next();
                        if hi < c {
                            return Err(Error(format!("inverted range in {pattern:?}")));
                        }
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            return Err(Error(format!("empty class in {pattern:?}")));
        }
        Ok(ranges)
    }

    fn parse_repeat(chars: &mut CharStream<'_>, pattern: &str) -> Result<(usize, usize), Error> {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        let (lo, hi) = match spec.split_once(',') {
                            None => {
                                let n = spec
                                    .parse()
                                    .map_err(|_| Error(format!("bad repeat in {pattern:?}")))?;
                                (n, n)
                            }
                            Some((lo, hi)) => (
                                lo.parse()
                                    .map_err(|_| Error(format!("bad repeat in {pattern:?}")))?,
                                hi.parse()
                                    .map_err(|_| Error(format!("bad repeat in {pattern:?}")))?,
                            ),
                        };
                        if hi < lo {
                            return Err(Error(format!("inverted repeat in {pattern:?}")));
                        }
                        return Ok((lo, hi));
                    }
                    spec.push(c);
                }
                Err(Error(format!("unclosed '{{' in {pattern:?}")))
            }
            _ => Ok((1, 1)),
        }
    }

    fn emit(nodes: &[(Node, usize, usize)], rng: &mut TestRng, out: &mut String) {
        for (node, min, max) in nodes {
            let n = rng.gen_range(*min..=*max);
            for _ in 0..n {
                match node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo),
                        );
                    }
                    Node::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            emit(&self.nodes, rng, &mut out);
            out
        }
    }
}

/// A `&str` literal used as a strategy is a generation regex, exactly as
/// in real proptest. Panics on an unsupported pattern (real proptest
/// surfaces this at generation time too).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("{e}"))
            .generate(rng)
    }
}

/// Runner configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case failed or was rejected (subset of the real enum; the
/// shim only ever needs "a value the body bailed on").
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Run one property closure across `config.cases` deterministic cases.
/// On panic or `Err`, fails after printing the generated inputs (no
/// shrinking).
pub fn run_property<V: std::fmt::Debug + Clone>(
    config: &ProptestConfig,
    test_name: &str,
    strategy: &impl Strategy<Value = V>,
    property: impl Fn(V) -> Result<(), TestCaseError>,
) {
    // Deterministic per-test seed: stable across runs and machines.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(hash);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(value.clone())));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(reject)) => {
                eprintln!(
                    "proptest case {case}/{} rejected for {test_name} with input:\n  {value:?}",
                    config.cases
                );
                panic!("proptest case failed: {reject}");
            }
            Err(panic) => {
                eprintln!(
                    "proptest case {case}/{} failed for {test_name} with input:\n  {value:?}",
                    config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Assert inside a property (shim: plain panic, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (shim: plain panic, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (shim: plain panic, no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose uniformly among several strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The strategy produced by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Wrap pre-boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Define property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, ys in proptest::collection::vec(0u8..4, 0..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::run_property(
                    &config,
                    stringify!($name),
                    &strategy,
                    // Real proptest bodies may `return Ok(())` early; the
                    // trailing Ok covers falling off the end.
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// One-import convenience, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_conforming_strings() {
        let mut rng = crate::TestRng::seed_from_u64(9);
        use rand::SeedableRng;
        let strat = crate::string::string_regex("[a-z]{1,6}( [a-z]{1,6}){0,2}").unwrap();
        for _ in 0..200 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty());
            let words: Vec<&str> = s.split(' ').collect();
            assert!(words.len() <= 3);
            for w in words {
                assert!((1..=6).contains(&w.len()), "bad word {w:?} in {s:?}");
                assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn regex_escapes_and_classes() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(5);
        let strat = crate::string::string_regex("[a-zA-Z0-9 ,\"\n€ü|\\\\]{0,16}").unwrap();
        for _ in 0..100 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 16);
        }
        assert!(crate::string::string_regex("a|b").is_err());
        assert!(crate::string::string_regex("[a-z").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_ranges_and_vecs(
            (a, b) in (0u32..10, 5usize..7),
            xs in crate::collection::vec(0u8..4, 2..9),
            flag in crate::bool::ANY,
            full in any::<u64>(),
        ) {
            prop_assert!(a < 10);
            prop_assert_eq!(b / 6, b - 5 - (b % 6) / 6 * 5);
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 4));
            let _ = (flag, full);
        }

        #[test]
        fn oneof_and_flat_map(
            v in (1usize..4).prop_flat_map(|n| crate::collection::vec(
                prop_oneof![Just(0usize), 5usize..8],
                n,
            ))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x == 0 || (5..8).contains(&x)));
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        crate::run_property(
            &ProptestConfig::with_cases(16),
            "failing_property_panics",
            &(0u32..10),
            |x| {
                assert!(x > 100);
                Ok(())
            },
        );
    }
}
