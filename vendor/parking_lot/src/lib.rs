//! Minimal stand-in for crates.io `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: [`Mutex`] and [`RwLock`] with the `parking_lot`
//! calling convention — `lock()`/`read()`/`write()` return guards directly
//! (no poisoning `Result`). A poisoned std lock is recovered by taking the
//! inner guard: the data is still protected, and panicking lock holders in
//! this codebase abort the test anyway.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

/// A readers–writer lock whose `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire the exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
