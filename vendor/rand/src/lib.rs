//! Minimal stand-in for crates.io `rand` 0.8.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset it uses: [`Rng::gen_range`] over half-open integer ranges,
//! [`Rng::gen`] for uniform floats/ints/bools, and a seedable small RNG.
//! The generator is xoshiro256++ seeded via splitmix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets. Exact streams
//! are not guaranteed to match crates.io `rand`; everything in this
//! workspace only relies on determinism for a fixed seed, not on specific
//! draws.

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`] (stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range sampling (stand-in for `rand`'s `SampleRange<T>`). The element
/// type is a trait parameter, not an associated type, so type inference
/// can flow from how the result is *used* back into the range literal —
/// `1950usize + rng.gen_range(0..5)` must infer `Range<usize>`, exactly as
/// with crates.io `rand`.
pub trait SampleRange<T> {
    /// Draw uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the plain variant is irrelevant at u64 width for
                // the spans used here, and it keeps the shim branch-free.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full u64-wide domain: every 64-bit draw is uniform.
                    return <$t as Standard>::sample(rng);
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sampling {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_sampling!(f32, f64);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value uniformly over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A biased coin: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed from one `u64` (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for synthetic data.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.gen::<u64>() == c.gen::<u64>()).count();
        assert!(same < 4, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn full_range_hits_extremes_eventually() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0u8..4) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
