//! Minimal, dependency-free stand-in for the crates.io `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `bytes` API the codebase actually uses: the
//! [`Buf`]/[`BufMut`] little-endian cursor traits and owned [`Bytes`]/
//! [`BytesMut`] buffers. Semantics match `bytes` 1.x for this subset;
//! reading past the end panics, exactly like the real crate.

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copy the next `len` bytes into an owned [`Bytes`] and advance.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write cursor appending to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An owned, immutable byte buffer consumed front-to-back.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// The unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// The unread bytes, copied out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append raw bytes (mirrors `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// The written bytes, copied out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Written length so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(1234);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(2.5);
        w.put_slice(b"xyz");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vec_is_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(9);
        assert_eq!(v, 9u32.to_le_bytes());
    }
}
