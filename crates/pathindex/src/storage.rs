//! Out-of-core index storage: the snapshot **v5** format and the
//! [`IndexStorage`] trait behind [`crate::word_index::IndexShard`].
//!
//! Every earlier snapshot tier (`PKBI` raw, `PKBC` compressed) is decoded
//! into heap structures in full before the first query — boot pays a
//! whole-index decode and resident memory equals the decoded index. This
//! module adds a second tier that keeps the snapshot storage-resident:
//!
//! * **v5 container** (`PKB5` magic — deliberately distinct from both
//!   `PKBI`/`PKBC` images and `PKBC` checkpoints, see `docs/FORMATS.md`):
//!   an offset-table layout whose sections are 8-byte aligned and whose
//!   per-word payloads are exactly the v4 adaptive posting streams of
//!   [`crate::compress`] (all three root-column codecs, skip entries and
//!   suffix score bounds included, bit-for-bit);
//! * **[`Region`]**: where the container bytes live — a read-only file
//!   mapping on Unix, or a heap buffer (non-Unix fallback, tests, and
//!   checkpoint blobs) — behind one borrowing interface;
//! * **[`MappedStorage`]**: opens a region by parsing only the header,
//!   bounds, pattern keys and lexicon (O(words), not O(postings)); stream
//!   bytes are *borrowed in place* and a word's postings are decoded into
//!   a cached [`WordPathIndex`] only when the first query touches the
//!   word. Boot cost and resident set are decoupled from index size.
//!
//! All reads go through byte-slice little-endian conversions — never
//! pointer casts — so the layout is alignment-safe on every target and a
//! hostile file can at worst produce a typed
//! [`SnapshotError`] (with the byte offset of the damage), never a panic
//! or undefined behavior.
//!
//! The normative byte-level specification lives in `docs/FORMATS.md`
//! ("Snapshot v5"); change that document first when bumping the version.

use crate::compress::{decode_stream, CompressError, CompressedWordIndex, StreamLayout};
use crate::pattern::{PatternId, PatternSet};
use crate::word_index::{IndexShard, PathIndexes, WordPathIndex};
use patternkb_graph::snapshot::{invalid_data, SnapshotError};
use patternkb_graph::{FxHashMap, WordId};
use std::sync::{Arc, OnceLock};

/// Magic of the v5 storage-resident snapshot container. Fresh — not a
/// third `PKBC` — so checkpoint files, compressed images, and v5
/// snapshots can never be confused by a reader.
pub const MAGIC_V5: &[u8; 4] = b"PKB5";
const VERSION_V5: u32 = 1;
/// Fixed header: magic, version, d, nshards, file length, then the
/// 4-entry section directory of `(offset, len)` u64 pairs.
const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8 + 4 * 16;
/// Bytes of one fixed-width lexicon entry.
const LEX_ENTRY_LEN: usize = 32;

// ---------------------------------------------------------------------
// Which tier serves a query.
// ---------------------------------------------------------------------

/// Which storage tier backs the path indexes of an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// Everything decoded into heap structures at load time (the classic
    /// tier; required for indexes built in memory).
    #[default]
    Heap,
    /// A v5 snapshot read in place from a [`Region`] (file mapping or
    /// owned buffer), per-word decode deferred to first query touch.
    Mmap,
}

impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageBackend::Heap => write!(f, "heap"),
            StorageBackend::Mmap => write!(f, "mmap"),
        }
    }
}

impl std::str::FromStr for StorageBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(StorageBackend::Heap),
            "mmap" => Ok(StorageBackend::Mmap),
            other => Err(format!("unknown storage backend {other:?} (heap|mmap)")),
        }
    }
}

// ---------------------------------------------------------------------
// The storage trait: one word-index provider per shard.
// ---------------------------------------------------------------------

/// One shard's word → posting-index provider: the seam between the query
/// algorithms (which consume `&WordPathIndex` borrows) and where those
/// postings physically live. Two implementations exist — [`HeapStorage`]
/// (owned, fully decoded) and [`MappedStorage`] (storage-resident v5,
/// decode-on-first-touch) — and both must serve **bit-identical** answers
/// (asserted by the cross-backend equivalence suites in `patternkb_search`).
pub trait IndexStorage: Send + Sync {
    /// Which tier this is (drives `/metrics` and boot logs).
    fn backend(&self) -> StorageBackend;
    /// The per-word index for `w`, if the shard holds postings for it.
    /// On the mapped tier this decodes (and caches) the word's stream on
    /// first touch; a corrupt stream makes the word unavailable here —
    /// use [`IndexStorage::prepare`] first to surface the typed error.
    fn word(&self, w: WordId) -> Option<&WordPathIndex>;
    /// Whether the shard holds postings for `w` (never decodes).
    fn contains(&self, w: WordId) -> bool;
    /// All word ids with postings in this shard, ascending.
    fn word_ids(&self) -> Vec<WordId>;
    /// Number of words with postings in this shard.
    fn num_words(&self) -> usize;
    /// Total postings in this shard (from metadata; never decodes).
    fn num_postings(&self) -> usize;
    /// Approximate **resident** bytes: what this shard holds on the heap
    /// right now (for the mapped tier: the lexicon plus only the words
    /// decoded so far — not the file).
    fn heap_bytes(&self) -> usize;
    /// Ensure `w` is decoded (no-op when absent or on the heap tier),
    /// surfacing a corrupt stream as the typed error the query path
    /// reports instead of silently missing a word.
    fn prepare(&self, w: WordId) -> Result<(), SnapshotError>;
}

/// The classic tier: every word fully decoded and owned on the heap.
#[derive(Default)]
pub struct HeapStorage {
    pub(crate) words: FxHashMap<WordId, WordPathIndex>,
}

impl HeapStorage {
    /// Wrap an already-decoded word map.
    pub fn new(words: FxHashMap<WordId, WordPathIndex>) -> Self {
        HeapStorage { words }
    }
}

impl IndexStorage for HeapStorage {
    fn backend(&self) -> StorageBackend {
        StorageBackend::Heap
    }
    fn word(&self, w: WordId) -> Option<&WordPathIndex> {
        self.words.get(&w)
    }
    fn contains(&self, w: WordId) -> bool {
        self.words.contains_key(&w)
    }
    fn word_ids(&self) -> Vec<WordId> {
        let mut ids: Vec<WordId> = self.words.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
    fn num_words(&self) -> usize {
        self.words.len()
    }
    fn num_postings(&self) -> usize {
        self.words.values().map(WordPathIndex::len).sum()
    }
    fn heap_bytes(&self) -> usize {
        self.words
            .values()
            .map(WordPathIndex::heap_bytes)
            .sum::<usize>()
            + self.words.len() * 48
    }
    fn prepare(&self, _w: WordId) -> Result<(), SnapshotError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Region: where the container bytes live.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    //! Hand-rolled libc bindings for the two calls we need (the workspace
    //! stays dependency-free; the `libc` crate is deliberately absent).
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// `MAP_FAILED` is `(void *) -1`.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only file mapping (Unix only). Unmapped on drop.
#[cfg(unix)]
struct MmapFile {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never mutated or remapped after
// creation; shared immutable access from any thread is sound.
#[cfg(unix)]
unsafe impl Send for MmapFile {}
#[cfg(unix)]
unsafe impl Sync for MmapFile {}

#[cfg(unix)]
impl Drop for MmapFile {
    fn drop(&mut self) {
        // SAFETY: ptr/len are exactly what mmap returned.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

enum RegionInner {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped(MmapFile),
}

/// Where an opened snapshot's bytes live: a read-only file mapping, or a
/// heap buffer (the small pluggable page source behind the mapped tier —
/// used on non-Unix targets, in tests, and for checkpoint blobs that are
/// already in memory). Either way the container is *borrowed*, not
/// decoded: [`MappedStorage`] reads lexicon and stream bytes in place.
pub struct Region {
    inner: RegionInner,
}

impl Region {
    /// Wrap an owned byte buffer (checkpoint blobs, tests, fallback).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Region {
            inner: RegionInner::Owned(bytes),
        }
    }

    /// Map `path` read-only. On Unix this is `mmap(PROT_READ,
    /// MAP_PRIVATE)` — boot touches only the pages it parses; elsewhere
    /// the file is read into a heap buffer (same semantics, no paging).
    pub fn map_file(path: &std::path::Path) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Ok(Region::from_vec(Vec::new()));
            }
            // SAFETY: fd is a freshly opened readable file, length is the
            // file's current size; a MAP_FAILED return is handled below.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::map_failed() {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Region {
                inner: RegionInner::Mapped(MmapFile { ptr, len }),
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Region::from_vec(std::fs::read(path)?))
        }
    }

    /// The region's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            RegionInner::Owned(v) => v,
            #[cfg(unix)]
            RegionInner::Mapped(m) => {
                // SAFETY: the mapping is PROT_READ, lives as long as self,
                // and spans exactly `len` bytes.
                unsafe { std::slice::from_raw_parts(m.ptr as *const u8, m.len) }
            }
        }
    }

    /// Whether the bytes come from a file mapping (vs a heap buffer).
    pub fn is_file_mapping(&self) -> bool {
        match &self.inner {
            RegionInner::Owned(_) => false,
            #[cfg(unix)]
            RegionInner::Mapped(_) => true,
        }
    }
}

// ---------------------------------------------------------------------
// v5 writer.
// ---------------------------------------------------------------------

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

fn pad8(buf: &mut Vec<u8>) {
    while buf.len() % 8 != 0 {
        buf.push(0);
    }
}

/// Serialize built indexes into the v5 storage-resident container.
/// Per-word payloads are the v4 adaptive streams of [`crate::compress`],
/// so the posting encoding (and its compression) is shared bit-for-bit
/// with the `PKBC` tier; the container adds the offset table that makes
/// in-place reads possible.
pub fn encode_v5(idx: &PathIndexes) -> Vec<u8> {
    // Per-(shard, word) streams in lexicon order: ascending shard, then
    // ascending word within the shard.
    let mut streams: Vec<(u32, WordId, CompressedWordIndex)> = Vec::new();
    for (s, shard) in idx.shards().iter().enumerate() {
        let mut words: Vec<(WordId, &WordPathIndex)> = shard.iter_words().collect();
        words.sort_by_key(|(w, _)| *w);
        for (w, widx) in words {
            streams.push((s as u32, w, CompressedWordIndex::from_word_index(widx)));
        }
    }

    let nshards = idx.num_shards();
    let bounds_off = HEADER_LEN;
    let bounds_len = 4 * (nshards + 1);

    let mut patterns_bytes: Vec<u8> = Vec::new();
    patterns_bytes.extend_from_slice(&(idx.patterns().len() as u32).to_le_bytes());
    for i in 0..idx.patterns().len() {
        let key = idx.patterns().key(PatternId(i as u32));
        patterns_bytes.extend_from_slice(&(key.len() as u32).to_le_bytes());
        for &v in key {
            patterns_bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    let patterns_off = align8(bounds_off + bounds_len);
    let patterns_len = patterns_bytes.len();

    let lex_off = align8(patterns_off + patterns_len);
    let lex_len = 8 + LEX_ENTRY_LEN * streams.len();
    let streams_off = align8(lex_off + lex_len);

    // Assign each stream its absolute, 8-aligned offset.
    let mut at = streams_off;
    let mut placed: Vec<(u32, WordId, usize, &CompressedWordIndex)> =
        Vec::with_capacity(streams.len());
    for (s, w, c) in &streams {
        placed.push((*s, *w, at, c));
        at = align8(at + c.stream_bytes().len());
    }
    let file_len = at;

    let mut buf: Vec<u8> = Vec::with_capacity(file_len);
    buf.extend_from_slice(MAGIC_V5);
    buf.extend_from_slice(&VERSION_V5.to_le_bytes());
    buf.extend_from_slice(&(idx.d() as u32).to_le_bytes());
    buf.extend_from_slice(&(nshards as u32).to_le_bytes());
    buf.extend_from_slice(&(file_len as u64).to_le_bytes());
    let streams_len = file_len - streams_off;
    for (off, len) in [
        (bounds_off, bounds_len),
        (patterns_off, patterns_len),
        (lex_off, lex_len),
        (streams_off, streams_len),
    ] {
        buf.extend_from_slice(&(off as u64).to_le_bytes());
        buf.extend_from_slice(&(len as u64).to_le_bytes());
    }
    debug_assert_eq!(buf.len(), HEADER_LEN);

    for &b in idx.bounds() {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    pad8(&mut buf);
    debug_assert_eq!(buf.len(), patterns_off);
    buf.extend_from_slice(&patterns_bytes);
    pad8(&mut buf);
    debug_assert_eq!(buf.len(), lex_off);

    buf.extend_from_slice(&(placed.len() as u64).to_le_bytes());
    for (s, w, off, c) in &placed {
        buf.extend_from_slice(&w.0.to_le_bytes());
        buf.extend_from_slice(&s.to_le_bytes());
        buf.extend_from_slice(&(*off as u64).to_le_bytes());
        buf.extend_from_slice(&(c.stream_bytes().len() as u64).to_le_bytes());
        buf.extend_from_slice(&(c.len() as u32).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
    }
    pad8(&mut buf);
    debug_assert_eq!(buf.len(), streams_off);

    for (_, _, off, c) in &placed {
        debug_assert_eq!(buf.len(), *off);
        buf.extend_from_slice(c.stream_bytes());
        pad8(&mut buf);
    }
    debug_assert_eq!(buf.len(), file_len);
    buf
}

/// Write a v5 snapshot of `idx` to `path`.
pub fn save_v5(idx: &PathIndexes, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode_v5(idx))
}

/// Whether `data` starts with the v5 magic.
pub fn is_v5(data: &[u8]) -> bool {
    data.len() >= 4 && &data[..4] == MAGIC_V5
}

// ---------------------------------------------------------------------
// v5 parser (shared by the mapped open and the heap decode).
// ---------------------------------------------------------------------

/// One lexicon row of an opened container (this shard's slice of it).
#[derive(Clone, Copy, Debug)]
struct LexEntry {
    word: WordId,
    /// Absolute byte offset of the word's adaptive stream.
    offset: u64,
    /// Exact stream length in bytes (alignment padding excluded).
    len: u64,
    num_postings: u32,
}

/// The parsed frame of a v5 container: everything except the posting
/// streams, which stay as untouched byte ranges.
struct ParsedV5 {
    d: usize,
    bounds: Vec<u32>,
    patterns: PatternSet,
    /// Per shard, the lexicon entries owned by that shard (word-sorted).
    shard_entries: Vec<Vec<LexEntry>>,
}

fn take(data: &[u8], pos: usize, n: usize) -> Result<&[u8], SnapshotError> {
    if pos + n > data.len() {
        return Err(SnapshotError::Truncated { offset: data.len() });
    }
    Ok(&data[pos..pos + n])
}

fn read_u32(data: &[u8], pos: usize) -> Result<u32, SnapshotError> {
    Ok(u32::from_le_bytes(take(data, pos, 4)?.try_into().unwrap()))
}

fn read_u64(data: &[u8], pos: usize) -> Result<u64, SnapshotError> {
    Ok(u64::from_le_bytes(take(data, pos, 8)?.try_into().unwrap()))
}

fn parse_v5(data: &[u8]) -> Result<ParsedV5, SnapshotError> {
    if data.len() < 4 {
        return Err(SnapshotError::Truncated { offset: data.len() });
    }
    if &data[..4] != MAGIC_V5 {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(data, 4)?;
    if version != VERSION_V5 {
        return Err(SnapshotError::BadVersion(version));
    }
    let d = read_u32(data, 8)? as usize;
    if d == 0 || d > crate::build::MAX_D {
        return Err(SnapshotError::BadReference { offset: 8 });
    }
    let nshards = read_u32(data, 12)? as usize;
    if nshards == 0 {
        return Err(SnapshotError::BadReference { offset: 12 });
    }
    let file_len = read_u64(data, 16)? as usize;
    if file_len > data.len() {
        return Err(SnapshotError::Truncated { offset: data.len() });
    }
    if file_len < data.len() || file_len < HEADER_LEN {
        return Err(SnapshotError::BadReference { offset: 16 });
    }

    // Section directory: in-range, 8-aligned, ascending.
    let mut sections = [(0usize, 0usize); 4];
    for (i, s) in sections.iter_mut().enumerate() {
        let at = 24 + 16 * i;
        let off = read_u64(data, at)? as usize;
        let len = read_u64(data, at + 8)? as usize;
        let Some(end) = off.checked_add(len) else {
            return Err(SnapshotError::BadReference { offset: at });
        };
        if off % 8 != 0 || off < HEADER_LEN || end > file_len {
            return Err(SnapshotError::BadReference { offset: at });
        }
        *s = (off, len);
    }
    let [(bounds_off, bounds_len), (pat_off, pat_len), (lex_off, lex_len), (str_off, str_len)] =
        sections;

    // Shard bounds.
    if bounds_len != 4 * (nshards + 1) {
        return Err(SnapshotError::BadReference { offset: bounds_off });
    }
    let mut bounds = Vec::with_capacity(nshards + 1);
    for i in 0..=nshards {
        bounds.push(read_u32(data, bounds_off + 4 * i)?);
    }
    if bounds[0] != 0
        || *bounds.last().expect("non-empty") != u32::MAX
        || bounds.windows(2).any(|w| w[0] > w[1])
    {
        return Err(SnapshotError::BadReference { offset: bounds_off });
    }

    // Pattern keys: id = intern position, like every other tier.
    let pat_end = pat_off + pat_len;
    let npatterns = read_u32(data, pat_off)? as usize;
    let mut patterns = PatternSet::new();
    let mut key: Vec<u32> = Vec::new();
    let mut at = pat_off + 4;
    for expected in 0..npatterns {
        let len = read_u32(data, at)? as usize;
        if len == 0 || len > 2 * crate::build::MAX_D + 2 || at + 4 + 4 * len > pat_end {
            return Err(SnapshotError::BadReference { offset: at });
        }
        key.clear();
        for k in 0..len {
            key.push(read_u32(data, at + 4 + 4 * k)?);
        }
        let id = patterns.intern_key(&key);
        if id.0 as usize != expected {
            return Err(SnapshotError::BadReference { offset: at });
        }
        at += 4 + 4 * len;
    }
    if at > pat_end {
        return Err(SnapshotError::Truncated { offset: pat_end });
    }

    // Lexicon: fixed-width entries sorted strictly by (shard, word), each
    // pointing at an 8-aligned stream range inside the streams section.
    let nentries = read_u64(data, lex_off)? as usize;
    let expect_len = nentries
        .checked_mul(LEX_ENTRY_LEN)
        .and_then(|n| n.checked_add(8));
    if expect_len != Some(lex_len) {
        return Err(SnapshotError::BadReference { offset: lex_off });
    }
    let mut shard_entries: Vec<Vec<LexEntry>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut prev: Option<(u32, u32)> = None;
    for i in 0..nentries {
        let at = lex_off + 8 + LEX_ENTRY_LEN * i;
        let word = read_u32(data, at)?;
        let shard = read_u32(data, at + 4)? as usize;
        let offset = read_u64(data, at + 8)?;
        let len = read_u64(data, at + 16)?;
        let num_postings = read_u32(data, at + 24)?;
        if shard >= nshards {
            return Err(SnapshotError::BadReference { offset: at });
        }
        if prev.is_some_and(|p| p >= (shard as u32, word)) {
            // Strictly ascending (shard, word): no duplicates, and every
            // shard's slice is contiguous and word-sorted.
            return Err(SnapshotError::BadReference { offset: at });
        }
        prev = Some((shard as u32, word));
        let Some(end) = offset.checked_add(len) else {
            return Err(SnapshotError::BadReference { offset: at });
        };
        if offset % 8 != 0 || (offset as usize) < str_off || end as usize > str_off + str_len {
            return Err(SnapshotError::BadReference { offset: at });
        }
        shard_entries[shard].push(LexEntry {
            word: WordId(word),
            offset,
            len,
            num_postings,
        });
    }

    Ok(ParsedV5 {
        d,
        bounds,
        patterns,
        shard_entries,
    })
}

/// Decode one lexicon entry's stream from the container bytes, with the
/// same validation as the heap tiers: the adaptive stream must decode
/// exactly, every root must lie in the shard's range, and every pattern
/// id must resolve in the shared pattern set. Errors carry the absolute
/// byte offset of the damaged stream.
fn decode_entry(
    data: &[u8],
    e: &LexEntry,
    root_lo: u32,
    root_hi: u32,
    npatterns: u32,
) -> Result<WordPathIndex, SnapshotError> {
    let at = e.offset as usize;
    let buf = &data[at..at + e.len as usize];
    let (widx, _blocks) =
        decode_stream(buf, e.num_postings, StreamLayout::Adaptive).map_err(|err| match err {
            CompressError::Truncated => SnapshotError::Truncated { offset: at },
            CompressError::Corrupt(_) => SnapshotError::BadReference { offset: at },
        })?;
    for p in widx.postings_pattern_first() {
        if p.pattern.0 >= npatterns
            || p.root.0 < root_lo
            || (root_hi != u32::MAX && p.root.0 >= root_hi)
        {
            return Err(SnapshotError::BadReference { offset: at });
        }
    }
    Ok(widx)
}

// ---------------------------------------------------------------------
// The mapped backend.
// ---------------------------------------------------------------------

/// One shard's view of an opened v5 container: the parsed lexicon slice
/// plus a per-word decode cache. Stream bytes are borrowed from the
/// shared [`Region`]; a word's postings are decoded into the cache on
/// first touch and reused for the life of the index.
pub struct MappedStorage {
    region: Arc<Region>,
    entries: Vec<LexEntry>,
    /// Decode cache, parallel to `entries`. Errors are cached too, so a
    /// damaged stream is decoded (and fails) once, deterministically.
    slots: Vec<OnceLock<Result<WordPathIndex, SnapshotError>>>,
    root_lo: u32,
    root_hi: u32,
    npatterns: u32,
    num_postings: usize,
}

impl MappedStorage {
    fn slot(&self, w: WordId) -> Option<usize> {
        self.entries.binary_search_by_key(&w, |e| e.word).ok()
    }

    fn decoded(&self, i: usize) -> &Result<WordPathIndex, SnapshotError> {
        self.slots[i].get_or_init(|| {
            decode_entry(
                self.region.bytes(),
                &self.entries[i],
                self.root_lo,
                self.root_hi,
                self.npatterns,
            )
        })
    }
}

impl IndexStorage for MappedStorage {
    fn backend(&self) -> StorageBackend {
        StorageBackend::Mmap
    }
    fn word(&self, w: WordId) -> Option<&WordPathIndex> {
        let i = self.slot(w)?;
        self.decoded(i).as_ref().ok()
    }
    fn contains(&self, w: WordId) -> bool {
        self.slot(w).is_some()
    }
    fn word_ids(&self) -> Vec<WordId> {
        self.entries.iter().map(|e| e.word).collect()
    }
    fn num_words(&self) -> usize {
        self.entries.len()
    }
    fn num_postings(&self) -> usize {
        self.num_postings
    }
    fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<LexEntry>()
            + self
                .slots
                .iter()
                .filter_map(|s| s.get())
                .filter_map(|r| r.as_ref().ok())
                .map(WordPathIndex::heap_bytes)
                .sum::<usize>()
    }
    fn prepare(&self, w: WordId) -> Result<(), SnapshotError> {
        match self.slot(w) {
            None => Ok(()),
            Some(i) => self.decoded(i).as_ref().map(|_| ()).map_err(|e| *e),
        }
    }
}

/// Open a v5 container over `region` as storage-backed [`PathIndexes`]:
/// parse header, bounds, patterns and lexicon (O(words)); defer every
/// posting decode to first query touch.
pub fn open_region(region: Region) -> Result<PathIndexes, SnapshotError> {
    let parsed = parse_v5(region.bytes())?;
    let region = Arc::new(region);
    let npatterns = parsed.patterns.len() as u32;
    let mut shards = Vec::with_capacity(parsed.shard_entries.len());
    for (s, entries) in parsed.shard_entries.into_iter().enumerate() {
        let num_postings = entries.iter().map(|e| e.num_postings as usize).sum();
        let slots = (0..entries.len()).map(|_| OnceLock::new()).collect();
        shards.push(IndexShard::from_storage(Box::new(MappedStorage {
            region: Arc::clone(&region),
            entries,
            slots,
            root_lo: parsed.bounds[s],
            root_hi: parsed.bounds[s + 1],
            npatterns,
            num_postings,
        })));
    }
    Ok(PathIndexes::new(
        parsed.d,
        parsed.patterns,
        parsed.bounds,
        shards,
    ))
}

/// Open a v5 snapshot *file* on the mapped tier: `mmap` the file
/// read-only (heap buffer on non-Unix) and defer posting decode to
/// cursor traversal. This is the near-instant boot path — cost is
/// O(lexicon), not O(postings).
pub fn open_mapped(path: &std::path::Path) -> std::io::Result<PathIndexes> {
    let region = Region::map_file(path)?;
    open_region(region).map_err(|e| invalid_data(path, e))
}

/// Open v5 container *bytes* (e.g. a checkpoint's index blob) on the
/// mapped tier without copying them again: the buffer becomes the
/// region, per-word decode stays deferred.
pub fn open_bytes(bytes: Vec<u8>) -> Result<PathIndexes, SnapshotError> {
    open_region(Region::from_vec(bytes))
}

/// Decode a v5 container fully into the heap tier (every word decoded
/// eagerly) — the compatibility path that keeps v5 files readable by
/// heap-backed deployments, and the reference the mapped tier is tested
/// bit-identical against.
pub fn decode_v5(data: &[u8]) -> Result<PathIndexes, SnapshotError> {
    let parsed = parse_v5(data)?;
    let npatterns = parsed.patterns.len() as u32;
    let mut shards = Vec::with_capacity(parsed.shard_entries.len());
    for (s, entries) in parsed.shard_entries.iter().enumerate() {
        let mut words: FxHashMap<WordId, WordPathIndex> =
            patternkb_graph::fxhash::map_with_capacity(entries.len());
        for e in entries {
            let widx = decode_entry(data, e, parsed.bounds[s], parsed.bounds[s + 1], npatterns)?;
            words.insert(e.word, widx);
        }
        shards.push(IndexShard::new(words));
    }
    Ok(PathIndexes::new(
        parsed.d,
        parsed.patterns,
        parsed.bounds,
        shards,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_indexes, BuildConfig};
    use crate::posting::Posting;
    use crate::CompressedPathIndexes;
    use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
    use patternkb_text::{SynonymTable, TextIndex};

    fn sample(n: usize) -> (KnowledgeGraph, TextIndex) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_type("Device");
        let t1 = b.add_type("Vendor");
        let mk = b.add_attr("maker");
        let rel = b.add_attr("related");
        let names = ["alpha", "beta", "gamma", "delta"];
        let nodes: Vec<_> = (0..n)
            .map(|i| b.add_node(if i % 2 == 0 { t0 } else { t1 }, names[i % names.len()]))
            .collect();
        for i in 0..n {
            b.add_edge(nodes[i], mk, nodes[(i * 5 + 1) % n]);
            b.add_edge(nodes[i], rel, nodes[(i * 3 + 2) % n]);
        }
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        (g, t)
    }

    fn build(g: &KnowledgeGraph, t: &TextIndex, d: usize, shards: usize) -> PathIndexes {
        build_indexes(
            g,
            t,
            &BuildConfig {
                d,
                threads: 1,
                shards,
            },
        )
    }

    fn canon_word(
        pats: &PatternSet,
        widx: &WordPathIndex,
    ) -> Vec<(Vec<u32>, Vec<NodeId>, bool, u64, u64)> {
        let mut v: Vec<_> = widx
            .postings_pattern_first()
            .iter()
            .map(|p: &Posting| {
                (
                    pats.key(p.pattern).to_vec(),
                    widx.nodes_of(p).to_vec(),
                    p.edge_terminal,
                    p.pagerank.to_bits(),
                    p.sim.to_bits(),
                )
            })
            .collect();
        v.sort();
        v
    }

    fn assert_same_index(a: &PathIndexes, b: &PathIndexes) {
        assert_eq!(a.d(), b.d());
        assert_eq!(a.bounds(), b.bounds());
        assert_eq!(a.num_shards(), b.num_shards());
        assert_eq!(a.num_words(), b.num_words());
        assert_eq!(a.num_postings(), b.num_postings());
        for (sa, sb) in a.shards().iter().zip(b.shards()) {
            assert_eq!(sa.num_words(), sb.num_words());
            for (w, wa) in sa.iter_words() {
                let wb = sb.word(w).expect("word survives");
                assert_eq!(
                    canon_word(a.patterns(), wa),
                    canon_word(b.patterns(), wb),
                    "word {w:?}"
                );
            }
        }
    }

    #[test]
    fn v5_heap_decode_roundtrips_across_shard_counts() {
        let (g, t) = sample(60);
        for shards in [1usize, 2, 5] {
            let idx = build(&g, &t, 3, shards);
            let image = encode_v5(&idx);
            assert!(is_v5(&image));
            let back = decode_v5(&image).expect("v5 decodes");
            assert_eq!(back.storage_backend(), StorageBackend::Heap);
            assert_same_index(&idx, &back);
        }
    }

    #[test]
    fn v5_mapped_open_is_identical_and_lazy() {
        let (g, t) = sample(60);
        let idx = build(&g, &t, 3, 3);
        let image = encode_v5(&idx);
        let mapped = open_bytes(image).expect("opens");
        assert_eq!(mapped.storage_backend(), StorageBackend::Mmap);
        // Metadata visible without any decode.
        assert_eq!(mapped.num_words(), idx.num_words());
        assert_eq!(mapped.num_postings(), idx.num_postings());
        // Resident bytes start near-zero (lexicon only) and grow as
        // words are touched — the decode really is deferred.
        let before = mapped.heap_bytes();
        assert_same_index(&idx, &mapped);
        let after = mapped.heap_bytes();
        assert!(
            after > before,
            "touching words must grow the decode cache ({before} -> {after})"
        );
    }

    #[test]
    fn v5_file_roundtrip_via_mmap() {
        let (g, t) = sample(40);
        let idx = build(&g, &t, 3, 2);
        let dir = std::env::temp_dir().join("patternkb_storage_v5_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.pkb5");
        save_v5(&idx, &path).unwrap();
        let mapped = open_mapped(&path).unwrap();
        assert_eq!(mapped.storage_backend(), StorageBackend::Mmap);
        assert_same_index(&idx, &mapped);
        std::fs::remove_file(&path).ok();
    }

    /// The v1–v5 decode matrix: every image generation this stack has
    /// ever written — raw PKBI v1/v2, compressed PKBC v1–v4, and the
    /// mapped-tier PKB5 — decodes to the same index, through both the
    /// unified `snapshot::decode` entry point and (for v5) the mapped
    /// open. Pre-v5 generations land on the heap tier by construction.
    #[test]
    fn decode_matrix_v1_through_v5() {
        let (g, t) = sample(60);
        for shards in [1usize, 3] {
            let idx = build(&g, &t, 3, shards);
            let mut images: Vec<(String, Vec<u8>)> = Vec::new();

            // PKBI v2 (current raw writer).
            images.push(("PKBI v2".into(), crate::snapshot::encode(&idx)));
            // PKBI v1: the v2 image minus the shard header, version
            // field rewritten — the exact layout pre-shard code wrote.
            if shards == 1 {
                let v2 = crate::snapshot::encode(&idx);
                let mut v1 = Vec::with_capacity(v2.len() - 12);
                v1.extend_from_slice(&v2[..4]);
                v1.extend_from_slice(&1u32.to_le_bytes());
                v1.extend_from_slice(&v2[8..12]); // d
                v1.extend_from_slice(&v2[24..]); // skip nshards + 2 bounds
                images.push(("PKBI v1".into(), v1));
            }

            // PKBC v1–v3 (legacy containers) and v4 (current writer).
            for version in 1u32..=3 {
                if version == 1 && shards > 1 {
                    continue; // v1 images were single-shard by definition
                }
                images.push((
                    format!("PKBC v{version}"),
                    crate::compress::tests::legacy_image(&idx, version),
                ));
            }
            images.push((
                "PKBC v4".into(),
                CompressedPathIndexes::compress(&idx).encode(),
            ));
            // PKB5, decoded eagerly onto the heap tier.
            images.push(("PKB5 heap".into(), encode_v5(&idx)));

            for (label, image) in &images {
                let back = if label.starts_with("PKBC") {
                    // Compressed images load through the compact tier.
                    CompressedPathIndexes::decode(image)
                        .unwrap_or_else(|e| panic!("{label} decodes: {e}"))
                        .decompress()
                        .unwrap_or_else(|e| panic!("{label} streams decode: {e}"))
                } else {
                    crate::snapshot::decode(image)
                        .unwrap_or_else(|e| panic!("{label} decodes: {e}"))
                };
                assert_eq!(back.storage_backend(), StorageBackend::Heap, "{label}");
                if *label == "PKBI v1" {
                    // v1 predates sharding: same postings, one shard.
                    assert_eq!(back.num_shards(), 1, "{label}");
                    assert_eq!(back.num_postings(), idx.num_postings(), "{label}");
                } else {
                    assert_same_index(&idx, &back);
                }
            }

            // And the same bytes again on the mapped tier.
            let mapped = open_bytes(encode_v5(&idx)).expect("PKB5 mmap opens");
            assert_eq!(mapped.storage_backend(), StorageBackend::Mmap);
            assert_same_index(&idx, &mapped);
        }
    }

    #[test]
    fn v5_magic_is_fresh() {
        // Satellite of the PKBC collision fix: the new tier must collide
        // with neither the raw/compressed images nor the checkpoint magic.
        assert_ne!(MAGIC_V5, b"PKBI");
        assert_ne!(MAGIC_V5, b"PKBC");
        assert_ne!(MAGIC_V5, b"PKBG");
        assert_ne!(MAGIC_V5, b"PKBW");
        let (g, t) = sample(10);
        let image = encode_v5(&build(&g, &t, 2, 1));
        // The compressed-image decoder rejects a v5 image outright (no
        // mis-decode); `snapshot::decode` recognizes it by magic and
        // routes it here instead of misreading it as PKBI.
        assert!(crate::compress::CompressedPathIndexes::decode(&image).is_err());
    }

    #[test]
    fn v5_rejects_garbage_and_bad_version() {
        assert_eq!(
            decode_v5(b"xx").unwrap_err(),
            SnapshotError::Truncated { offset: 2 }
        );
        assert_eq!(
            decode_v5(b"XXXXxxxxxxxxxxxxxxxxxxxxxxxx").unwrap_err(),
            SnapshotError::BadMagic
        );
        let (g, t) = sample(10);
        let mut image = encode_v5(&build(&g, &t, 2, 1));
        image[4] = 99;
        assert_eq!(
            decode_v5(&image).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn v5_truncation_yields_typed_errors_everywhere() {
        let (g, t) = sample(24);
        let idx = build(&g, &t, 2, 2);
        let image = encode_v5(&idx);
        for cut in [0, 3, 16, 40, 90, image.len() / 2, image.len() - 1] {
            let prefix = &image[..cut];
            // Heap decode fails typed.
            assert!(decode_v5(prefix).is_err(), "heap decode, cut {cut}");
            // Mapped open either fails at open, or opens and then fails
            // typed on prepare — never panics, never serves garbage.
            if let Ok(mapped) = open_bytes(prefix.to_vec()) {
                let mut saw_err = false;
                for w in mapped.word_ids() {
                    if mapped.prepare_words(&[w]).is_err() {
                        saw_err = true;
                    }
                }
                assert!(saw_err, "cut {cut}: open succeeded but no stream failed");
            }
        }
    }

    #[test]
    fn v5_bit_flips_never_panic_and_errors_carry_offsets() {
        let (g, t) = sample(16);
        let idx = build(&g, &t, 2, 1);
        let image = encode_v5(&idx);
        let mut typed_errors = 0usize;
        for byte in 0..image.len() {
            let mut bad = image.clone();
            bad[byte] ^= 0xa5;
            // Heap decode: typed error or a well-formed different decode.
            match decode_v5(&bad) {
                Err(
                    SnapshotError::Truncated { .. }
                    | SnapshotError::BadReference { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::BadVersion(_),
                ) => typed_errors += 1,
                Err(SnapshotError::BadUtf8 { .. }) => typed_errors += 1,
                Ok(_) => {}
            }
            // Mapped path: open + full prepare never panics either.
            if let Ok(mapped) = open_bytes(bad) {
                for w in mapped.word_ids() {
                    let _ = mapped.prepare_words(&[w]);
                }
            }
        }
        assert!(typed_errors > 0, "corruption must surface typed errors");
    }

    #[test]
    fn v5_corrupt_stream_surfaces_via_prepare_with_stream_offset() {
        let (g, t) = sample(24);
        let idx = build(&g, &t, 2, 1);
        let mut image = encode_v5(&idx);
        // The streams section offset sits in directory entry 3.
        let str_off = u64::from_le_bytes(image[24 + 48..24 + 56].try_into().unwrap()) as usize;
        // Damage the first stream's interior.
        image[str_off + 2] ^= 0xff;
        let mapped = open_bytes(image).expect("framing is intact");
        let mut offsets = Vec::new();
        for w in mapped.word_ids() {
            if let Err(e) = mapped.prepare_words(&[w]) {
                match e {
                    SnapshotError::Truncated { offset }
                    | SnapshotError::BadReference { offset } => offsets.push(offset),
                    other => panic!("unexpected error {other:?}"),
                }
            }
        }
        assert!(
            offsets.iter().any(|&o| o >= str_off),
            "error offset must point into the streams section: {offsets:?}"
        );
    }

    #[test]
    fn region_from_vec_and_file_agree() {
        let (g, t) = sample(12);
        let idx = build(&g, &t, 2, 1);
        let image = encode_v5(&idx);
        let dir = std::env::temp_dir().join("patternkb_storage_region_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.pkb5");
        std::fs::write(&path, &image).unwrap();
        let file_region = Region::map_file(&path).unwrap();
        assert_eq!(file_region.bytes(), &image[..]);
        let vec_region = Region::from_vec(image);
        assert!(!vec_region.is_file_mapping());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("heap".parse::<StorageBackend>(), Ok(StorageBackend::Heap));
        assert_eq!("mmap".parse::<StorageBackend>(), Ok(StorageBackend::Mmap));
        assert!("disk".parse::<StorageBackend>().is_err());
        assert_eq!(StorageBackend::Heap.to_string(), "heap");
        assert_eq!(StorageBackend::Mmap.to_string(), "mmap");
    }
}
