//! Block-coded sorted integer lists: the posting layout of the v3/v4
//! compressed tiers and the seekable cursor the query plane gallops over.
//!
//! Since image format v4 a [`BlockList`] is an **adaptive** container: at
//! encode time the builder picks, per list, whichever of three codecs
//! serializes smallest (see `docs/FORMATS.md` §"Posting list codecs"):
//!
//! * **Delta + bitpack** ([`DeltaList`], tag 0) — the v3 workhorse.
//!   Blocks of up to [`BLOCK`] entries, each with a skip entry (first,
//!   max, payload offset) and deltas packed at the block's minimal fixed
//!   bit width. Seek discards whole blocks via the per-block max.
//! * **Run-length** ([`RleList`], tag 1) — runs of *consecutive* values
//!   `first, first+1, …, first+len−1` stored as (gap, len) varint pairs.
//!   Wins on dense root ranges with long consecutive stretches; seek is a
//!   binary search over run boundaries and decodes nothing.
//! * **Dense bitmap** ([`BitmapList`], tag 2) — a base value plus one bit
//!   per candidate value in `u64` words, with a per-word rank (prefix
//!   popcount) table rebuilt at load time. Only eligible for strictly
//!   increasing lists (a bitmap cannot represent duplicates); wins on
//!   high-density ranges with gaps that defeat RLE. Seek is O(1) word
//!   arithmetic plus a popcount.
//!
//! All three sit behind one [`BlockList`] enum and one [`BlockCursor`],
//! so `SeekCursor` callers (gallop intersection, the compressed-tier
//! decoder) never see which codec a list chose. The serialized form tags
//! each list with one leading byte; v3 images carry untagged delta
//! payloads and decode through `BlockList::read_into_untagged_delta`.

use crate::varint;

/// Entries per block. 128 keeps a whole decoded block in two cache lines
/// of `u32`s and the skip table small (3 words per 128 postings).
pub const BLOCK: usize = 128;

/// Serialized codec tag of a delta + bitpacked list.
pub(crate) const TAG_DELTA: u8 = 0;
/// Serialized codec tag of a run-length list.
pub(crate) const TAG_RLE: u8 = 1;
/// Serialized codec tag of a dense bitmap list.
pub(crate) const TAG_BITMAP: u8 = 2;

/// Which codec a [`BlockList`] selected at encode time — surfaced for
/// stats and the per-encoding decode microbenches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Delta + bitpacked blocks (the v3 format; tag 0).
    Delta,
    /// Runs of consecutive values (tag 1).
    Rle,
    /// Dense bitmap over a value range (tag 2).
    Bitmap,
}

impl Encoding {
    /// Stable lowercase name (stats output, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Delta => "delta",
            Encoding::Rle => "rle",
            Encoding::Bitmap => "bitmap",
        }
    }
}

/// Skip entry of one block: enough to decide "can this block contain a
/// value ≥/== target" without decoding the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BlockSkip {
    /// First value of the block (stored raw, not packed).
    first: u32,
    /// Largest (= last) value of the block — the max-root skip entry.
    max: u32,
    /// Byte offset of the block's packed payload in `packed`.
    offset: u32,
}

/// A sorted (non-decreasing) `u32` sequence in delta + bitpacked blocks
/// with a per-block skip table — codec tag 0, and the only codec of v3
/// images.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaList {
    /// Total number of entries.
    len: u32,
    /// One skip entry per block.
    skips: Vec<BlockSkip>,
    /// Per block: one width byte, then `ceil((n−1)·width / 8)` bytes of
    /// LSB-first packed deltas (`n` = entries in the block; the first
    /// entry lives in the skip table).
    packed: Vec<u8>,
}

/// Minimal bit width holding `v` (0 for `v == 0`).
#[inline]
fn bits_of(v: u32) -> u32 {
    32 - v.leading_zeros()
}

impl DeltaList {
    /// Encode a non-decreasing sequence.
    pub(crate) fn encode(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input sorted");
        let mut skips = Vec::with_capacity(values.len().div_ceil(BLOCK));
        let mut packed = Vec::with_capacity(values.len() / 2);
        for block in values.chunks(BLOCK) {
            let first = block[0];
            let max = *block.last().expect("chunks are non-empty");
            skips.push(BlockSkip {
                first,
                max,
                offset: packed.len() as u32,
            });
            let width = block
                .windows(2)
                .map(|w| bits_of(w[1] - w[0]))
                .max()
                .unwrap_or(0);
            packed.push(width as u8);
            if width > 0 {
                let mut acc: u64 = 0;
                let mut filled: u32 = 0;
                for w in block.windows(2) {
                    acc |= u64::from(w[1] - w[0]) << filled;
                    filled += width;
                    while filled >= 8 {
                        packed.push((acc & 0xff) as u8);
                        acc >>= 8;
                        filled -= 8;
                    }
                }
                if filled > 0 {
                    packed.push((acc & 0xff) as u8);
                }
            }
        }
        DeltaList {
            len: values.len() as u32,
            skips,
            packed,
        }
    }

    /// Number of entries.
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    /// Number of blocks.
    pub(crate) fn num_blocks(&self) -> usize {
        self.skips.len()
    }

    /// Resident bytes (payload + skip table).
    fn heap_bytes(&self) -> usize {
        self.packed.len() + self.skips.len() * std::mem::size_of::<BlockSkip>()
    }

    /// Exact serialized size in bytes (excluding the codec tag).
    fn encoded_len(&self) -> usize {
        let mut n = varint::len_u32(self.len) + varint::len_u32(self.packed.len() as u32);
        let mut prev = 0u32;
        for (i, s) in self.skips.iter().enumerate() {
            n += varint::len_u32(s.first - prev) + varint::len_u32(s.max - s.first);
            prev = s.max;
            if i > 0 {
                n += varint::len_u32(s.offset);
            }
        }
        n + self.packed.len()
    }

    /// Entries in block `b`.
    #[inline]
    fn block_len(&self, b: usize) -> usize {
        if b + 1 == self.skips.len() {
            self.len as usize - b * BLOCK
        } else {
            BLOCK
        }
    }

    /// Decode block `b` into `out` (cleared first). Returns the number of
    /// entries written.
    fn decode_block(&self, b: usize, out: &mut [u32; BLOCK]) -> usize {
        let skip = self.skips[b];
        let n = self.block_len(b);
        out[0] = skip.first;
        let mut pos = skip.offset as usize;
        let width = u32::from(self.packed[pos]);
        pos += 1;
        if width == 0 {
            // All deltas zero: a run of identical values.
            for slot in out.iter_mut().take(n).skip(1) {
                *slot = skip.first;
            }
            return n;
        }
        let mask: u64 = (1u64 << width) - 1;
        let mut acc: u64 = 0;
        let mut filled: u32 = 0;
        let mut prev = skip.first;
        for slot in out.iter_mut().take(n).skip(1) {
            while filled < width {
                acc |= u64::from(self.packed[pos]) << filled;
                pos += 1;
                filled += 8;
            }
            // Wrapping: a corrupted stream must decode to garbage, not
            // panic (the failure-injection tests flip arbitrary bytes).
            prev = prev.wrapping_add((acc & mask) as u32);
            acc >>= width;
            filled -= width;
            *slot = prev;
        }
        n
    }

    /// Decode the whole list (tests, full materialization paths).
    fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut buf = [0u32; BLOCK];
        for b in 0..self.skips.len() {
            let n = self.decode_block(b, &mut buf);
            out.extend_from_slice(&buf[..n]);
        }
        out
    }

    /// Serialize into `out` (self-delimiting; [`Self::read`] round-trips).
    /// This is the exact v3 list payload — v4 prefixes it with
    /// [`TAG_DELTA`].
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        varint::put_u32(out, self.len);
        varint::put_u32(out, self.packed.len() as u32);
        let mut prev = 0u32;
        for (i, s) in self.skips.iter().enumerate() {
            // Skip entries ascend: first ≤ max ≤ next first.
            varint::put_u32(out, s.first - prev);
            varint::put_u32(out, s.max - s.first);
            prev = s.max;
            if i > 0 {
                varint::put_u32(out, s.offset);
            }
        }
        out.extend_from_slice(&self.packed);
    }

    /// Deserialize from `buf[*pos..]`, advancing `pos`. `None` on
    /// truncation or structural corruption.
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = varint::get_u32(buf, pos)?;
        let packed_len = varint::get_u32(buf, pos)? as usize;
        let num_blocks = (len as usize).div_ceil(BLOCK);
        let mut skips = Vec::with_capacity(num_blocks);
        let mut prev = 0u32;
        for i in 0..num_blocks {
            let first = prev.checked_add(varint::get_u32(buf, pos)?)?;
            let max = first.checked_add(varint::get_u32(buf, pos)?)?;
            prev = max;
            let offset = if i == 0 {
                0
            } else {
                let o = varint::get_u32(buf, pos)?;
                if o as usize > packed_len {
                    return None;
                }
                o
            };
            skips.push(BlockSkip { first, max, offset });
        }
        if *pos + packed_len > buf.len() {
            return None;
        }
        let packed = buf[*pos..*pos + packed_len].to_vec();
        *pos += packed_len;
        let out = DeltaList { len, skips, packed };
        // Widths must keep every block's payload inside `packed`.
        for b in 0..out.skips.len() {
            let n = out.block_len(b);
            let off = out.skips[b].offset as usize;
            let width = *out.packed.get(off)? as usize;
            if width > 32 {
                return None;
            }
            let payload = ((n - 1) * width).div_ceil(8);
            if off + 1 + payload > out.packed.len() {
                return None;
            }
        }
        Some(out)
    }

    /// Decode a serialized delta list from `buf[*pos..]` straight into
    /// `out` (appended), without materializing a [`DeltaList`] — the
    /// zero-allocation path the compressed-tier decoder takes per posting
    /// group. `scratch` is caller-provided reusable storage for the skip
    /// entries. Returns the number of blocks decoded; `None` on
    /// truncation or corruption (with `out`/`scratch` contents
    /// unspecified).
    fn read_into(
        buf: &[u8],
        pos: &mut usize,
        scratch: &mut Vec<(u32, u32, u32)>,
        out: &mut Vec<u32>,
    ) -> Option<u64> {
        let len = varint::get_u32(buf, pos)? as usize;
        let packed_len = varint::get_u32(buf, pos)? as usize;
        let num_blocks = len.div_ceil(BLOCK);
        scratch.clear();
        let mut prev = 0u32;
        for i in 0..num_blocks {
            let first = prev.checked_add(varint::get_u32(buf, pos)?)?;
            let max = first.checked_add(varint::get_u32(buf, pos)?)?;
            prev = max;
            let offset = if i == 0 {
                0
            } else {
                varint::get_u32(buf, pos)?
            };
            if offset as usize > packed_len {
                return None;
            }
            scratch.push((first, max, offset));
        }
        if *pos + packed_len > buf.len() {
            return None;
        }
        let packed = &buf[*pos..*pos + packed_len];
        *pos += packed_len;
        out.reserve(len);
        for (b, &(first, _max, offset)) in scratch.iter().enumerate() {
            let n = if b + 1 == num_blocks {
                len - b * BLOCK
            } else {
                BLOCK
            };
            let mut p = offset as usize;
            let width = u32::from(*packed.get(p)?);
            p += 1;
            if width > 32 {
                return None;
            }
            if p + ((n - 1) * width as usize).div_ceil(8) > packed.len() {
                return None;
            }
            out.push(first);
            if width == 0 {
                for _ in 1..n {
                    out.push(first);
                }
                continue;
            }
            let mask: u64 = (1u64 << width) - 1;
            let mut acc: u64 = 0;
            let mut filled: u32 = 0;
            let mut value = first;
            for _ in 1..n {
                while filled < width {
                    acc |= u64::from(packed[p]) << filled;
                    p += 1;
                    filled += 8;
                }
                value = value.wrapping_add((acc & mask) as u32);
                acc >>= width;
                filled -= width;
                out.push(value);
            }
        }
        Some(num_blocks as u64)
    }
}

/// One run of consecutive values `first, first+1, …, first+len−1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RleRun {
    /// First value of the run.
    first: u32,
    /// Number of values in the run (≥ 1).
    len: u32,
    /// Entries before this run — the rank that makes `remaining()` O(1).
    cum: u32,
}

impl RleRun {
    /// Last value of the run.
    #[inline]
    fn last(self) -> u32 {
        self.first + (self.len - 1)
    }
}

/// A sorted sequence stored as runs of consecutive values — codec tag 1.
///
/// A duplicate value closes the current run and opens a length-1 run at
/// the same value (runs may start at their predecessor's last value), so
/// the codec represents any non-decreasing sequence; it only *wins* when
/// runs are long.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RleList {
    /// Total number of entries.
    len: u32,
    /// The runs, ascending (run i+1 starts at or after run i's last).
    runs: Vec<RleRun>,
}

impl RleList {
    /// Encode a non-decreasing sequence.
    pub(crate) fn encode(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input sorted");
        let mut runs: Vec<RleRun> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some(run) if v == run.last().wrapping_add(1) && run.len < u32::MAX => {
                    run.len += 1;
                }
                _ => {
                    let cum = runs.last().map_or(0, |r| r.cum + r.len);
                    runs.push(RleRun {
                        first: v,
                        len: 1,
                        cum,
                    });
                }
            }
        }
        RleList {
            len: values.len() as u32,
            runs,
        }
    }

    /// Number of entries.
    fn len(&self) -> usize {
        self.len as usize
    }

    /// Number of runs (the codec's "blocks").
    fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Resident bytes.
    fn heap_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<RleRun>()
    }

    /// Exact serialized size in bytes (excluding the codec tag).
    fn encoded_len(&self) -> usize {
        let mut n = varint::len_u32(self.len) + varint::len_u32(self.runs.len() as u32);
        let mut prev_last = 0u32;
        for r in &self.runs {
            n += varint::len_u32(r.first - prev_last) + varint::len_u32(r.len - 1);
            prev_last = r.last();
        }
        n
    }

    /// Decode the whole list.
    fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        for r in &self.runs {
            out.extend(r.first..=r.last());
        }
        out
    }

    /// Serialize into `out` (self-delimiting).
    fn write(&self, out: &mut Vec<u8>) {
        varint::put_u32(out, self.len);
        varint::put_u32(out, self.runs.len() as u32);
        let mut prev_last = 0u32;
        for r in &self.runs {
            // Gap from the previous run's last value: 0 for a duplicate,
            // ≥ 2 for a genuine hole (gap 1 would have merged).
            varint::put_u32(out, r.first - prev_last);
            varint::put_u32(out, r.len - 1);
            prev_last = r.last();
        }
    }

    /// Deserialize from `buf[*pos..]`, advancing `pos`.
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = varint::get_u32(buf, pos)?;
        let num_runs = varint::get_u32(buf, pos)? as usize;
        if num_runs as u64 > u64::from(len) {
            return None;
        }
        let mut runs = Vec::with_capacity(num_runs);
        let mut prev_last = 0u32;
        let mut cum = 0u32;
        for _ in 0..num_runs {
            let first = prev_last.checked_add(varint::get_u32(buf, pos)?)?;
            let run_len = varint::get_u32(buf, pos)?.checked_add(1)?;
            // Last value must not overflow u32.
            first.checked_add(run_len - 1)?;
            runs.push(RleRun {
                first,
                len: run_len,
                cum,
            });
            cum = cum.checked_add(run_len)?;
            prev_last = first + (run_len - 1);
        }
        if cum != len {
            return None;
        }
        Some(RleList { len, runs })
    }

    /// Streaming decode straight into `out` (appended). Returns the
    /// number of runs decoded.
    fn read_into(buf: &[u8], pos: &mut usize, out: &mut Vec<u32>) -> Option<u64> {
        let len = varint::get_u32(buf, pos)?;
        let num_runs = varint::get_u32(buf, pos)? as usize;
        if num_runs as u64 > u64::from(len) {
            return None;
        }
        out.reserve(len as usize);
        let mut prev_last = 0u32;
        let mut total = 0u32;
        for _ in 0..num_runs {
            let first = prev_last.checked_add(varint::get_u32(buf, pos)?)?;
            let run_len = varint::get_u32(buf, pos)?.checked_add(1)?;
            let last = first.checked_add(run_len - 1)?;
            total = total.checked_add(run_len)?;
            if total > len {
                return None;
            }
            out.extend(first..=last);
            prev_last = last;
        }
        if total != len {
            return None;
        }
        Some(num_runs as u64)
    }
}

/// A strictly increasing sequence stored as a dense bitmap — codec tag 2.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BitmapList {
    /// Total number of entries (= set bits).
    len: u32,
    /// Value of bit 0 of word 0.
    base: u32,
    /// The bitmap: bit `i` of word `i / 64` ⇔ value `base + i` present.
    words: Vec<u64>,
    /// `ranks[i]` = set bits in `words[..i]` (`ranks.len() == words.len()
    /// + 1`). In-memory only — rebuilt on read, never serialized.
    ranks: Vec<u32>,
}

impl BitmapList {
    /// Encode a **strictly increasing** sequence (the selector never
    /// offers a list with duplicates to this codec).
    pub(crate) fn encode(values: &[u32]) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "strictly increasing"
        );
        if values.is_empty() {
            return BitmapList::default();
        }
        let base = values[0];
        let span = (values[values.len() - 1] - base) as usize;
        let mut words = vec![0u64; span / 64 + 1];
        for &v in values {
            let off = (v - base) as usize;
            words[off / 64] |= 1u64 << (off % 64);
        }
        let ranks = Self::build_ranks(&words);
        BitmapList {
            len: values.len() as u32,
            base,
            words,
            ranks,
        }
    }

    fn build_ranks(words: &[u64]) -> Vec<u32> {
        let mut ranks = Vec::with_capacity(words.len() + 1);
        let mut total = 0u32;
        ranks.push(0);
        for w in words {
            total += w.count_ones();
            ranks.push(total);
        }
        ranks
    }

    /// Number of entries.
    fn len(&self) -> usize {
        self.len as usize
    }

    /// Number of words (the codec's "blocks").
    fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Resident bytes (bitmap + rank table).
    fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.ranks.len() * 4
    }

    /// Exact serialized size in bytes (excluding the codec tag).
    fn encoded_len(&self) -> usize {
        varint::len_u32(self.len)
            + varint::len_u32(self.base)
            + varint::len_u32(self.words.len() as u32)
            + self.words.len() * 8
    }

    /// Decode the whole list.
    fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        for (i, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                out.push(self.base + (i as u32) * 64 + tz);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Serialize into `out` (self-delimiting; ranks are derived and not
    /// written).
    fn write(&self, out: &mut Vec<u8>) {
        varint::put_u32(out, self.len);
        varint::put_u32(out, self.base);
        varint::put_u32(out, self.words.len() as u32);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Deserialize from `buf[*pos..]`, advancing `pos`.
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = varint::get_u32(buf, pos)?;
        let base = varint::get_u32(buf, pos)?;
        let num_words = varint::get_u32(buf, pos)? as usize;
        if len == 0 {
            return (num_words == 0).then(BitmapList::default);
        }
        if num_words == 0 {
            return None;
        }
        // Highest representable value must fit in u32.
        let top = u64::from(base) + num_words as u64 * 64 - 1;
        if top > u64::from(u32::MAX) {
            return None;
        }
        if *pos + num_words * 8 > buf.len() {
            return None;
        }
        let mut words = Vec::with_capacity(num_words);
        let mut total = 0u32;
        for _ in 0..num_words {
            let w = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
            *pos += 8;
            total = total.checked_add(w.count_ones())?;
            words.push(w);
        }
        if total != len {
            return None;
        }
        let ranks = Self::build_ranks(&words);
        Some(BitmapList {
            len,
            base,
            words,
            ranks,
        })
    }

    /// Streaming decode straight into `out` (appended). Returns the
    /// number of words decoded.
    fn read_into(buf: &[u8], pos: &mut usize, out: &mut Vec<u32>) -> Option<u64> {
        let len = varint::get_u32(buf, pos)?;
        let base = varint::get_u32(buf, pos)?;
        let num_words = varint::get_u32(buf, pos)? as usize;
        if len == 0 {
            return (num_words == 0).then_some(0);
        }
        if num_words == 0 {
            return None;
        }
        let top = u64::from(base) + num_words as u64 * 64 - 1;
        if top > u64::from(u32::MAX) {
            return None;
        }
        if *pos + num_words * 8 > buf.len() {
            return None;
        }
        out.reserve(len as usize);
        let mut total = 0u32;
        for i in 0..num_words {
            let w = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
            *pos += 8;
            total = total.checked_add(w.count_ones())?;
            let mut bits = w;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                out.push(base + (i as u32) * 64 + tz);
                bits &= bits - 1;
            }
        }
        if total != len {
            return None;
        }
        Some(num_words as u64)
    }
}

/// A sorted (non-decreasing) `u32` sequence behind one of three codecs,
/// selected per list at encode time by smallest serialized size. The
/// cursor and (de)serialization APIs are codec-agnostic; callers that
/// care which codec won can ask [`BlockList::encoding`].
#[derive(Clone, Debug, PartialEq)]
pub enum BlockList {
    /// Delta + bitpacked blocks (tag 0).
    Delta(DeltaList),
    /// Runs of consecutive values (tag 1).
    Rle(RleList),
    /// Dense bitmap (tag 2).
    Bitmap(BitmapList),
}

impl Default for BlockList {
    fn default() -> Self {
        BlockList::Delta(DeltaList::default())
    }
}

impl BlockList {
    /// Encode a non-decreasing sequence, picking the codec with the
    /// smallest serialized size (ties keep the delta codec; the bitmap
    /// codec is only eligible for strictly increasing input).
    ///
    /// # Panics
    /// Debug-asserts monotonicity; release builds produce garbage on
    /// unsorted input (the encoder is an internal building block — all
    /// call sites encode already-sorted posting keys).
    pub fn encode(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input sorted");
        let delta = DeltaList::encode(values);
        if values.is_empty() {
            return BlockList::Delta(delta);
        }
        let mut best_bytes = delta.encoded_len();
        let mut best = Encoding::Delta;

        // RLE candidate: runs and exact serialized size in one pass,
        // without building the list.
        let mut rle_bytes = varint::len_u32(values.len() as u32);
        let mut num_runs = 0u32;
        let mut strictly_increasing = true;
        {
            let mut run_first = values[0];
            let mut prev = values[0];
            let mut prev_last = 0u32; // previous *run*'s last value
            for &v in &values[1..] {
                if v == prev {
                    strictly_increasing = false;
                }
                if v != prev.wrapping_add(1) || prev.wrapping_add(1) == 0 {
                    rle_bytes +=
                        varint::len_u32(run_first - prev_last) + varint::len_u32(prev - run_first);
                    num_runs += 1;
                    prev_last = prev;
                    run_first = v;
                }
                prev = v;
            }
            rle_bytes += varint::len_u32(run_first - prev_last) + varint::len_u32(prev - run_first);
            num_runs += 1;
            rle_bytes += varint::len_u32(num_runs);
        }
        if rle_bytes < best_bytes {
            best_bytes = rle_bytes;
            best = Encoding::Rle;
        }

        // Bitmap candidate: size is pure arithmetic on the value span.
        let mut bitmap_bytes = usize::MAX;
        if strictly_increasing {
            let base = values[0];
            let last = values[values.len() - 1];
            let num_words = (last - base) as u64 / 64 + 1;
            if num_words <= usize::MAX as u64 / 8 {
                bitmap_bytes = varint::len_u32(values.len() as u32)
                    + varint::len_u32(base)
                    + varint::len_u32(num_words as u32)
                    + (num_words as usize) * 8;
                if bitmap_bytes < best_bytes {
                    best = Encoding::Bitmap;
                }
            }
        }

        match best {
            Encoding::Delta => BlockList::Delta(delta),
            Encoding::Rle => {
                let rle = RleList::encode(values);
                debug_assert_eq!(rle.encoded_len(), rle_bytes, "one-pass RLE sizing");
                BlockList::Rle(rle)
            }
            Encoding::Bitmap => {
                let bitmap = BitmapList::encode(values);
                debug_assert_eq!(bitmap.encoded_len(), bitmap_bytes, "analytic bitmap sizing");
                BlockList::Bitmap(bitmap)
            }
        }
    }

    /// Which codec this list uses.
    pub fn encoding(&self) -> Encoding {
        match self {
            BlockList::Delta(_) => Encoding::Delta,
            BlockList::Rle(_) => Encoding::Rle,
            BlockList::Bitmap(_) => Encoding::Bitmap,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            BlockList::Delta(l) => l.len(),
            BlockList::Rle(l) => l.len(),
            BlockList::Bitmap(l) => l.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of codec units: blocks (delta), runs (RLE), or words
    /// (bitmap) — the granularity [`BlockCursor::blocks_decoded`] counts
    /// for the delta codec and the unit `seek` skips over.
    pub fn num_blocks(&self) -> usize {
        match self {
            BlockList::Delta(l) => l.num_blocks(),
            BlockList::Rle(l) => l.num_runs(),
            BlockList::Bitmap(l) => l.num_words(),
        }
    }

    /// Resident bytes (payload + skip/rank tables).
    pub fn heap_bytes(&self) -> usize {
        match self {
            BlockList::Delta(l) => l.heap_bytes(),
            BlockList::Rle(l) => l.heap_bytes(),
            BlockList::Bitmap(l) => l.heap_bytes(),
        }
    }

    /// Decode the whole list (tests, full materialization paths).
    pub fn decode_all(&self) -> Vec<u32> {
        match self {
            BlockList::Delta(l) => l.decode_all(),
            BlockList::Rle(l) => l.decode_all(),
            BlockList::Bitmap(l) => l.decode_all(),
        }
    }

    /// Serialize into `out`: one codec tag byte, then the codec payload
    /// (self-delimiting; [`Self::read`] round-trips). This is the v4
    /// list framing — v3 images store the untagged delta payload.
    pub fn write(&self, out: &mut Vec<u8>) {
        match self {
            BlockList::Delta(l) => {
                out.push(TAG_DELTA);
                l.write(out);
            }
            BlockList::Rle(l) => {
                out.push(TAG_RLE);
                l.write(out);
            }
            BlockList::Bitmap(l) => {
                out.push(TAG_BITMAP);
                l.write(out);
            }
        }
    }

    /// Deserialize a tagged (v4) list from `buf[*pos..]`, advancing
    /// `pos`. `None` on an unknown tag, truncation, or structural
    /// corruption.
    pub fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            TAG_DELTA => DeltaList::read(buf, pos).map(BlockList::Delta),
            TAG_RLE => RleList::read(buf, pos).map(BlockList::Rle),
            TAG_BITMAP => BitmapList::read(buf, pos).map(BlockList::Bitmap),
            _ => None,
        }
    }

    /// Streaming decode of a tagged (v4) list from `buf[*pos..]` straight
    /// into `out` (appended), without materializing a [`BlockList`] — the
    /// zero-allocation path the compressed-tier decoder takes per posting
    /// group. `scratch` is reusable storage for delta skip entries.
    /// Returns the number of codec units decoded (blocks / runs / words);
    /// `None` on truncation or corruption (with `out`/`scratch` contents
    /// unspecified).
    pub fn read_into(
        buf: &[u8],
        pos: &mut usize,
        scratch: &mut Vec<(u32, u32, u32)>,
        out: &mut Vec<u32>,
    ) -> Option<u64> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            TAG_DELTA => DeltaList::read_into(buf, pos, scratch, out),
            TAG_RLE => RleList::read_into(buf, pos, out),
            TAG_BITMAP => BitmapList::read_into(buf, pos, out),
            _ => None,
        }
    }

    /// The codec tag of a tagged (v4) list at `buf[pos]`, if valid — lets
    /// stats walkers classify lists without decoding them.
    pub(crate) fn peek_tag(buf: &[u8], pos: usize) -> Option<u8> {
        match buf.get(pos) {
            Some(&t @ (TAG_DELTA | TAG_RLE | TAG_BITMAP)) => Some(t),
            _ => None,
        }
    }

    /// Streaming decode of an **untagged delta** list — the v3 image
    /// framing, kept so legacy images decode forever.
    pub(crate) fn read_into_untagged_delta(
        buf: &[u8],
        pos: &mut usize,
        scratch: &mut Vec<(u32, u32, u32)>,
        out: &mut Vec<u32>,
    ) -> Option<u64> {
        DeltaList::read_into(buf, pos, scratch, out)
    }

    /// Force a specific codec (tests and microbenches; `None` when the
    /// codec cannot represent the input — bitmap with duplicates).
    pub fn encode_as(values: &[u32], enc: Encoding) -> Option<Self> {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input sorted");
        match enc {
            Encoding::Delta => Some(BlockList::Delta(DeltaList::encode(values))),
            Encoding::Rle => Some(BlockList::Rle(RleList::encode(values))),
            Encoding::Bitmap => values
                .windows(2)
                .all(|w| w[0] < w[1])
                .then(|| BlockList::Bitmap(BitmapList::encode(values))),
        }
    }

    /// A cursor positioned before the first entry.
    pub fn cursor(&self) -> BlockCursor<'_> {
        let inner = match self {
            BlockList::Delta(l) => Inner::Delta(DeltaCursor {
                list: l,
                block: 0,
                pos: 0,
                decoded: usize::MAX,
                buf: [0; BLOCK],
                buf_len: 0,
                blocks_decoded: 0,
            }),
            BlockList::Rle(l) => Inner::Rle(RleCursor {
                list: l,
                run: 0,
                inrun: 0,
            }),
            BlockList::Bitmap(l) => Inner::Bitmap(BitmapCursor {
                list: l,
                word: 0,
                bits: l.words.first().copied().unwrap_or(0),
            }),
        };
        BlockCursor { inner }
    }
}

/// Forward-only cursor over a [`DeltaList`].
struct DeltaCursor<'a> {
    list: &'a DeltaList,
    /// Current block index.
    block: usize,
    /// Position of the next entry within the current block.
    pos: usize,
    /// Which block `buf` holds (`usize::MAX` = none yet).
    decoded: usize,
    buf: [u32; BLOCK],
    buf_len: usize,
    /// Blocks decoded so far (the observability counter behind
    /// `stats.hot.blocks_decoded`).
    blocks_decoded: u64,
}

impl DeltaCursor<'_> {
    /// Make sure the current block is decoded into `buf`.
    #[inline]
    fn fill(&mut self) {
        if self.decoded != self.block {
            self.buf_len = self.list.decode_block(self.block, &mut self.buf);
            self.decoded = self.block;
            self.blocks_decoded += 1;
        }
    }

    fn seek(&mut self, target: u32) -> Option<u32> {
        let skips = &self.list.skips;
        if self.block >= skips.len() {
            return None;
        }
        // Skip blocks whose max is below the target: gallop then binary
        // search over the skip table (cheap — no payload decode).
        if skips[self.block].max < target {
            let mut step = 1usize;
            let mut lo = self.block + 1;
            while lo + step < skips.len() && skips[lo + step].max < target {
                lo += step;
                step <<= 1;
            }
            let hi = (lo + step).min(skips.len());
            let adv = skips[lo..hi].partition_point(|s| s.max < target);
            self.block = lo + adv;
            self.pos = 0;
            if self.block >= skips.len() {
                return None;
            }
        }
        // Within-block: decode and binary search the tail.
        self.fill();
        let idx = self.pos + self.buf[self.pos..self.buf_len].partition_point(|&v| v < target);
        debug_assert!(idx < self.buf_len, "block max >= target ensures a hit");
        self.pos = idx;
        Some(self.buf[idx])
    }

    #[inline]
    fn next_value(&mut self) -> Option<u32> {
        if self.block >= self.list.skips.len() {
            return None;
        }
        self.fill();
        let v = self.buf[self.pos];
        self.pos += 1;
        if self.pos == self.buf_len {
            self.block += 1;
            self.pos = 0;
        }
        Some(v)
    }

    fn remaining(&self) -> usize {
        if self.block >= self.list.skips.len() {
            return 0;
        }
        self.list.len() - (self.block * BLOCK + self.pos)
    }
}

/// Forward-only cursor over an [`RleList`]: positions are (run, offset)
/// pairs; values are computed, never decoded into a buffer.
struct RleCursor<'a> {
    list: &'a RleList,
    /// Current run index.
    run: usize,
    /// Offset of the next entry within the current run.
    inrun: u32,
}

impl RleCursor<'_> {
    fn seek(&mut self, target: u32) -> Option<u32> {
        let runs = &self.list.runs;
        if self.run >= runs.len() {
            return None;
        }
        let r = runs[self.run];
        let current = r.first + self.inrun;
        if current >= target {
            return Some(current);
        }
        if r.last() >= target {
            // Runs are consecutive, so the target itself is present.
            self.inrun = target - r.first;
            return Some(target);
        }
        let adv = runs[self.run + 1..].partition_point(|x| x.last() < target);
        self.run += 1 + adv;
        self.inrun = 0;
        if self.run >= runs.len() {
            return None;
        }
        let r = runs[self.run];
        if target > r.first {
            self.inrun = target - r.first;
            Some(target)
        } else {
            Some(r.first)
        }
    }

    #[inline]
    fn next_value(&mut self) -> Option<u32> {
        let runs = &self.list.runs;
        if self.run >= runs.len() {
            return None;
        }
        let r = runs[self.run];
        let v = r.first + self.inrun;
        self.inrun += 1;
        if self.inrun == r.len {
            self.run += 1;
            self.inrun = 0;
        }
        Some(v)
    }

    fn remaining(&self) -> usize {
        match self.list.runs.get(self.run) {
            Some(r) => self.list.len() - (r.cum + self.inrun) as usize,
            None => 0,
        }
    }
}

/// Forward-only cursor over a [`BitmapList`]: the current word's
/// unconsumed bits are held in a register; `seek` is word arithmetic and
/// `remaining` reads the rank table.
struct BitmapCursor<'a> {
    list: &'a BitmapList,
    /// Current word index.
    word: usize,
    /// Unconsumed bits of the current word (consumed bits cleared).
    bits: u64,
}

impl BitmapCursor<'_> {
    /// Advance `word` until `bits` is non-empty (or the list ends).
    #[inline]
    fn settle(&mut self) -> bool {
        while self.bits == 0 {
            self.word += 1;
            match self.list.words.get(self.word) {
                Some(&w) => self.bits = w,
                None => return false,
            }
        }
        true
    }

    fn seek(&mut self, target: u32) -> Option<u32> {
        let l = self.list;
        if l.words.is_empty() || self.word >= l.words.len() {
            return None;
        }
        if target > l.base {
            let off = u64::from(target - l.base);
            let tw = (off / 64) as usize;
            if tw >= l.words.len() {
                // Current word might still hold values ≥ target only if
                // tw were ≤ word; tw ≥ len ⇒ target beyond the bitmap.
                if tw > self.word {
                    self.word = l.words.len();
                    self.bits = 0;
                    return None;
                }
            }
            if tw > self.word {
                self.word = tw;
                self.bits = l.words[tw] & (!0u64 << (off % 64));
            } else if tw == self.word {
                self.bits &= !0u64 << (off % 64);
            }
            // tw < word: everything at or after the cursor already ≥ target.
        }
        if !self.settle() {
            return None;
        }
        Some(l.base + (self.word as u32) * 64 + self.bits.trailing_zeros())
    }

    #[inline]
    fn next_value(&mut self) -> Option<u32> {
        if self.list.words.is_empty() || self.word >= self.list.words.len() || !self.settle() {
            return None;
        }
        let tz = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(self.list.base + (self.word as u32) * 64 + tz)
    }

    fn remaining(&self) -> usize {
        if self.word >= self.list.words.len() {
            return 0;
        }
        // Values in words after the current one, plus unconsumed bits here.
        (self.list.len - self.list.ranks[self.word + 1] + self.bits.count_ones()) as usize
    }
}

// The delta variant carries its 128-entry decode buffer inline: cursors
// are short-lived stack objects created in the intersection inner loop,
// so boxing the buffer would trade a stack bump for a heap allocation
// per cursor.
#[allow(clippy::large_enum_variant)]
enum Inner<'a> {
    Delta(DeltaCursor<'a>),
    Rle(RleCursor<'a>),
    Bitmap(BitmapCursor<'a>),
}

/// Forward-only cursor over a [`BlockList`] with skip-ahead `seek`,
/// dispatching to the list's codec.
///
/// `seek` targets must be non-decreasing (the cursor never rewinds) —
/// exactly the discipline of gallop intersection.
pub struct BlockCursor<'a> {
    inner: Inner<'a>,
}

impl<'a> BlockCursor<'a> {
    /// The least entry `≥ target` at or after the current position,
    /// advancing the cursor **to** it (a following [`Self::next_value`]
    /// returns it again — peek semantics, what leapfrog intersection
    /// wants). Skips whole blocks/runs/words without decoding them.
    pub fn seek(&mut self, target: u32) -> Option<u32> {
        match &mut self.inner {
            Inner::Delta(c) => c.seek(target),
            Inner::Rle(c) => c.seek(target),
            Inner::Bitmap(c) => c.seek(target),
        }
    }

    /// Blocks decoded by this cursor so far. Only the delta codec decodes
    /// block buffers; RLE and bitmap cursors compute values in place and
    /// always report 0.
    pub fn blocks_decoded(&self) -> u64 {
        match &self.inner {
            Inner::Delta(c) => c.blocks_decoded,
            Inner::Rle(_) | Inner::Bitmap(_) => 0,
        }
    }

    /// The next entry, advancing past it (also available through the
    /// [`Iterator`] impl).
    #[inline]
    pub fn next_value(&mut self) -> Option<u32> {
        match &mut self.inner {
            Inner::Delta(c) => c.next_value(),
            Inner::Rle(c) => c.next_value(),
            Inner::Bitmap(c) => c.next_value(),
        }
    }

    /// Entries not yet consumed (exact).
    pub fn remaining(&self) -> usize {
        match &self.inner {
            Inner::Delta(c) => c.remaining(),
            Inner::Rle(c) => c.remaining(),
            Inner::Bitmap(c) => c.remaining(),
        }
    }
}

impl Iterator for BlockCursor<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        self.next_value()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL_ENCODINGS: [Encoding; 3] = [Encoding::Delta, Encoding::Rle, Encoding::Bitmap];

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn roundtrip_small() {
        for values in [
            vec![],
            vec![7],
            vec![0, 0, 0],
            vec![1, 5, 5, 9, 1000, u32::MAX],
            (0..1000).map(|i| i * 3).collect::<Vec<u32>>(),
        ] {
            let list = BlockList::encode(&values);
            assert_eq!(list.decode_all(), values);
            let mut bytes = Vec::new();
            list.write(&mut bytes);
            let mut pos = 0;
            let back = BlockList::read(&bytes, &mut pos).expect("decodes");
            assert_eq!(pos, bytes.len());
            assert_eq!(back.decode_all(), values);
        }
    }

    #[test]
    fn roundtrip_small_under_every_codec() {
        for values in [
            vec![],
            vec![7],
            vec![0, 0, 0],
            vec![1, 5, 5, 9, 1000, u32::MAX],
            (0..1000).map(|i| i * 3).collect::<Vec<u32>>(),
            (500..900).collect::<Vec<u32>>(),
        ] {
            for enc in ALL_ENCODINGS {
                let Some(list) = BlockList::encode_as(&values, enc) else {
                    assert_eq!(enc, Encoding::Bitmap, "only bitmap may refuse");
                    assert!(values.windows(2).any(|w| w[0] == w[1]));
                    continue;
                };
                assert_eq!(list.encoding(), enc);
                assert_eq!(list.decode_all(), values, "{enc:?}");
                let mut bytes = Vec::new();
                list.write(&mut bytes);
                let mut pos = 0;
                let back = BlockList::read(&bytes, &mut pos).expect("decodes");
                assert_eq!(pos, bytes.len(), "{enc:?}");
                assert_eq!(back.decode_all(), values, "{enc:?}");
            }
        }
    }

    #[test]
    fn selector_picks_the_expected_codec() {
        // Long consecutive runs: RLE wins.
        let runs: Vec<u32> = (0..2000u32).chain(5000..7000).collect();
        assert_eq!(BlockList::encode(&runs).encoding(), Encoding::Rle);
        // Dense-but-gappy range (every value except multiples of 3):
        // defeats RLE (runs of 2), beats delta (bitmap ≈ 1.5 bits/value
        // vs 2+ bits of delta payload at width 2).
        let gappy: Vec<u32> = (0..6000u32).filter(|v| v % 3 != 0).collect();
        assert_eq!(BlockList::encode(&gappy).encoding(), Encoding::Bitmap);
        // Sparse scattered values: delta wins.
        let sparse: Vec<u32> = (0..500u32).map(|i| i * 1013).collect();
        assert_eq!(BlockList::encode(&sparse).encoding(), Encoding::Delta);
        // Duplicates make bitmap ineligible even when dense.
        let dups: Vec<u32> = (0..3000u32).flat_map(|v| [v, v]).collect();
        assert_ne!(BlockList::encode(&dups).encoding(), Encoding::Bitmap);
    }

    #[test]
    fn cursor_next_streams_everything() {
        let values: Vec<u32> = (0..500).map(|i| i * 7 + (i % 3)).collect();
        for enc in ALL_ENCODINGS {
            let Some(list) = BlockList::encode_as(&values, enc) else {
                continue;
            };
            let mut c = list.cursor();
            let mut out = Vec::new();
            for v in c.by_ref() {
                out.push(v);
            }
            assert_eq!(out, values, "{enc:?}");
            if enc == Encoding::Delta {
                assert_eq!(c.blocks_decoded(), list.num_blocks() as u64);
            }
        }
    }

    #[test]
    fn seek_finds_lower_bounds() {
        let values: Vec<u32> = (0..1000).map(|i| i * 10).collect();
        for enc in ALL_ENCODINGS {
            let list = BlockList::encode_as(&values, enc).expect("strictly increasing");
            let mut c = list.cursor();
            assert_eq!(c.seek(0), Some(0), "{enc:?}");
            assert_eq!(c.seek(15), Some(20), "{enc:?}");
            assert_eq!(c.seek(20), Some(20), "{enc:?}"); // peek: still there
            assert_eq!(c.next(), Some(20), "{enc:?}");
            assert_eq!(c.seek(5000), Some(5000), "{enc:?}");
            assert_eq!(c.seek(9991), None, "{enc:?}");
        }
    }

    #[test]
    fn seek_skips_blocks_without_decoding() {
        let values: Vec<u32> = (0..BLOCK as u32 * 40).collect();
        let list = BlockList::encode_as(&values, Encoding::Delta).expect("delta always encodes");
        let mut c = list.cursor();
        // Jump straight to the 30th block: at most the target block (plus
        // the first, if touched) is decoded.
        assert_eq!(c.seek(30 * BLOCK as u32 + 5), Some(30 * BLOCK as u32 + 5));
        assert!(c.blocks_decoded() <= 1, "decoded {}", c.blocks_decoded());
    }

    #[test]
    fn remaining_counts_down() {
        let values: Vec<u32> = (0..300).collect();
        for enc in ALL_ENCODINGS {
            let list = BlockList::encode_as(&values, enc).expect("strictly increasing");
            let mut c = list.cursor();
            assert_eq!(c.remaining(), 300, "{enc:?}");
            c.next();
            assert_eq!(c.remaining(), 299, "{enc:?}");
            c.seek(290);
            assert_eq!(c.remaining(), 10, "{enc:?}");
        }
    }

    #[test]
    fn truncated_reads_fail() {
        let values: Vec<u32> = (0..300).map(|i| i * 5).collect();
        for enc in ALL_ENCODINGS {
            let list = BlockList::encode_as(&values, enc).expect("strictly increasing");
            let mut bytes = Vec::new();
            list.write(&mut bytes);
            for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
                let mut pos = 0;
                assert!(
                    BlockList::read(&bytes[..cut], &mut pos).is_none(),
                    "{enc:?} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let list = BlockList::encode(&[1, 2, 3]);
        let mut bytes = Vec::new();
        list.write(&mut bytes);
        bytes[0] = 7; // no such codec
        let mut pos = 0;
        assert!(BlockList::read(&bytes, &mut pos).is_none());
        let mut pos = 0;
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        assert!(BlockList::read_into(&bytes, &mut pos, &mut scratch, &mut out).is_none());
    }

    #[test]
    fn untagged_delta_framing_still_decodes() {
        // The v3 framing: a bare DeltaList payload with no tag byte.
        let values: Vec<u32> = (0..700).map(|i| i * 3 + (i % 2)).collect();
        let mut bytes = Vec::new();
        DeltaList::encode(&values).write(&mut bytes);
        let mut pos = 0;
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        let blocks = BlockList::read_into_untagged_delta(&bytes, &mut pos, &mut scratch, &mut out)
            .expect("v3 framing decodes");
        assert_eq!(pos, bytes.len());
        assert_eq!(blocks as usize, values.len().div_ceil(BLOCK));
        assert_eq!(out, values);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(v in proptest::collection::vec(any::<u32>(), 0..600)) {
            let values = sorted(v);
            let list = BlockList::encode(&values);
            prop_assert_eq!(list.decode_all(), values.clone());
            let mut bytes = Vec::new();
            list.write(&mut bytes);
            let mut pos = 0;
            let back = BlockList::read(&bytes, &mut pos).expect("round-trips");
            prop_assert_eq!(pos, bytes.len());
            prop_assert_eq!(back.decode_all(), values.clone());
            // The zero-copy streaming decoder agrees.
            let mut pos = 0;
            let mut scratch = Vec::new();
            let mut streamed = Vec::new();
            let units = BlockList::read_into(&bytes, &mut pos, &mut scratch, &mut streamed)
                .expect("streams");
            prop_assert_eq!(pos, bytes.len());
            prop_assert_eq!(units as usize, list.num_blocks());
            prop_assert_eq!(streamed, values);
        }

        #[test]
        fn roundtrip_arbitrary_under_every_codec(
            v in proptest::collection::vec(0u32..100_000, 0..600),
        ) {
            let values = sorted(v);
            for enc in ALL_ENCODINGS {
                let Some(list) = BlockList::encode_as(&values, enc) else { continue };
                prop_assert_eq!(list.decode_all(), values.clone(), "{:?}", enc);
                let mut bytes = Vec::new();
                list.write(&mut bytes);
                let mut pos = 0;
                let back = BlockList::read(&bytes, &mut pos).expect("round-trips");
                prop_assert_eq!(pos, bytes.len(), "{:?}", enc);
                prop_assert_eq!(back.decode_all(), values.clone(), "{:?}", enc);
                let mut pos = 0;
                let mut scratch = Vec::new();
                let mut streamed = Vec::new();
                BlockList::read_into(&bytes, &mut pos, &mut scratch, &mut streamed)
                    .expect("streams");
                prop_assert_eq!(pos, bytes.len(), "{:?}", enc);
                prop_assert_eq!(streamed, values.clone(), "{:?}", enc);
            }
        }

        #[test]
        fn seek_equals_partition_point(
            v in proptest::collection::vec(0u32..5000, 1..600),
            targets in proptest::collection::vec(0u32..5100, 1..40),
        ) {
            let values = sorted(v);
            let mut targets = sorted(targets);
            targets.dedup();
            for enc in ALL_ENCODINGS {
                let Some(list) = BlockList::encode_as(&values, enc) else { continue };
                let mut c = list.cursor();
                for &t in &targets {
                    let expect = values
                        .get(values.partition_point(|&x| x < t))
                        .copied();
                    prop_assert_eq!(c.seek(t), expect, "{:?} target {}", enc, t);
                }
            }
        }

        #[test]
        fn interleaved_seek_and_next_agree_across_codecs(
            v in proptest::collection::vec(0u32..4000, 1..400),
            ops in proptest::collection::vec((any::<bool>(), 0u32..4100), 1..60),
        ) {
            let values = sorted(v);
            // Drive the same (monotone-seek | next) op sequence through
            // all eligible codecs; every step must agree.
            let lists: Vec<BlockList> = ALL_ENCODINGS
                .iter()
                .filter_map(|&e| BlockList::encode_as(&values, e))
                .collect();
            let mut cursors: Vec<BlockCursor<'_>> =
                lists.iter().map(BlockList::cursor).collect();
            let mut floor = 0u32;
            for &(is_seek, t) in &ops {
                if is_seek {
                    let t = t.max(floor);
                    floor = t;
                    let results: Vec<Option<u32>> =
                        cursors.iter_mut().map(|c| c.seek(t)).collect();
                    prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "{:?}", results);
                } else {
                    let results: Vec<Option<u32>> =
                        cursors.iter_mut().map(|c| c.next_value()).collect();
                    prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "{:?}", results);
                    if let Some(v) = results[0] {
                        floor = floor.max(v);
                    }
                }
                let rems: Vec<usize> = cursors.iter().map(|c| c.remaining()).collect();
                prop_assert!(rems.windows(2).all(|w| w[0] == w[1]), "{:?}", rems);
            }
        }
    }
}
