//! Block-coded sorted integer lists: the posting layout of the v3
//! compressed tier and the seekable cursor the query plane gallops over.
//!
//! A [`BlockList`] stores a non-decreasing `u32` sequence in blocks of up
//! to [`BLOCK`] entries. Each block carries a **skip entry** — its first
//! value, its max (= last) value, and the byte offset of its packed
//! payload — so a [`BlockCursor::seek`] can discard whole blocks by
//! comparing against the per-block max without touching the payload. The
//! payload packs the deltas `v[i] − v[i−1]` at the block's minimal fixed
//! bit width (delta + bitpacking), which beats per-integer varints both in
//! bytes and in decode cost: one shift/mask pipeline per block instead of
//! a data-dependent branch per integer.
//!
//! Compared to [`crate::varint`] streams the layout buys:
//!
//! * `seek(root)` in `O(log #blocks + BLOCK)` instead of `O(n)` decode;
//! * branch-free bulk decode of 128 deltas at a time;
//! * the per-block max doubles as the skip pointer for gallop
//!   intersection (the SeekStorm / roaring family of tricks).

use crate::varint;

/// Entries per block. 128 keeps a whole decoded block in two cache lines
/// of `u32`s and the skip table small (3 words per 128 postings).
pub const BLOCK: usize = 128;

/// Skip entry of one block: enough to decide "can this block contain a
/// value ≥/== target" without decoding the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BlockSkip {
    /// First value of the block (stored raw, not packed).
    first: u32,
    /// Largest (= last) value of the block — the max-root skip entry.
    max: u32,
    /// Byte offset of the block's packed payload in `packed`.
    offset: u32,
}

/// A sorted (non-decreasing) `u32` sequence in delta + bitpacked blocks
/// with a per-block skip table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockList {
    /// Total number of entries.
    len: u32,
    /// One skip entry per block.
    skips: Vec<BlockSkip>,
    /// Per block: one width byte, then `ceil((n−1)·width / 8)` bytes of
    /// LSB-first packed deltas (`n` = entries in the block; the first
    /// entry lives in the skip table).
    packed: Vec<u8>,
}

/// Minimal bit width holding `v` (0 for `v == 0`).
#[inline]
fn bits_of(v: u32) -> u32 {
    32 - v.leading_zeros()
}

impl BlockList {
    /// Encode a non-decreasing sequence.
    ///
    /// # Panics
    /// Debug-asserts monotonicity; release builds produce garbage on
    /// unsorted input (the encoder is an internal building block — all
    /// call sites encode already-sorted posting keys).
    pub fn encode(values: &[u32]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "input sorted");
        let mut skips = Vec::with_capacity(values.len().div_ceil(BLOCK));
        let mut packed = Vec::with_capacity(values.len() / 2);
        for block in values.chunks(BLOCK) {
            let first = block[0];
            let max = *block.last().expect("chunks are non-empty");
            skips.push(BlockSkip {
                first,
                max,
                offset: packed.len() as u32,
            });
            let width = block
                .windows(2)
                .map(|w| bits_of(w[1] - w[0]))
                .max()
                .unwrap_or(0);
            packed.push(width as u8);
            if width > 0 {
                let mut acc: u64 = 0;
                let mut filled: u32 = 0;
                for w in block.windows(2) {
                    acc |= u64::from(w[1] - w[0]) << filled;
                    filled += width;
                    while filled >= 8 {
                        packed.push((acc & 0xff) as u8);
                        acc >>= 8;
                        filled -= 8;
                    }
                }
                if filled > 0 {
                    packed.push((acc & 0xff) as u8);
                }
            }
        }
        BlockList {
            len: values.len() as u32,
            skips,
            packed,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.skips.len()
    }

    /// Resident bytes (payload + skip table).
    pub fn heap_bytes(&self) -> usize {
        self.packed.len() + self.skips.len() * std::mem::size_of::<BlockSkip>()
    }

    /// Entries in block `b`.
    #[inline]
    fn block_len(&self, b: usize) -> usize {
        if b + 1 == self.skips.len() {
            self.len as usize - b * BLOCK
        } else {
            BLOCK
        }
    }

    /// Decode block `b` into `out` (cleared first). Returns the number of
    /// entries written.
    fn decode_block(&self, b: usize, out: &mut [u32; BLOCK]) -> usize {
        let skip = self.skips[b];
        let n = self.block_len(b);
        out[0] = skip.first;
        let mut pos = skip.offset as usize;
        let width = u32::from(self.packed[pos]);
        pos += 1;
        if width == 0 {
            // All deltas zero: a run of identical values.
            for slot in out.iter_mut().take(n).skip(1) {
                *slot = skip.first;
            }
            return n;
        }
        let mask: u64 = (1u64 << width) - 1;
        let mut acc: u64 = 0;
        let mut filled: u32 = 0;
        let mut prev = skip.first;
        for slot in out.iter_mut().take(n).skip(1) {
            while filled < width {
                acc |= u64::from(self.packed[pos]) << filled;
                pos += 1;
                filled += 8;
            }
            // Wrapping: a corrupted stream must decode to garbage, not
            // panic (the failure-injection tests flip arbitrary bytes).
            prev = prev.wrapping_add((acc & mask) as u32);
            acc >>= width;
            filled -= width;
            *slot = prev;
        }
        n
    }

    /// Decode the whole list (tests, full materialization paths).
    pub fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut buf = [0u32; BLOCK];
        for b in 0..self.skips.len() {
            let n = self.decode_block(b, &mut buf);
            out.extend_from_slice(&buf[..n]);
        }
        out
    }

    /// Serialize into `out` (self-delimiting; [`Self::read`] round-trips).
    pub fn write(&self, out: &mut Vec<u8>) {
        varint::put_u32(out, self.len);
        varint::put_u32(out, self.packed.len() as u32);
        let mut prev = 0u32;
        for (i, s) in self.skips.iter().enumerate() {
            // Skip entries ascend: first ≤ max ≤ next first.
            varint::put_u32(out, s.first - prev);
            varint::put_u32(out, s.max - s.first);
            prev = s.max;
            if i > 0 {
                varint::put_u32(out, s.offset);
            }
        }
        out.extend_from_slice(&self.packed);
    }

    /// Deserialize from `buf[*pos..]`, advancing `pos`. `None` on
    /// truncation or structural corruption.
    pub fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = varint::get_u32(buf, pos)?;
        let packed_len = varint::get_u32(buf, pos)? as usize;
        let num_blocks = (len as usize).div_ceil(BLOCK);
        let mut skips = Vec::with_capacity(num_blocks);
        let mut prev = 0u32;
        for i in 0..num_blocks {
            let first = prev.checked_add(varint::get_u32(buf, pos)?)?;
            let max = first.checked_add(varint::get_u32(buf, pos)?)?;
            prev = max;
            let offset = if i == 0 {
                0
            } else {
                let o = varint::get_u32(buf, pos)?;
                if o as usize > packed_len {
                    return None;
                }
                o
            };
            skips.push(BlockSkip { first, max, offset });
        }
        if *pos + packed_len > buf.len() {
            return None;
        }
        let packed = buf[*pos..*pos + packed_len].to_vec();
        *pos += packed_len;
        let out = BlockList { len, skips, packed };
        // Widths must keep every block's payload inside `packed`.
        for b in 0..out.skips.len() {
            let n = out.block_len(b);
            let off = out.skips[b].offset as usize;
            let width = *out.packed.get(off)? as usize;
            if width > 32 {
                return None;
            }
            let payload = ((n - 1) * width).div_ceil(8);
            if off + 1 + payload > out.packed.len() {
                return None;
            }
        }
        Some(out)
    }

    /// Decode a serialized block list from `buf[*pos..]` straight into
    /// `out` (appended), without materializing a [`BlockList`] — the
    /// zero-allocation path the compressed-tier decoder takes per posting
    /// group. `scratch` is caller-provided reusable storage for the skip
    /// entries. Returns the number of blocks decoded; `None` on
    /// truncation or corruption (with `out`/`scratch` contents
    /// unspecified).
    pub fn read_into(
        buf: &[u8],
        pos: &mut usize,
        scratch: &mut Vec<(u32, u32, u32)>,
        out: &mut Vec<u32>,
    ) -> Option<u64> {
        let len = varint::get_u32(buf, pos)? as usize;
        let packed_len = varint::get_u32(buf, pos)? as usize;
        let num_blocks = len.div_ceil(BLOCK);
        scratch.clear();
        let mut prev = 0u32;
        for i in 0..num_blocks {
            let first = prev.checked_add(varint::get_u32(buf, pos)?)?;
            let max = first.checked_add(varint::get_u32(buf, pos)?)?;
            prev = max;
            let offset = if i == 0 {
                0
            } else {
                varint::get_u32(buf, pos)?
            };
            if offset as usize > packed_len {
                return None;
            }
            scratch.push((first, max, offset));
        }
        if *pos + packed_len > buf.len() {
            return None;
        }
        let packed = &buf[*pos..*pos + packed_len];
        *pos += packed_len;
        out.reserve(len);
        for (b, &(first, _max, offset)) in scratch.iter().enumerate() {
            let n = if b + 1 == num_blocks {
                len - b * BLOCK
            } else {
                BLOCK
            };
            let mut p = offset as usize;
            let width = u32::from(*packed.get(p)?);
            p += 1;
            if width > 32 {
                return None;
            }
            if p + ((n - 1) * width as usize).div_ceil(8) > packed.len() {
                return None;
            }
            out.push(first);
            if width == 0 {
                for _ in 1..n {
                    out.push(first);
                }
                continue;
            }
            let mask: u64 = (1u64 << width) - 1;
            let mut acc: u64 = 0;
            let mut filled: u32 = 0;
            let mut value = first;
            for _ in 1..n {
                while filled < width {
                    acc |= u64::from(packed[p]) << filled;
                    p += 1;
                    filled += 8;
                }
                value = value.wrapping_add((acc & mask) as u32);
                acc >>= width;
                filled -= width;
                out.push(value);
            }
        }
        Some(num_blocks as u64)
    }

    /// A cursor positioned before the first entry.
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor {
            list: self,
            block: 0,
            pos: 0,
            decoded: usize::MAX,
            buf: [0; BLOCK],
            buf_len: 0,
            blocks_decoded: 0,
        }
    }
}

/// Forward-only cursor over a [`BlockList`] with skip-ahead `seek`.
///
/// `seek` targets must be non-decreasing (the cursor never rewinds) —
/// exactly the discipline of gallop intersection.
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Current block index.
    block: usize,
    /// Position of the next entry within the current block.
    pos: usize,
    /// Which block `buf` holds (`usize::MAX` = none yet).
    decoded: usize,
    buf: [u32; BLOCK],
    buf_len: usize,
    /// Blocks decoded so far (the observability counter behind
    /// `stats.hot.blocks_decoded`).
    blocks_decoded: u64,
}

impl<'a> BlockCursor<'a> {
    /// Make sure the current block is decoded into `buf`.
    #[inline]
    fn fill(&mut self) {
        if self.decoded != self.block {
            self.buf_len = self.list.decode_block(self.block, &mut self.buf);
            self.decoded = self.block;
            self.blocks_decoded += 1;
        }
    }

    // `next` lives in the `Iterator` impl below.

    /// The least entry `≥ target` at or after the current position,
    /// advancing the cursor **to** it (a following [`Self::next`] returns
    /// it again — peek semantics, what leapfrog intersection wants).
    /// Skips whole blocks via the max-root skip entries.
    pub fn seek(&mut self, target: u32) -> Option<u32> {
        let skips = &self.list.skips;
        if self.block >= skips.len() {
            return None;
        }
        // Skip blocks whose max is below the target: gallop then binary
        // search over the skip table (cheap — no payload decode).
        if skips[self.block].max < target {
            let mut step = 1usize;
            let mut lo = self.block + 1;
            while lo + step < skips.len() && skips[lo + step].max < target {
                lo += step;
                step <<= 1;
            }
            let hi = (lo + step).min(skips.len());
            let adv = skips[lo..hi].partition_point(|s| s.max < target);
            self.block = lo + adv;
            self.pos = 0;
            if self.block >= skips.len() {
                return None;
            }
        }
        // Within-block: decode and binary search the tail.
        self.fill();
        let idx = self.pos + self.buf[self.pos..self.buf_len].partition_point(|&v| v < target);
        debug_assert!(idx < self.buf_len, "block max >= target ensures a hit");
        self.pos = idx;
        Some(self.buf[idx])
    }

    /// Blocks decoded by this cursor so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_decoded
    }

    /// The next entry, advancing past it (also available through the
    /// [`Iterator`] impl).
    #[inline]
    pub fn next_value(&mut self) -> Option<u32> {
        if self.block >= self.list.skips.len() {
            return None;
        }
        self.fill();
        let v = self.buf[self.pos];
        self.pos += 1;
        if self.pos == self.buf_len {
            self.block += 1;
            self.pos = 0;
        }
        Some(v)
    }

    /// Entries not yet consumed (exact).
    pub fn remaining(&self) -> usize {
        if self.block >= self.list.skips.len() {
            return 0;
        }
        self.list.len() - (self.block * BLOCK + self.pos)
    }
}

impl Iterator for BlockCursor<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        self.next_value()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn roundtrip_small() {
        for values in [
            vec![],
            vec![7],
            vec![0, 0, 0],
            vec![1, 5, 5, 9, 1000, u32::MAX],
            (0..1000).map(|i| i * 3).collect::<Vec<u32>>(),
        ] {
            let list = BlockList::encode(&values);
            assert_eq!(list.decode_all(), values);
            let mut bytes = Vec::new();
            list.write(&mut bytes);
            let mut pos = 0;
            let back = BlockList::read(&bytes, &mut pos).expect("decodes");
            assert_eq!(pos, bytes.len());
            assert_eq!(back.decode_all(), values);
        }
    }

    #[test]
    fn cursor_next_streams_everything() {
        let values: Vec<u32> = (0..500).map(|i| i * 7 + (i % 3)).collect();
        let list = BlockList::encode(&values);
        let mut c = list.cursor();
        let mut out = Vec::new();
        for v in c.by_ref() {
            out.push(v);
        }
        assert_eq!(out, values);
        assert_eq!(c.blocks_decoded(), list.num_blocks() as u64);
    }

    #[test]
    fn seek_finds_lower_bounds() {
        let values: Vec<u32> = (0..1000).map(|i| i * 10).collect();
        let list = BlockList::encode(&values);
        let mut c = list.cursor();
        assert_eq!(c.seek(0), Some(0));
        assert_eq!(c.seek(15), Some(20));
        assert_eq!(c.seek(20), Some(20)); // peek: still there
        assert_eq!(c.next(), Some(20));
        assert_eq!(c.seek(5000), Some(5000));
        assert_eq!(c.seek(9991), None);
    }

    #[test]
    fn seek_skips_blocks_without_decoding() {
        let values: Vec<u32> = (0..BLOCK as u32 * 40).collect();
        let list = BlockList::encode(&values);
        let mut c = list.cursor();
        // Jump straight to the 30th block: at most the target block (plus
        // the first, if touched) is decoded.
        assert_eq!(c.seek(30 * BLOCK as u32 + 5), Some(30 * BLOCK as u32 + 5));
        assert!(c.blocks_decoded() <= 1, "decoded {}", c.blocks_decoded());
    }

    #[test]
    fn remaining_counts_down() {
        let values: Vec<u32> = (0..300).collect();
        let list = BlockList::encode(&values);
        let mut c = list.cursor();
        assert_eq!(c.remaining(), 300);
        c.next();
        assert_eq!(c.remaining(), 299);
        c.seek(290);
        assert_eq!(c.remaining(), 10);
    }

    #[test]
    fn truncated_reads_fail() {
        let values: Vec<u32> = (0..300).map(|i| i * 5).collect();
        let list = BlockList::encode(&values);
        let mut bytes = Vec::new();
        list.write(&mut bytes);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut pos = 0;
            assert!(
                BlockList::read(&bytes[..cut], &mut pos).is_none(),
                "cut {cut}"
            );
        }
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(v in proptest::collection::vec(any::<u32>(), 0..600)) {
            let values = sorted(v);
            let list = BlockList::encode(&values);
            prop_assert_eq!(list.decode_all(), values.clone());
            let mut bytes = Vec::new();
            list.write(&mut bytes);
            let mut pos = 0;
            let back = BlockList::read(&bytes, &mut pos).expect("round-trips");
            prop_assert_eq!(pos, bytes.len());
            prop_assert_eq!(back.decode_all(), values.clone());
            // The zero-copy streaming decoder agrees.
            let mut pos = 0;
            let mut scratch = Vec::new();
            let mut streamed = Vec::new();
            let blocks = BlockList::read_into(&bytes, &mut pos, &mut scratch, &mut streamed)
                .expect("streams");
            prop_assert_eq!(pos, bytes.len());
            prop_assert_eq!(blocks as usize, list.num_blocks());
            prop_assert_eq!(streamed, values);
        }

        #[test]
        fn seek_equals_partition_point(
            v in proptest::collection::vec(0u32..5000, 1..600),
            targets in proptest::collection::vec(0u32..5100, 1..40),
        ) {
            let values = sorted(v);
            let mut targets = sorted(targets);
            targets.dedup();
            let list = BlockList::encode(&values);
            let mut c = list.cursor();
            for &t in &targets {
                let expect = values
                    .get(values.partition_point(|&x| x < t))
                    .copied();
                prop_assert_eq!(c.seek(t), expect, "target {}", t);
            }
        }
    }
}
