//! Versioned binary snapshots of built [`PathIndexes`].
//!
//! Figure 6 shows index construction dominating setup cost (hours at the
//! paper's scale), so a production deployment builds once and reloads. The
//! codec stores the pattern interner and, per word, the arena plus the
//! postings in pattern-first order; the root-first order is re-derived on
//! load (a sort is ~50× cheaper than the DFS enumeration and keeps the two
//! orders impossible to desynchronize).
//!
//! Version-2 layout (little endian) — one segment per root-range shard:
//!
//! ```text
//! magic "PKBI" | u32 version | u32 d | u32 nshards |
//! (nshards + 1) × u32 bounds                            -- shard bounds
//! u32 npatterns | npatterns × (u32 len | len × u32)      -- pattern keys
//! nshards × shard segment
//! shard segment = u32 nwords | nwords × word block
//! word block = u32 word | u32 arena_len | arena_len × u32 |
//!              u32 nposts | nposts × posting
//! posting = u32 pattern | u32 root | u32 nodes_start | u16 nodes_len |
//!           u8 edge_terminal | f64 pagerank | f64 sim
//! ```
//!
//! Version-1 snapshots (the pre-shard layout, identical except for the
//! missing shard header) remain readable and decode to a single-shard
//! index, so a `shards = 1` deployment can swap binaries without
//! rebuilding.
//!
//! This is the *raw* (`PKBI`) snapshot; the compressed (`PKBC`) image
//! lives in [`crate::compress`]. The normative byte-level specification
//! of both formats — and of every other persistent format in the stack —
//! is `docs/FORMATS.md` at the repository root; change that document
//! first when bumping a version.
//!
//! Decode failures are the workspace-shared
//! [`patternkb_graph::snapshot::SnapshotError`], carrying the byte offset
//! of the damage; [`load`] additionally prefixes the file path.

use crate::pattern::{PatternId, PatternSet};
use crate::posting::Posting;
use crate::word_index::{IndexShard, PathIndexes, WordPathIndex};
use bytes::{BufMut, BytesMut};
use patternkb_graph::snapshot::{invalid_data, Reader};
use patternkb_graph::{FxHashMap, NodeId, WordId};

/// Decode failures, shared with the graph snapshot codec so every binary
/// format in the stack reports offsets the same way.
pub use patternkb_graph::snapshot::SnapshotError;

const MAGIC: &[u8; 4] = b"PKBI";
const VERSION: u32 = 2;
const V1: u32 = 1;

/// Serialize built indexes to a byte buffer.
pub fn encode(idx: &PathIndexes) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + idx.heap_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(idx.d() as u32);
    buf.put_u32_le(idx.num_shards() as u32);
    for &b in idx.bounds() {
        buf.put_u32_le(b);
    }

    let patterns = idx.patterns();
    buf.put_u32_le(patterns.len() as u32);
    for i in 0..patterns.len() {
        let key = patterns.key(PatternId(i as u32));
        buf.put_u32_le(key.len() as u32);
        for &v in key {
            buf.put_u32_le(v);
        }
    }

    for shard in idx.shards() {
        let mut words: Vec<(WordId, &WordPathIndex)> = shard.iter_words().collect();
        words.sort_by_key(|(w, _)| *w);
        buf.put_u32_le(words.len() as u32);
        for (w, widx) in words {
            buf.put_u32_le(w.0);
            let arena = widx.arena();
            buf.put_u32_le(arena.len() as u32);
            for &n in arena {
                buf.put_u32_le(n.0);
            }
            let postings = widx.postings_pattern_first();
            buf.put_u32_le(postings.len() as u32);
            for p in postings {
                buf.put_u32_le(p.pattern.0);
                buf.put_u32_le(p.root.0);
                buf.put_u32_le(p.nodes_start);
                buf.put_u16_le(p.nodes_len);
                buf.put_u8(p.edge_terminal as u8);
                buf.put_f64_le(p.pagerank);
                buf.put_f64_le(p.sim);
            }
        }
    }
    buf.to_vec()
}

/// Deserialize indexes previously produced by [`encode`] — either the
/// sharded version-2 layout or a pre-shard version-1 snapshot (decoded as
/// a single shard). A v5 (`PKB5`) container is recognized by magic and
/// fully decoded onto the heap tier, so every deployment can read every
/// snapshot generation; opening v5 *without* decoding is
/// [`crate::storage::open_mapped`].
pub fn decode(data: &[u8]) -> Result<PathIndexes, SnapshotError> {
    if crate::storage::is_v5(data) {
        return crate::storage::decode_v5(data);
    }
    let mut r = Reader::new(data);
    let mut magic = [0u8; 4];
    r.take(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION && version != V1 {
        return Err(SnapshotError::BadVersion(version));
    }
    let d = r.u32()? as usize;

    let bounds: Vec<u32> = if version == V1 {
        vec![0, u32::MAX]
    } else {
        let nshards = r.u32()? as usize;
        if nshards == 0 {
            return Err(r.bad_reference());
        }
        r.need(4 * (nshards + 1))?;
        let mut bounds = Vec::with_capacity(nshards + 1);
        for _ in 0..=nshards {
            bounds.push(r.u32()?);
        }
        if bounds[0] != 0
            || *bounds.last().expect("non-empty") != u32::MAX
            || bounds.windows(2).any(|w| w[0] > w[1])
        {
            return Err(r.bad_reference());
        }
        bounds
    };
    let nshards = bounds.len() - 1;

    let npatterns = r.u32()? as usize;
    let mut patterns = PatternSet::new();
    let mut key = Vec::new();
    for expected in 0..npatterns {
        let len = r.u32()? as usize;
        r.need(4 * len)?;
        key.clear();
        for _ in 0..len {
            key.push(r.u32()?);
        }
        let id = patterns.intern_key(&key);
        if id.0 as usize != expected {
            // Duplicate keys would permute ids and corrupt postings.
            return Err(r.bad_reference());
        }
    }

    let mut shards: Vec<IndexShard> = Vec::with_capacity(nshards);
    for s in 0..nshards {
        let (root_lo, root_hi) = (bounds[s], bounds[s + 1]);
        let nwords = r.u32()? as usize;
        let mut words: FxHashMap<WordId, WordPathIndex> =
            patternkb_graph::fxhash::map_with_capacity(nwords);
        for _ in 0..nwords {
            let w = WordId(r.u32()?);
            let arena_len = r.u32()? as usize;
            r.need(4 * arena_len + 4)?;
            let mut arena = Vec::with_capacity(arena_len);
            for _ in 0..arena_len {
                arena.push(NodeId(r.u32()?));
            }
            let nposts = r.u32()? as usize;
            let mut postings = Vec::with_capacity(nposts);
            for _ in 0..nposts {
                r.need(4 + 4 + 4 + 2 + 1 + 8 + 8)?;
                let pattern = PatternId(r.u32()?);
                let root = NodeId(r.u32()?);
                let nodes_start = r.u32()?;
                let nodes_len = r.u16()?;
                let edge_terminal = r.u8()? != 0;
                let pagerank = r.f64()?;
                let sim = r.f64()?;
                if pattern.0 as usize >= npatterns
                    || (nodes_start as usize + nodes_len as usize) > arena_len
                    || root.0 < root_lo
                    || (root_hi != u32::MAX && root.0 >= root_hi)
                {
                    return Err(r.bad_reference());
                }
                postings.push(Posting {
                    pattern,
                    root,
                    nodes_start,
                    nodes_len,
                    edge_terminal,
                    pagerank,
                    sim,
                });
            }
            words.insert(w, WordPathIndex::new(postings, arena));
        }
        shards.push(IndexShard::new(words));
    }
    Ok(PathIndexes::new(d, patterns, bounds, shards))
}

/// Write an index snapshot to `path`.
pub fn save(idx: &PathIndexes, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(idx))
}

/// Read an index snapshot from `path`.
pub fn load(path: &std::path::Path) -> std::io::Result<PathIndexes> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| invalid_data(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_indexes, BuildConfig};
    use patternkb_graph::GraphBuilder;
    use patternkb_text::{SynonymTable, TextIndex};

    fn sample() -> PathIndexes {
        let mut b = GraphBuilder::new();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let sql = b.add_node(soft, "SQL Server");
        let ms = b.add_node(comp, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let idx = sample();
        let decoded = decode(&encode(&idx)).expect("decode");
        assert_eq!(decoded.d(), idx.d());
        assert_eq!(decoded.num_shards(), idx.num_shards());
        assert_eq!(decoded.bounds(), idx.bounds());
        assert_eq!(decoded.num_words(), idx.num_words());
        assert_eq!(decoded.num_postings(), idx.num_postings());
        assert_eq!(decoded.patterns().len(), idx.patterns().len());
        for (shard, dshard) in idx.shards().iter().zip(decoded.shards()) {
            for (w, widx) in shard.iter_words() {
                let dw = dshard.word(w).expect("word survives");
                assert_eq!(dw.len(), widx.len());
                assert_eq!(dw.arena(), widx.arena());
                assert_eq!(dw.postings_pattern_first(), widx.postings_pattern_first());
                // Both access orders behave identically.
                assert_eq!(dw.roots(), widx.roots());
                let pats_a: Vec<_> = widx.patterns().collect();
                let pats_b: Vec<_> = dw.patterns().collect();
                assert_eq!(pats_a, pats_b);
            }
        }
        // Pattern keys identical.
        for i in 0..idx.patterns().len() {
            let id = PatternId(i as u32);
            assert_eq!(idx.patterns().key(id), decoded.patterns().key(id));
        }
    }

    #[test]
    fn roundtrip_across_shard_counts() {
        // The same graph encoded at several shard counts: every snapshot
        // round-trips to its own layout, and all of them hold the same
        // global posting multiset.
        let (g, t) = {
            let mut b = GraphBuilder::new();
            let ty = b.add_type("Station");
            let next = b.add_attr("next stop");
            let nodes: Vec<_> = (0..12)
                .map(|i| b.add_node(ty, &format!("station number {i}")))
                .collect();
            for w in nodes.windows(2) {
                b.add_edge(w[0], next, w[1]);
            }
            let g = b.build();
            let t = TextIndex::build(&g, SynonymTable::new());
            (g, t)
        };
        let reference = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        for shards in [1usize, 2, 5] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            assert_eq!(idx.num_shards(), shards);
            let decoded = decode(&encode(&idx)).expect("decode");
            assert_eq!(decoded.num_shards(), shards);
            assert_eq!(decoded.bounds(), idx.bounds());
            assert_eq!(decoded.num_postings(), reference.num_postings());
            assert_eq!(decoded.num_words(), reference.num_words());
            for (shard, dshard) in idx.shards().iter().zip(decoded.shards()) {
                for (w, widx) in shard.iter_words() {
                    let dw = dshard.word(w).expect("word survives");
                    assert_eq!(dw.postings_pattern_first(), widx.postings_pattern_first());
                    assert_eq!(dw.arena(), widx.arena());
                }
            }
        }
    }

    #[test]
    fn rejects_postings_outside_shard_bounds() {
        let mut b = GraphBuilder::new();
        let ty = b.add_type("Thing");
        let a = b.add_attr("rel");
        let n0 = b.add_node(ty, "alpha item");
        let n1 = b.add_node(ty, "beta item");
        let n2 = b.add_node(ty, "gamma item");
        b.add_edge(n0, a, n1);
        b.add_edge(n1, a, n2);
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 3,
            },
        );
        let mut data = encode(&idx);
        // Corrupt the second shard bound so shard 0's postings fall outside
        // their declared range.
        let bound1_offset = 4 + 4 + 4 + 4 + 4; // magic|version|d|nshards|bounds[0]
        data[bound1_offset..bound1_offset + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode(&data).unwrap_err(),
            SnapshotError::BadReference { .. }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode(b"xx").unwrap_err(),
            SnapshotError::Truncated { offset: 0 }
        );
        assert_eq!(
            decode(b"XXXXaaaaaaaaaaaa").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode(&sample());
        data[4] = 99;
        assert_eq!(decode(&data).unwrap_err(), SnapshotError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data = encode(&sample());
        for cut in [4, 13, 30, data.len() / 3, data.len() - 3] {
            assert!(decode(&data[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn file_roundtrip() {
        let idx = sample();
        let dir = std::env::temp_dir().join("patternkb_index_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.pkbi");
        save(&idx, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_postings(), idx.num_postings());
        std::fs::remove_file(&path).ok();
    }
}
