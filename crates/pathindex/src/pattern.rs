//! Path patterns and their interning.
//!
//! A path pattern (§2.2.2) is the type signature of a root-to-match path:
//!
//! * node-terminal: `τ(v1) α(e1) τ(v2) … α(e_{l−1}) τ(v_l)`;
//! * edge-terminal: `τ(v1) α(e1) τ(v2) … α(e_l)` — it ends with the matched
//!   attribute type and deliberately omits the leaf's type (the leaf of an
//!   edge match is typically a plain-text dummy entity; cf. Figure 2 where
//!   the "Revenue" arrow points at `*`).
//!
//! Patterns are interned into dense [`PatternId`]s so tree patterns are just
//! small id vectors and pattern equality is id equality.

use patternkb_graph::ids::Id;
use patternkb_graph::{AttrId, FxHashMap, KnowledgeGraph, TypeId};

/// Interned id of a [`PathPattern`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct PatternId(pub u32);

impl PatternId {
    /// Raw index into the owning [`PatternSet`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for PatternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PatternId({})", self.0)
    }
}

/// A decoded path pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathPattern {
    /// Node types `τ(v1) … τ(v_l)` along the path.
    pub types: Vec<TypeId>,
    /// Attribute types; `types.len() - 1` entries for node-terminal
    /// patterns, `types.len()` entries for edge-terminal ones.
    pub attrs: Vec<AttrId>,
    /// Whether the keyword is matched on the final edge.
    pub edge_terminal: bool,
}

impl PathPattern {
    /// The root type `τ(v1)` — the first entry of the pattern.
    #[inline]
    pub fn root_type(&self) -> TypeId {
        self.types[0]
    }

    /// Number of explicit nodes `l` on the path.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.types.len()
    }

    /// The paper's pattern length `|pattern(T(w))|` used for the height
    /// bound: explicit nodes, plus the implied leaf of an edge match
    /// (DESIGN.md §2: the only reading consistent with Example 2.4).
    #[inline]
    pub fn height(&self) -> usize {
        self.types.len() + usize::from(self.edge_terminal)
    }

    /// Render like the paper: `(Software) (Developer) (Company) (Revenue)`.
    pub fn display(&self, g: &KnowledgeGraph) -> String {
        let mut out = String::new();
        for i in 0..self.types.len() {
            if i > 0 {
                out.push(' ');
            }
            let t = self.types[i];
            if t == KnowledgeGraph::TEXT_TYPE {
                out.push_str("(*)");
            } else {
                out.push('(');
                out.push_str(g.type_text(t));
                out.push(')');
            }
            if i < self.attrs.len() {
                out.push_str(" (");
                out.push_str(g.attr_text(self.attrs[i]));
                out.push(')');
            }
        }
        out
    }

    /// Encode into the flat key used by the interner:
    /// `[(l << 1) | edge_terminal, τ1, α1, τ2, α2, …]`.
    pub fn encode(&self) -> Vec<u32> {
        let l = self.types.len();
        let mut key = Vec::with_capacity(1 + l + self.attrs.len());
        key.push(((l as u32) << 1) | u32::from(self.edge_terminal));
        for i in 0..l {
            key.push(self.types[i].as_u32());
            if i + 1 < l {
                key.push(self.attrs[i].as_u32());
            }
        }
        if self.edge_terminal {
            // Edge-terminal: the terminal attr follows the last type.
            debug_assert_eq!(self.attrs.len(), l);
            key.push(self.attrs[l - 1].as_u32());
        }
        key
    }

    /// Decode an interner key back into a pattern.
    pub fn decode(key: &[u32]) -> Self {
        let header = key[0];
        let l = (header >> 1) as usize;
        let edge_terminal = (header & 1) == 1;
        let mut types = Vec::with_capacity(l);
        let mut attrs = Vec::with_capacity(l);
        let mut it = key[1..].iter().copied();
        for i in 0..l {
            types.push(TypeId(it.next().expect("type")));
            if i < l - 1 {
                attrs.push(AttrId(it.next().expect("attr")));
            }
        }
        if edge_terminal {
            // Two trailing attrs were flattened: interleaving stops after
            // the last type, then edge attrs follow.
            attrs.push(AttrId(it.next().expect("terminal attr")));
        }
        debug_assert!(it.next().is_none());
        PathPattern {
            types,
            attrs,
            edge_terminal,
        }
    }
}

/// Append-only pattern interner shared by both path indexes.
#[derive(Clone, Default)]
pub struct PatternSet {
    keys: Vec<Box<[u32]>>,
    lookup: FxHashMap<Box<[u32]>, u32>,
    /// Cached decoded metadata: (root type, height, edge_terminal, l).
    meta: Vec<PatternMeta>,
}

#[derive(Clone, Copy, Debug)]
struct PatternMeta {
    root_type: TypeId,
    height: u8,
    num_nodes: u8,
    edge_terminal: bool,
}

impl PatternSet {
    /// Fresh, empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an encoded key (see [`PathPattern::encode`]).
    pub fn intern_key(&mut self, key: &[u32]) -> PatternId {
        if let Some(&id) = self.lookup.get(key) {
            return PatternId(id);
        }
        let id = self.keys.len() as u32;
        let boxed: Box<[u32]> = key.into();
        self.keys.push(boxed.clone());
        self.lookup.insert(boxed, id);
        let l = (key[0] >> 1) as usize;
        let edge_terminal = (key[0] & 1) == 1;
        self.meta.push(PatternMeta {
            root_type: TypeId(key[1]),
            height: (l + usize::from(edge_terminal)) as u8,
            num_nodes: l as u8,
            edge_terminal,
        });
        PatternId(id)
    }

    /// Intern a decoded pattern.
    pub fn intern(&mut self, p: &PathPattern) -> PatternId {
        self.intern_key(&p.encode())
    }

    /// Look up an already-interned key.
    pub fn get_key(&self, key: &[u32]) -> Option<PatternId> {
        self.lookup.get(key).map(|&id| PatternId(id))
    }

    /// Decode pattern `id`.
    pub fn decode(&self, id: PatternId) -> PathPattern {
        PathPattern::decode(&self.keys[id.index()])
    }

    /// The raw encoded key of pattern `id` (used when merging worker-local
    /// pattern sets into the global one).
    pub fn key(&self, id: PatternId) -> &[u32] {
        &self.keys[id.index()]
    }

    /// Root type `τ(v1)` of pattern `id` (cached; O(1)).
    #[inline]
    pub fn root_type(&self, id: PatternId) -> TypeId {
        self.meta[id.index()].root_type
    }

    /// Height `|pattern|` of pattern `id` (cached; O(1)).
    #[inline]
    pub fn height(&self, id: PatternId) -> usize {
        self.meta[id.index()].height as usize
    }

    /// Number of explicit nodes `l` of pattern `id`.
    #[inline]
    pub fn num_nodes(&self, id: PatternId) -> usize {
        self.meta[id.index()].num_nodes as usize
    }

    /// Whether pattern `id` is edge-terminal.
    #[inline]
    pub fn is_edge_terminal(&self, id: PatternId) -> bool {
        self.meta[id.index()].edge_terminal
    }

    /// Number of interned patterns.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no patterns have been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate resident bytes.
    pub fn heap_bytes(&self) -> usize {
        self.keys.iter().map(|k| k.len() * 4 + 16).sum::<usize>() * 2
            + self.meta.len() * std::mem::size_of::<PatternMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node_terminal() -> PathPattern {
        PathPattern {
            types: vec![TypeId(1), TypeId(2), TypeId(3)],
            attrs: vec![AttrId(10), AttrId(11)],
            edge_terminal: false,
        }
    }

    fn sample_edge_terminal() -> PathPattern {
        PathPattern {
            types: vec![TypeId(1), TypeId(2)],
            attrs: vec![AttrId(10), AttrId(11)],
            edge_terminal: true,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for p in [sample_node_terminal(), sample_edge_terminal()] {
            assert_eq!(PathPattern::decode(&p.encode()), p);
        }
    }

    #[test]
    fn heights() {
        assert_eq!(sample_node_terminal().height(), 3);
        // 2 explicit nodes + implied leaf.
        assert_eq!(sample_edge_terminal().height(), 3);
        assert_eq!(sample_edge_terminal().num_nodes(), 2);
    }

    #[test]
    fn interning_dedups() {
        let mut set = PatternSet::new();
        let a = set.intern(&sample_node_terminal());
        let b = set.intern(&sample_edge_terminal());
        let a2 = set.intern(&sample_node_terminal());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(set.len(), 2);
        assert_eq!(set.decode(a), sample_node_terminal());
        assert_eq!(set.decode(b), sample_edge_terminal());
    }

    #[test]
    fn cached_meta_matches_decoded() {
        let mut set = PatternSet::new();
        let a = set.intern(&sample_node_terminal());
        let b = set.intern(&sample_edge_terminal());
        assert_eq!(set.root_type(a), TypeId(1));
        assert_eq!(set.height(a), 3);
        assert!(!set.is_edge_terminal(a));
        assert_eq!(set.height(b), 3);
        assert_eq!(set.num_nodes(b), 2);
        assert!(set.is_edge_terminal(b));
    }

    #[test]
    fn single_node_pattern() {
        // The trivial pattern of a keyword matched at the root itself
        // (e.g. "(Software)" for the word "software" in Example 2.3).
        let p = PathPattern {
            types: vec![TypeId(5)],
            attrs: vec![],
            edge_terminal: false,
        };
        let key = p.encode();
        assert_eq!(key, vec![1 << 1, 5]);
        assert_eq!(PathPattern::decode(&key), p);
        assert_eq!(p.height(), 1);
    }

    #[test]
    fn display_formats_like_paper() {
        let mut b = patternkb_graph::GraphBuilder::new();
        b.skip_pagerank();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let s = b.add_node(soft, "s");
        let c = b.add_node(comp, "c");
        b.add_edge(s, dev, c);
        let g = b.build();
        let p = PathPattern {
            types: vec![soft, comp],
            attrs: vec![dev, rev],
            edge_terminal: true,
        };
        assert_eq!(p.display(&g), "(Software) (Developer) (Company) (Revenue)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pattern() -> impl Strategy<Value = PathPattern> {
        (
            1usize..5,
            any::<bool>(),
            proptest::collection::vec(0u32..50, 10),
        )
            .prop_map(|(l, edge_terminal, raw)| {
                let types: Vec<TypeId> = raw[..l].iter().map(|&x| TypeId(x)).collect();
                let nattrs = if edge_terminal { l } else { l - 1 };
                let attrs: Vec<AttrId> = raw[5..5 + nattrs].iter().map(|&x| AttrId(x)).collect();
                PathPattern {
                    types,
                    attrs,
                    edge_terminal,
                }
            })
    }

    proptest! {
        #[test]
        fn roundtrip(p in arb_pattern()) {
            prop_assert_eq!(PathPattern::decode(&p.encode()), p);
        }

        #[test]
        fn interning_is_injective(ps in proptest::collection::vec(arb_pattern(), 1..20)) {
            let mut set = PatternSet::new();
            let ids: Vec<PatternId> = ps.iter().map(|p| set.intern(p)).collect();
            for i in 0..ps.len() {
                prop_assert_eq!(set.decode(ids[i]), ps[i].clone());
                for j in 0..ps.len() {
                    prop_assert_eq!(ids[i] == ids[j], ps[i] == ps[j]);
                }
            }
        }
    }
}
