//! Index size/shape accounting, powering the Figure-6 reproduction (index
//! construction time and size for different height thresholds `d`).

use crate::word_index::PathIndexes;

/// Aggregate statistics of a built [`PathIndexes`].
#[derive(Clone, Debug, PartialEq)]
pub struct IndexStats {
    /// Height threshold the index was built for.
    pub d: usize,
    /// Number of root-range shards.
    pub shards: usize,
    /// Number of indexed canonical words.
    pub words: usize,
    /// Total postings (paths × containing words), i.e. `Σ_p |text(p)|` in
    /// the notation of Theorem 2.
    pub postings: usize,
    /// Distinct path patterns.
    pub patterns: usize,
    /// Approximate resident bytes of all index structures.
    pub heap_bytes: usize,
}

impl IndexStats {
    /// Compute statistics for `idx`.
    pub fn of(idx: &PathIndexes) -> Self {
        IndexStats {
            d: idx.d(),
            shards: idx.num_shards(),
            words: idx.num_words(),
            postings: idx.num_postings(),
            patterns: idx.patterns().len(),
            heap_bytes: idx.heap_bytes(),
        }
    }

    /// Size in mebibytes.
    pub fn megabytes(&self) -> f64 {
        self.heap_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "d={}: {} shard(s), {} words, {} postings, {} patterns, {:.1} MB",
            self.d,
            self.shards,
            self.words,
            self.postings,
            self.patterns,
            self.megabytes()
        )
    }
}

/// Per-codec posting-list counts of a compressed image — how often the
/// v4 adaptive selector picked each encoding (see `docs/FORMATS.md`).
/// Produced by
/// [`CompressedPathIndexes::encoding_mix`](crate::CompressedPathIndexes::encoding_mix);
/// legacy v3/earlier images report every list as delta (their only codec)
/// or, for interleaved v1/v2 layouts with no root column, all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingMix {
    /// Lists stored as delta + LSB-first bitpack (the general-purpose
    /// codec and the tie-breaking default).
    pub delta: u64,
    /// Lists stored run-length encoded (long root runs).
    pub rle: u64,
    /// Lists stored as dense bitmaps (high-density root ranges).
    pub bitmap: u64,
}

impl EncodingMix {
    /// Total posting lists counted.
    pub fn total(&self) -> u64 {
        self.delta + self.rle + self.bitmap
    }
}

impl std::fmt::Display for EncodingMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} lists: {} delta, {} rle, {} bitmap",
            self.total(),
            self.delta,
            self.rle,
            self.bitmap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_indexes, BuildConfig};
    use patternkb_graph::GraphBuilder;
    use patternkb_text::{SynonymTable, TextIndex};

    fn chain(n: usize) -> (patternkb_graph::KnowledgeGraph, TextIndex) {
        let mut b = GraphBuilder::new();
        let t = b.add_type("Thing");
        let a = b.add_attr("next");
        let nodes: Vec<_> = (0..n)
            .map(|i| b.add_node(t, &format!("item {i}")))
            .collect();
        for i in 0..n - 1 {
            b.add_edge(nodes[i], a, nodes[i + 1]);
        }
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        (g, t)
    }

    #[test]
    fn postings_grow_with_d() {
        let (g, t) = chain(20);
        let s2 = IndexStats::of(&build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        ));
        let s3 = IndexStats::of(&build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        ));
        let s4 = IndexStats::of(&build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 4,
                threads: 1,
                shards: 1,
            },
        ));
        assert!(s2.postings < s3.postings);
        assert!(s3.postings < s4.postings);
        assert!(s2.heap_bytes < s4.heap_bytes);
        assert_eq!(s2.d, 2);
        let line = format!("{s2}");
        assert!(line.contains("d=2"));
    }

    #[test]
    fn encoding_mix_counts_every_list() {
        let (g, t) = chain(40);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let img = crate::compress::CompressedPathIndexes::compress(&idx);
        let mix = img.encoding_mix().expect("fresh image walks cleanly");
        // One root column per (word, pattern) group across all shards.
        let groups: u64 = idx
            .shards()
            .iter()
            .flat_map(|s| s.iter_words())
            .map(|(_, w)| w.patterns().count() as u64)
            .sum();
        assert_eq!(mix.total(), groups);
        assert!(mix.total() > 0);
        let line = format!("{mix}");
        assert!(line.contains("delta") && line.contains("bitmap"));
    }

    #[test]
    fn pattern_count_on_chain() {
        // On a typed chain, patterns are one per path length (node-terminal)
        // plus one per length (edge-terminal).
        let (g, t) = chain(10);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let s = IndexStats::of(&idx);
        // node-terminal: (T), (T next T), (T next T next T) = 3
        // edge-terminal: (T next), (T next T next) = 2
        assert_eq!(s.patterns, 5);
    }
}
