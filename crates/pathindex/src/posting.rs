//! A single index posting: one path, for one word, with precomputed scores.

use crate::pattern::PatternId;
use patternkb_graph::NodeId;

/// One materialized path ending at a node/edge containing some word.
///
/// The concrete node sequence lives in the owning word index's arena
/// (`nodes_start .. nodes_start + nodes_len`); for edge-terminal paths the
/// arena slice is `v1 … v_l, leaf` — the leaf is the matched edge's target
/// and is included so table answers can show the value column (e.g. the
/// "US$ 77 billion" cell of Figure 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Posting {
    /// Interned path pattern.
    pub pattern: PatternId,
    /// The path's starting node `r`.
    pub root: NodeId,
    /// Start of the node sequence in the word arena.
    pub nodes_start: u32,
    /// Length of the node sequence (explicit nodes, plus leaf if
    /// edge-terminal). Equals the paper's `|T(w)|` scoring length.
    pub nodes_len: u16,
    /// Whether the word is matched on the final edge.
    pub edge_terminal: bool,
    /// Precomputed `PR(f(w))` — PageRank of the matched node, or of the
    /// edge's source node for edge matches (Eq. (5)).
    pub pagerank: f64,
    /// Precomputed `sim(w, f(w))` — Jaccard of the keyword against the
    /// matched element's text (Eq. (6)).
    pub sim: f64,
}

impl Posting {
    /// The scoring length `|T(w)|` (number of nodes on the path, counting
    /// the implied leaf of an edge match; DESIGN.md §2).
    #[inline]
    pub fn score_len(&self) -> u32 {
        self.nodes_len as u32
    }

    /// Range into the word arena.
    #[inline]
    pub fn node_range(&self) -> std::ops::Range<usize> {
        let s = self.nodes_start as usize;
        s..s + self.nodes_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges() {
        let p = Posting {
            pattern: PatternId(0),
            root: NodeId(3),
            nodes_start: 10,
            nodes_len: 3,
            edge_terminal: true,
            pagerank: 0.5,
            sim: 1.0,
        };
        assert_eq!(p.node_range(), 10..13);
        assert_eq!(p.score_len(), 3);
    }
}
