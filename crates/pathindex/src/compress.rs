//! Compressed posting tier: block-coded roots + LEB128 coded payloads.
//!
//! The uncompressed [`WordPathIndex`] stores both sort orders of every
//! posting as fixed-width structs (fast, but ≈56 bytes per posting plus the
//! node arena). For large `d` the index grows steeply — the paper's
//! Figure 6 reports 34 GB at `d = 4` — so this module provides a cold tier
//! that keeps one word's postings as a compact byte stream and decodes on
//! demand:
//!
//! * postings are stored once, in pattern-first order, grouped by pattern;
//! * each group's root column is an adaptively-encoded
//!   [`crate::blocks::BlockList`]: the builder computes the exact
//!   serialized size of delta + bitpack blocks, run-length runs, and a
//!   dense bitmap, and keeps the smallest (stream format v4 — one codec
//!   tag byte per list, followed by a per-block suffix score-bound
//!   section; the untagged delta-only v3 layout and the per-integer
//!   varint layout of v2/v1 images still decode);
//! * pattern ids are delta-coded ([`crate::varint`]);
//! * the leading path node is implicit (it equals the root);
//! * the two cached scores stay as raw little-endian `f64`s, so a
//!   compress → decompress round trip is **bit-exact** (asserted by tests).
//!
//! [`CompressedPathIndexes::decompress_word`] rebuilds a single word's
//! queryable index — the natural unit, since query processing touches only
//! the query's keywords. Decoding validates the stream and reports
//! [`CompressError`] on truncation or corruption instead of panicking.

use crate::blocks::BlockList;
use crate::pattern::{PatternId, PatternSet};
use crate::posting::Posting;
use crate::varint;
use crate::word_index::{PathIndexes, WordPathIndex};
use patternkb_graph::{FxHashMap, NodeId, WordId};

/// A corrupt or truncated compressed posting stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// The stream ended before all declared postings were decoded.
    Truncated,
    /// A decoded value was out of range (e.g. a path length of zero or
    /// beyond the supported maximum).
    Corrupt(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed posting stream truncated"),
            CompressError::Corrupt(what) => {
                write!(f, "compressed posting stream corrupt: {what}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Stream layout of one word's compressed postings. Crate-visible so the
/// storage-backed snapshot tier ([`crate::storage`]) can decode the same
/// adaptive streams directly from mapped bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum StreamLayout {
    /// v4: per group, a tagged adaptively-encoded [`BlockList`] root
    /// column and a suffix score-bound section, then the payloads.
    #[default]
    Adaptive,
    /// v3: per group, the root column is an untagged delta + bitpack
    /// [`BlockList`] followed by the posting payloads.
    Blocked,
    /// v1/v2: roots delta + varint coded, interleaved with payloads.
    Interleaved,
}

/// One word's postings as a compact byte stream.
#[derive(Clone, Debug, Default)]
pub struct CompressedWordIndex {
    bytes: Box<[u8]>,
    num_postings: u32,
    layout: StreamLayout,
}

impl CompressedWordIndex {
    /// Encode all postings of `widx` (pattern-first order, v4 adaptive
    /// layout).
    pub fn from_word_index(widx: &WordPathIndex) -> Self {
        let postings = widx.postings_pattern_first();
        let mut bytes: Vec<u8> = Vec::with_capacity(postings.len() * 12);

        // Group boundaries: postings are sorted by (pattern, root).
        let mut groups: Vec<(PatternId, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < postings.len() {
            let pat = postings[i].pattern;
            let start = i;
            while i < postings.len() && postings[i].pattern == pat {
                i += 1;
            }
            groups.push((pat, start, i));
        }

        varint::put_u32(&mut bytes, groups.len() as u32);
        let mut prev_pat = 0u32;
        let mut roots: Vec<u32> = Vec::new();
        for (gi, &(pat, lo, hi)) in groups.iter().enumerate() {
            varint::put_u32(&mut bytes, pat.0 - prev_pat);
            prev_pat = pat.0;
            varint::put_u32(&mut bytes, (hi - lo) as u32);
            // Root column: non-decreasing within the group → the codec
            // that serializes smallest wins (tag byte + payload).
            roots.clear();
            roots.extend(postings[lo..hi].iter().map(|p| p.root.0));
            BlockList::encode(&roots).write(&mut bytes);
            // Suffix score-bound section (empty for short lists): the
            // group order matches the pattern-first primary order, so
            // `gi` indexes the word's bound tables directly.
            let bounds = widx.pattern_block_bounds(gi);
            varint::put_u32(&mut bytes, bounds.len() as u32);
            for b in bounds {
                varint::put_u32(&mut bytes, b.num_paths);
                varint::put_u32(&mut bytes, b.max_per_root);
                for v in [
                    b.min_len, b.max_len, b.min_pr, b.max_pr, b.min_sim, b.max_sim,
                ] {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            // Payload column, in the same posting order.
            for p in &postings[lo..hi] {
                let header = ((p.nodes_len as u32) << 1) | u32::from(p.edge_terminal);
                varint::put_u32(&mut bytes, header);
                let nodes = widx.nodes_of(p);
                debug_assert_eq!(nodes[0], p.root, "paths start at their root");
                for &v in &nodes[1..] {
                    varint::put_u32(&mut bytes, v.0);
                }
                bytes.extend_from_slice(&p.pagerank.to_le_bytes());
                bytes.extend_from_slice(&p.sim.to_le_bytes());
            }
        }

        CompressedWordIndex {
            bytes: bytes.into_boxed_slice(),
            num_postings: postings.len() as u32,
            layout: StreamLayout::Adaptive,
        }
    }

    /// Decode back into a queryable [`WordPathIndex`]. Returns the blocks
    /// decoded alongside (0 for legacy interleaved streams).
    pub fn decode_counted(&self) -> Result<(WordPathIndex, u64), CompressError> {
        decode_stream(&self.bytes, self.num_postings, self.layout)
    }

    /// The raw stream bytes (used by the v5 storage tier, which embeds
    /// per-word adaptive streams verbatim in its offset-table layout).
    pub(crate) fn stream_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decode back into a queryable [`WordPathIndex`].
    pub fn decode(&self) -> Result<WordPathIndex, CompressError> {
        self.decode_counted().map(|(widx, _)| widx)
    }

    /// Number of postings in the stream.
    pub fn len(&self) -> usize {
        self.num_postings as usize
    }

    /// Whether the stream holds no postings.
    pub fn is_empty(&self) -> bool {
        self.num_postings == 0
    }

    /// Resident bytes of the compressed stream.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// How many pattern groups of this stream use each root-column codec,
    /// indexed `[delta, rle, bitmap]`. Walks the stream framing without
    /// materializing postings. v3 streams count every list as delta; v1/v2
    /// streams carry no block lists and report all zeros.
    pub fn encoding_counts(&self) -> Result<[u32; 3], CompressError> {
        use crate::blocks::{TAG_BITMAP, TAG_DELTA, TAG_RLE};
        let mut counts = [0u32; 3];
        if self.layout == StreamLayout::Interleaved {
            return Ok(counts);
        }
        let buf = &self.bytes;
        let mut pos = 0usize;
        let num_groups = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)? as usize;
        let mut skips: Vec<(u32, u32, u32)> = Vec::new();
        let mut roots: Vec<u32> = Vec::new();
        for _ in 0..num_groups {
            varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?; // pattern delta
            let count = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
            roots.clear();
            if self.layout == StreamLayout::Adaptive {
                let slot = match BlockList::peek_tag(buf, pos) {
                    Some(TAG_DELTA) => 0,
                    Some(TAG_RLE) => 1,
                    Some(TAG_BITMAP) => 2,
                    _ => return Err(CompressError::Corrupt("unknown codec tag")),
                };
                counts[slot] += 1;
                BlockList::read_into(buf, &mut pos, &mut skips, &mut roots)
                    .ok_or(CompressError::Truncated)?;
                let nbounds =
                    varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)? as usize;
                if nbounds > count as usize {
                    return Err(CompressError::Corrupt("bound table larger than group"));
                }
                for _ in 0..nbounds {
                    varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
                    varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
                    if pos + 48 > buf.len() {
                        return Err(CompressError::Truncated);
                    }
                    pos += 48;
                }
            } else {
                counts[0] += 1;
                BlockList::read_into_untagged_delta(buf, &mut pos, &mut skips, &mut roots)
                    .ok_or(CompressError::Truncated)?;
            }
            // Skip the payload column without materializing it.
            for _ in 0..count {
                let header = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
                let nodes_len = (header >> 1) as usize;
                if nodes_len == 0 || nodes_len > crate::build::MAX_D + 1 {
                    return Err(CompressError::Corrupt("path length out of range"));
                }
                for _ in 1..nodes_len {
                    varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
                }
                if pos + 16 > buf.len() {
                    return Err(CompressError::Truncated);
                }
                pos += 16;
            }
        }
        Ok(counts)
    }
}

/// Decode one word's compressed posting stream from a borrowed byte
/// slice. This is the shared stream decoder behind both the heap tier
/// ([`CompressedWordIndex::decode_counted`], which owns its bytes) and the
/// storage-backed v5 tier ([`crate::storage`], which borrows the stream
/// in place from a mapped snapshot). Returns the rebuilt index plus the
/// number of skip blocks decoded (0 for legacy interleaved streams).
///
/// The stream must span `buf` exactly: trailing bytes are an error, so a
/// wrong length prefix in a container can never be silently absorbed.
pub(crate) fn decode_stream(
    buf: &[u8],
    num_postings: u32,
    layout: StreamLayout,
) -> Result<(WordPathIndex, u64), CompressError> {
    let mut postings: Vec<Posting> = Vec::with_capacity(num_postings as usize);
    let mut arena: Vec<NodeId> = Vec::new();
    let mut pos = 0usize;
    let mut blocks_decoded = 0u64;

    let num_groups = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)? as usize;
    let mut pat = 0u32;
    // Reused across groups: skip-table and root-column scratch for the
    // in-place block decode (no per-group allocation).
    let mut skips_scratch: Vec<(u32, u32, u32)> = Vec::new();
    let mut roots_scratch: Vec<u32> = Vec::new();
    for gi in 0..num_groups {
        let delta = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
        pat = if gi == 0 { delta } else { pat + delta };
        let count = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
        // v4/v3 carry the whole root column up front; v1/v2
        // interleave root deltas with the payloads.
        if layout != StreamLayout::Interleaved {
            roots_scratch.clear();
            let blocks = match layout {
                StreamLayout::Adaptive => {
                    BlockList::read_into(buf, &mut pos, &mut skips_scratch, &mut roots_scratch)
                }
                _ => BlockList::read_into_untagged_delta(
                    buf,
                    &mut pos,
                    &mut skips_scratch,
                    &mut roots_scratch,
                ),
            }
            .ok_or(CompressError::Truncated)?;
            if roots_scratch.len() != count as usize {
                return Err(CompressError::Corrupt("root column count mismatch"));
            }
            blocks_decoded += blocks;
        }
        if layout == StreamLayout::Adaptive {
            // Validate and discard the suffix bound section — it is
            // derived data, recomputed from the decoded postings by
            // `WordPathIndex::new`, carried in the image so readers
            // without the postings can still plan block skipping.
            let nbounds = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)? as usize;
            if nbounds > count as usize {
                return Err(CompressError::Corrupt("bound table larger than group"));
            }
            for _ in 0..nbounds {
                varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?; // num_paths
                varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?; // max_per_root
                if pos + 48 > buf.len() {
                    return Err(CompressError::Truncated);
                }
                for k in 0..6 {
                    let at = pos + 8 * k;
                    let v = f64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
                    if !v.is_finite() {
                        return Err(CompressError::Corrupt("non-finite score bound"));
                    }
                }
                pos += 48;
            }
        }
        let mut root = 0u32;
        for pi in 0..count {
            root = match layout {
                StreamLayout::Adaptive | StreamLayout::Blocked => roots_scratch[pi as usize],
                StreamLayout::Interleaved => {
                    let rdelta = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
                    if pi == 0 {
                        rdelta
                    } else {
                        root + rdelta
                    }
                }
            };
            let header = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
            let edge_terminal = header & 1 == 1;
            let nodes_len = (header >> 1) as usize;
            if nodes_len == 0 || nodes_len > crate::build::MAX_D + 1 {
                return Err(CompressError::Corrupt("path length out of range"));
            }
            let start = arena.len() as u32;
            arena.push(NodeId(root));
            for _ in 1..nodes_len {
                let v = varint::get_u32(buf, &mut pos).ok_or(CompressError::Truncated)?;
                arena.push(NodeId(v));
            }
            if pos + 16 > buf.len() {
                return Err(CompressError::Truncated);
            }
            let pagerank = f64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
            let sim = f64::from_le_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
            pos += 16;
            if !pagerank.is_finite() || !sim.is_finite() {
                return Err(CompressError::Corrupt("non-finite cached score"));
            }
            postings.push(Posting {
                pattern: PatternId(pat),
                root: NodeId(root),
                nodes_start: start,
                nodes_len: nodes_len as u16,
                edge_terminal,
                pagerank,
                sim,
            });
        }
    }
    if postings.len() != num_postings as usize {
        return Err(CompressError::Corrupt("posting count mismatch"));
    }
    if pos != buf.len() {
        return Err(CompressError::Corrupt("trailing bytes"));
    }
    Ok((WordPathIndex::new(postings, arena), blocks_decoded))
}

/// All per-word compressed streams plus the (uncompressed — it is tiny)
/// shared pattern set. A cold-storage drop-in for [`PathIndexes`],
/// mirroring its root-range shard layout segment by segment.
pub struct CompressedPathIndexes {
    d: usize,
    patterns: PatternSet,
    bounds: Vec<u32>,
    shards: Vec<FxHashMap<WordId, CompressedWordIndex>>,
}

impl CompressedPathIndexes {
    /// Compress every word of every shard of `idx`.
    pub fn compress(idx: &PathIndexes) -> Self {
        let shards = idx
            .shards()
            .iter()
            .map(|shard| {
                shard
                    .iter_words()
                    .map(|(w, widx)| (w, CompressedWordIndex::from_word_index(widx)))
                    .collect()
            })
            .collect();
        CompressedPathIndexes {
            d: idx.d(),
            patterns: idx.patterns().clone(),
            bounds: idx.bounds().to_vec(),
            shards,
        }
    }

    /// The height threshold `d` the source index was built for.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The shared pattern interner.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Number of root-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Check every decoded posting's root against the shard's declared
    /// range — the same invariant the raw snapshot decoder enforces, so a
    /// corrupted delta-coded root stream surfaces as an error instead of
    /// silently breaking the shard layout (mis-routed roots would corrupt
    /// the cross-shard candidate-root merge and incremental routing).
    fn check_shard_range(&self, s: usize, widx: &WordPathIndex) -> Result<(), CompressError> {
        let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
        for p in widx.postings_pattern_first() {
            if p.root.0 < lo || (hi != u32::MAX && p.root.0 >= hi) {
                return Err(CompressError::Corrupt("root outside shard bounds"));
            }
        }
        Ok(())
    }

    /// Decode one word's postings (merged across shards) into a queryable
    /// index — the unit of work for query processing, which touches only
    /// the query keywords.
    pub fn decompress_word(&self, w: WordId) -> Option<Result<WordPathIndex, CompressError>> {
        let streams: Vec<(usize, &CompressedWordIndex)> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| shard.get(&w).map(|c| (s, c)))
            .collect();
        if streams.is_empty() {
            return None;
        }
        let merge = || -> Result<WordPathIndex, CompressError> {
            let mut postings: Vec<Posting> = Vec::new();
            let mut arena: Vec<NodeId> = Vec::new();
            for (s, c) in streams {
                let part = c.decode()?;
                self.check_shard_range(s, &part)?;
                let base = arena.len() as u32;
                arena.extend_from_slice(part.arena());
                postings.extend(part.postings_pattern_first().iter().map(|p| Posting {
                    nodes_start: p.nodes_start + base,
                    ..*p
                }));
            }
            Ok(WordPathIndex::new(postings, arena))
        };
        Some(merge())
    }

    /// Decode everything back into a full (sharded) [`PathIndexes`].
    pub fn decompress(&self) -> Result<PathIndexes, CompressError> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter().enumerate() {
            let mut words = FxHashMap::default();
            for (&w, c) in shard {
                let widx = c.decode()?;
                self.check_shard_range(s, &widx)?;
                words.insert(w, widx);
            }
            shards.push(crate::word_index::IndexShard::new(words));
        }
        Ok(PathIndexes::new(
            self.d,
            self.patterns.clone(),
            self.bounds.clone(),
            shards,
        ))
    }

    /// Number of distinct words with postings.
    pub fn num_words(&self) -> usize {
        let mut ids: Vec<WordId> = self.shards.iter().flat_map(|s| s.keys().copied()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Total postings across all words and shards.
    pub fn num_postings(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|c| c.len())
            .sum()
    }

    /// Resident bytes: streams plus the pattern set.
    pub fn heap_bytes(&self) -> usize {
        let entries: usize = self.shards.iter().map(|s| s.len()).sum();
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|c| c.heap_bytes())
            .sum::<usize>()
            + self.patterns.heap_bytes()
            + entries * (std::mem::size_of::<WordId>() + std::mem::size_of::<CompressedWordIndex>())
    }

    /// `compressed bytes / uncompressed bytes` for the posting payload.
    pub fn ratio_against(&self, idx: &PathIndexes) -> f64 {
        self.heap_bytes() as f64 / idx.heap_bytes() as f64
    }

    /// Per-codec posting-list counts across every word and shard — how
    /// often the adaptive selector picked each encoding (walks the actual
    /// streams via [`CompressedWordIndex::encoding_counts`], so the
    /// answer reflects what is stored, not what a re-encode would pick).
    pub fn encoding_mix(&self) -> Result<crate::stats::EncodingMix, CompressError> {
        let mut mix = crate::stats::EncodingMix::default();
        for shard in &self.shards {
            for c in shard.values() {
                let [d, r, b] = c.encoding_counts()?;
                mix.delta += u64::from(d);
                mix.rle += u64::from(r);
                mix.bitmap += u64::from(b);
            }
        }
        Ok(mix)
    }

    /// Test/diagnostic hook: flip one byte of one word's stream (first
    /// shard containing it), returning `false` if the word is absent or
    /// empty. Used by failure-injection tests to prove corrupted streams
    /// surface errors instead of garbage.
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self, w: WordId, byte: usize) -> bool {
        for shard in &mut self.shards {
            if let Some(c) = shard.get_mut(&w) {
                if !c.bytes.is_empty() {
                    let i = byte % c.bytes.len();
                    c.bytes[i] ^= 0xa5;
                    return true;
                }
            }
        }
        false
    }
}

// ---------------------------------------------------------------------
// Persistence: the compressed tier is also the compact on-disk format.
// ---------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"PKBC";
const VERSION: u32 = 4;
const V3: u32 = 3;
const V2: u32 = 2;
const V1: u32 = 1;

impl CompressedPathIndexes {
    /// Serialize to a versioned byte image. Typically ~4–5× smaller than
    /// the raw [`crate::snapshot`] image, since the posting payload *is*
    /// the compressed stream. Version 4 adaptively encodes each group's
    /// root column ([`crate::blocks`]) and carries per-block suffix score
    /// bounds; version 3 (untagged delta + bitpack lists), version 2
    /// (per-integer varint roots, segment per shard) and version 1
    /// (pre-shard) images still decode. `docs/FORMATS.md` is the
    /// normative layout spec.
    pub fn encode(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(self.heap_bytes() + 1024);
        buf.extend_from_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.d as u32);
        buf.put_u32_le(self.shards.len() as u32);
        for &b in &self.bounds {
            buf.put_u32_le(b);
        }
        buf.put_u32_le(self.patterns.len() as u32);
        for i in 0..self.patterns.len() {
            let key = self.patterns.key(PatternId(i as u32));
            buf.put_u32_le(key.len() as u32);
            for &v in key {
                buf.put_u32_le(v);
            }
        }
        for shard in &self.shards {
            // Deterministic word order for reproducible images.
            let mut words: Vec<(&WordId, &CompressedWordIndex)> = shard.iter().collect();
            words.sort_by_key(|(w, _)| **w);
            buf.put_u32_le(words.len() as u32);
            for (w, c) in words {
                buf.put_u32_le(w.0);
                buf.put_u32_le(c.num_postings);
                buf.put_u32_le(c.bytes.len() as u32);
                buf.extend_from_slice(&c.bytes);
            }
        }
        buf
    }

    /// Deserialize an [`Self::encode`] image. Validates framing eagerly
    /// and every posting stream lazily (on first decode).
    pub fn decode(data: &[u8]) -> Result<Self, CompressError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CompressError> {
            if *pos + n > data.len() {
                return Err(CompressError::Truncated);
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let get_u32 = |pos: &mut usize| -> Result<u32, CompressError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };

        if take(&mut pos, 4)? != MAGIC {
            return Err(CompressError::Corrupt("bad magic"));
        }
        let version = get_u32(&mut pos)?;
        if version != VERSION && version != V3 && version != V2 && version != V1 {
            return Err(CompressError::Corrupt("unsupported version"));
        }
        let layout = match version {
            VERSION => StreamLayout::Adaptive,
            V3 => StreamLayout::Blocked,
            _ => StreamLayout::Interleaved,
        };
        let d = get_u32(&mut pos)? as usize;
        if d == 0 || d > crate::build::MAX_D {
            return Err(CompressError::Corrupt("height threshold out of range"));
        }
        let bounds: Vec<u32> = if version == V1 {
            vec![0, u32::MAX]
        } else {
            let nshards = get_u32(&mut pos)? as usize;
            if nshards == 0 {
                return Err(CompressError::Corrupt("zero shards"));
            }
            let bounds: Vec<u32> = (0..=nshards)
                .map(|_| get_u32(&mut pos))
                .collect::<Result<_, _>>()?;
            if bounds[0] != 0
                || *bounds.last().expect("non-empty") != u32::MAX
                || bounds.windows(2).any(|w| w[0] > w[1])
            {
                return Err(CompressError::Corrupt("bad shard bounds"));
            }
            bounds
        };
        let npat = get_u32(&mut pos)? as usize;
        let mut patterns = PatternSet::new();
        let mut key: Vec<u32> = Vec::new();
        for _ in 0..npat {
            let len = get_u32(&mut pos)? as usize;
            if len == 0 || len > 2 * crate::build::MAX_D + 2 {
                return Err(CompressError::Corrupt("pattern key length"));
            }
            key.clear();
            for _ in 0..len {
                key.push(get_u32(&mut pos)?);
            }
            patterns.intern_key(&key);
        }
        let mut shards = Vec::with_capacity(bounds.len() - 1);
        for _ in 0..bounds.len() - 1 {
            let nwords = get_u32(&mut pos)? as usize;
            let mut words = FxHashMap::default();
            for _ in 0..nwords {
                let w = WordId(get_u32(&mut pos)?);
                let num_postings = get_u32(&mut pos)?;
                let nbytes = get_u32(&mut pos)? as usize;
                let stream = take(&mut pos, nbytes)?.to_vec().into_boxed_slice();
                words.insert(
                    w,
                    CompressedWordIndex {
                        bytes: stream,
                        num_postings,
                        layout,
                    },
                );
            }
            shards.push(words);
        }
        if pos != data.len() {
            return Err(CompressError::Corrupt("trailing bytes"));
        }
        Ok(CompressedPathIndexes {
            d,
            patterns,
            bounds,
            shards,
        })
    }

    /// Write the encoded image to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Read an image from `path`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::decode(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::build::{build_indexes, BuildConfig};
    use patternkb_graph::{GraphBuilder, KnowledgeGraph};
    use patternkb_text::{SynonymTable, TextIndex};

    fn sample(n: usize) -> (KnowledgeGraph, TextIndex) {
        let mut b = GraphBuilder::new();
        let t0 = b.add_type("Device");
        let t1 = b.add_type("Vendor");
        let mk = b.add_attr("maker");
        let rel = b.add_attr("related");
        let names = ["alpha", "beta", "gamma", "delta"];
        let nodes: Vec<_> = (0..n)
            .map(|i| b.add_node(if i % 2 == 0 { t0 } else { t1 }, names[i % names.len()]))
            .collect();
        for i in 0..n {
            b.add_edge(nodes[i], mk, nodes[(i * 5 + 1) % n]);
            b.add_edge(nodes[i], rel, nodes[(i * 3 + 2) % n]);
        }
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        (g, t)
    }

    fn canon_word(
        idx_pats: &PatternSet,
        widx: &WordPathIndex,
    ) -> Vec<(Vec<u32>, Vec<NodeId>, bool, u64, u64)> {
        let mut v: Vec<_> = widx
            .postings_pattern_first()
            .iter()
            .map(|p| {
                (
                    idx_pats.key(p.pattern).to_vec(),
                    widx.nodes_of(p).to_vec(),
                    p.edge_terminal,
                    p.pagerank.to_bits(),
                    p.sim.to_bits(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (g, t) = sample(40);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let back = comp.decompress().expect("decodes");
        assert_eq!(back.num_postings(), idx.num_postings());
        for (w, widx) in idx.shards()[0].iter_words() {
            let bw = back.word(w).expect("word survives");
            assert_eq!(
                canon_word(idx.patterns(), widx),
                canon_word(back.patterns(), bw),
                "word {w:?}"
            );
        }
    }

    #[test]
    fn sharded_roundtrip_and_image_are_bit_exact() {
        let (g, t) = sample(60);
        for shards in [2usize, 3, 5] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            let comp = CompressedPathIndexes::compress(&idx);
            assert_eq!(comp.num_shards(), shards);
            // In-memory round trip preserves the shard layout and postings.
            let back = comp.decompress().expect("decodes");
            assert_eq!(back.num_shards(), shards);
            assert_eq!(back.bounds(), idx.bounds());
            for (a, b) in idx.shards().iter().zip(back.shards()) {
                assert_eq!(a.num_postings(), b.num_postings());
                for (w, widx) in a.iter_words() {
                    let bw = b.word(w).expect("word survives in its shard");
                    assert_eq!(
                        canon_word(idx.patterns(), widx),
                        canon_word(back.patterns(), bw)
                    );
                }
            }
            // Per-word decode merges across shards into the full list.
            let w = t.lookup_word("alpha").unwrap();
            let merged = comp.decompress_word(w).expect("present").expect("decodes");
            let mut expected: Vec<_> = idx
                .word_shards(w)
                .flat_map(|(_, widx)| canon_word(idx.patterns(), widx))
                .collect();
            expected.sort();
            assert_eq!(canon_word(comp.patterns(), &merged), expected);
            // The on-disk image round-trips the segments too.
            let image = comp.encode();
            let decoded = CompressedPathIndexes::decode(&image).expect("image decodes");
            assert_eq!(decoded.num_shards(), shards);
            assert_eq!(
                decoded.decompress().unwrap().num_postings(),
                idx.num_postings()
            );
        }
    }

    #[test]
    fn decode_rejects_roots_outside_shard_bounds() {
        let (g, t) = sample(30);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 3,
            },
        );
        let mut comp = CompressedPathIndexes::compress(&idx);
        // Move a populated shard-1 stream into shard 0: its roots now fall
        // outside shard 0's declared range.
        let (w, stream) = {
            let (w, c) = comp.shards[1].iter().next().expect("shard 1 has words");
            (*w, c.clone())
        };
        comp.shards[0].insert(w, stream);
        assert!(matches!(
            comp.decompress(),
            Err(CompressError::Corrupt("root outside shard bounds"))
        ));
        assert!(matches!(
            comp.decompress_word(w),
            Some(Err(CompressError::Corrupt("root outside shard bounds")))
        ));
    }

    #[test]
    fn per_word_decode_matches() {
        let (g, t) = sample(24);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let w = t.lookup_word("alpha").unwrap();
        let one = comp.decompress_word(w).expect("present").expect("decodes");
        assert_eq!(
            canon_word(idx.patterns(), idx.word(w).unwrap()),
            canon_word(comp.patterns(), &one)
        );
        assert!(comp.decompress_word(WordId(9999)).is_none());
    }

    #[test]
    fn compression_shrinks_realistic_lists() {
        let (g, t) = sample(200);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let ratio = comp.ratio_against(&idx);
        assert!(
            ratio < 0.6,
            "expected ≥40% savings, got ratio {ratio:.3} ({} vs {} bytes)",
            comp.heap_bytes(),
            idx.heap_bytes()
        );
    }

    #[test]
    fn encoding_counts_cover_every_group() {
        let (g, t) = sample(200);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        for (w, widx) in idx.shards()[0].iter_words() {
            let counts = comp.shards[0][&w].encoding_counts().expect("walks");
            let groups = widx.patterns().count();
            assert_eq!(
                counts.iter().map(|&c| c as usize).sum::<usize>(),
                groups,
                "every group classified for word {w:?}"
            );
        }
        // Legacy layouts: v3 is all-delta, v1/v2 have no block lists.
        let w = t.lookup_word("alpha").unwrap();
        let widx = idx.word(w).unwrap();
        let v3 = CompressedWordIndex {
            bytes: encode_blocked(widx).into_boxed_slice(),
            num_postings: widx.len() as u32,
            layout: StreamLayout::Blocked,
        };
        let counts = v3.encoding_counts().expect("v3 walks");
        assert_eq!(counts[0] as usize, widx.patterns().count());
        assert_eq!(counts[1] + counts[2], 0);
        let v2 = CompressedWordIndex {
            bytes: encode_interleaved(widx).into_boxed_slice(),
            num_postings: widx.len() as u32,
            layout: StreamLayout::Interleaved,
        };
        assert_eq!(v2.encoding_counts().expect("v2 walks"), [0, 0, 0]);
    }

    #[test]
    fn truncation_detected() {
        let (g, t) = sample(16);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let w = t.lookup_word("alpha").unwrap();
        let full = &comp.shards[0][&w];
        for cut in [
            0,
            1,
            full.bytes.len() / 2,
            full.bytes.len().saturating_sub(1),
        ] {
            let truncated = CompressedWordIndex {
                bytes: full.bytes[..cut].to_vec().into_boxed_slice(),
                num_postings: full.num_postings,
                layout: full.layout,
            };
            assert!(truncated.decode().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let (g, t) = sample(16);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let w = t.lookup_word("alpha").unwrap();
        let reference = canon_word(idx.patterns(), idx.word(w).unwrap());
        let base = CompressedPathIndexes::compress(&idx);
        let stream_len = base.shards[0][&w].heap_bytes();
        for byte in 0..stream_len {
            let mut comp = CompressedPathIndexes::compress(&idx);
            assert!(comp.corrupt_for_test(w, byte));
            // Either an error, or a decode to *different* postings that the
            // checksum-free format cannot distinguish — but never a panic.
            match comp.decompress_word(w).unwrap() {
                Err(_) => {}
                Ok(widx) => {
                    // Flipping a score byte yields valid-but-different
                    // floats; structural bytes usually error out.
                    let _ = canon_word(comp.patterns(), &widx) == reference;
                }
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random raw postings: arbitrary pattern ids, roots, path shapes,
        /// and finite scores — a superset of what construction produces.
        fn posting_strategy() -> impl Strategy<Value = (u32, Vec<u32>, bool, f64, f64)> {
            (
                0u32..50, // pattern
                proptest::collection::vec(0u32..10_000, 1..=crate::build::MAX_D + 1),
                proptest::bool::ANY, // edge_terminal
                0.0f64..1.0,         // pagerank
                0.0f64..1.0,         // sim
            )
        }

        proptest! {
            #[test]
            fn roundtrip_arbitrary_postings(
                raw in proptest::collection::vec(posting_strategy(), 0..80)
            ) {
                let mut postings = Vec::new();
                let mut arena = Vec::new();
                for (pat, nodes, edge_terminal, pr, sim) in &raw {
                    let start = arena.len() as u32;
                    arena.extend(nodes.iter().map(|&v| NodeId(v)));
                    postings.push(Posting {
                        pattern: PatternId(*pat),
                        root: NodeId(nodes[0]),
                        nodes_start: start,
                        nodes_len: nodes.len() as u16,
                        edge_terminal: *edge_terminal,
                        pagerank: *pr,
                        sim: *sim,
                    });
                }
                let widx = WordPathIndex::new(postings, arena);
                let comp = CompressedWordIndex::from_word_index(&widx);
                let back = comp.decode().expect("well-formed stream decodes");
                prop_assert_eq!(back.len(), widx.len());
                let project = |w: &WordPathIndex| {
                    let mut v: Vec<(u32, Vec<NodeId>, bool, u64, u64)> = w
                        .postings_pattern_first()
                        .iter()
                        .map(|p| (
                            p.pattern.0,
                            w.nodes_of(p).to_vec(),
                            p.edge_terminal,
                            p.pagerank.to_bits(),
                            p.sim.to_bits(),
                        ))
                        .collect();
                    v.sort();
                    v
                };
                prop_assert_eq!(project(&widx), project(&back));
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_and_size() {
        let (g, t) = sample(120);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let image = comp.encode();
        let raw_image = crate::snapshot::encode(&idx);
        assert!(
            image.len() * 2 < raw_image.len(),
            "compressed image {} vs raw image {}",
            image.len(),
            raw_image.len()
        );
        let back = CompressedPathIndexes::decode(&image).expect("decodes");
        assert_eq!(back.d(), comp.d());
        assert_eq!(back.num_postings(), comp.num_postings());
        let full = back.decompress().expect("streams valid");
        assert_eq!(full.num_postings(), idx.num_postings());
        for (w, widx) in idx.shards()[0].iter_words() {
            let bw = full.word(w).expect("word survives");
            assert_eq!(
                canon_word(idx.patterns(), widx),
                canon_word(full.patterns(), bw)
            );
        }
    }

    #[test]
    fn snapshot_truncation_and_corruption_rejected() {
        let (g, t) = sample(24);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let image = CompressedPathIndexes::compress(&idx).encode();
        for cut in [0usize, 3, 7, image.len() / 2, image.len() - 1] {
            assert!(
                CompressedPathIndexes::decode(&image[..cut]).is_err(),
                "prefix {cut} must fail"
            );
        }
        let mut bad_magic = image.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            CompressedPathIndexes::decode(&bad_magic),
            Err(CompressError::Corrupt("bad magic"))
        ));
        let mut bad_version = image.clone();
        bad_version[4] = 0x7f;
        assert!(CompressedPathIndexes::decode(&bad_version).is_err());
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let (g, t) = sample(16);
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let dir = std::env::temp_dir().join("patternkb_compress_snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tier.pkbc");
        comp.save(&path).unwrap();
        let back = CompressedPathIndexes::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.num_postings(), comp.num_postings());
        assert_eq!(
            back.decompress().unwrap().num_postings(),
            idx.num_postings()
        );
    }

    /// The pre-v3 stream layout: roots delta + varint coded, interleaved
    /// with the payloads (verbatim port of the old encoder, kept only to
    /// manufacture legacy images for the compatibility tests).
    fn encode_interleaved(widx: &WordPathIndex) -> Vec<u8> {
        let postings = widx.postings_pattern_first();
        let mut bytes: Vec<u8> = Vec::new();
        let mut groups: Vec<(PatternId, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < postings.len() {
            let pat = postings[i].pattern;
            let start = i;
            while i < postings.len() && postings[i].pattern == pat {
                i += 1;
            }
            groups.push((pat, start, i));
        }
        varint::put_u32(&mut bytes, groups.len() as u32);
        let mut prev_pat = 0u32;
        for &(pat, lo, hi) in &groups {
            varint::put_u32(&mut bytes, pat.0 - prev_pat);
            prev_pat = pat.0;
            varint::put_u32(&mut bytes, (hi - lo) as u32);
            let mut prev_root = 0u32;
            for p in &postings[lo..hi] {
                varint::put_u32(&mut bytes, p.root.0 - prev_root);
                prev_root = p.root.0;
                let header = ((p.nodes_len as u32) << 1) | u32::from(p.edge_terminal);
                varint::put_u32(&mut bytes, header);
                for &v in &widx.nodes_of(p)[1..] {
                    varint::put_u32(&mut bytes, v.0);
                }
                bytes.extend_from_slice(&p.pagerank.to_le_bytes());
                bytes.extend_from_slice(&p.sim.to_le_bytes());
            }
        }
        bytes
    }

    /// The v3 stream layout: per group an **untagged** delta + bitpack
    /// root column, no bound section (verbatim port of the v3 encoder,
    /// kept only to manufacture legacy images for the compatibility
    /// tests).
    fn encode_blocked(widx: &WordPathIndex) -> Vec<u8> {
        let postings = widx.postings_pattern_first();
        let mut bytes: Vec<u8> = Vec::new();
        let mut groups: Vec<(PatternId, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < postings.len() {
            let pat = postings[i].pattern;
            let start = i;
            while i < postings.len() && postings[i].pattern == pat {
                i += 1;
            }
            groups.push((pat, start, i));
        }
        varint::put_u32(&mut bytes, groups.len() as u32);
        let mut prev_pat = 0u32;
        let mut roots: Vec<u32> = Vec::new();
        for &(pat, lo, hi) in &groups {
            varint::put_u32(&mut bytes, pat.0 - prev_pat);
            prev_pat = pat.0;
            varint::put_u32(&mut bytes, (hi - lo) as u32);
            roots.clear();
            roots.extend(postings[lo..hi].iter().map(|p| p.root.0));
            crate::blocks::DeltaList::encode(&roots).write(&mut bytes);
            for p in &postings[lo..hi] {
                let header = ((p.nodes_len as u32) << 1) | u32::from(p.edge_terminal);
                varint::put_u32(&mut bytes, header);
                for &v in &widx.nodes_of(p)[1..] {
                    varint::put_u32(&mut bytes, v.0);
                }
                bytes.extend_from_slice(&p.pagerank.to_le_bytes());
                bytes.extend_from_slice(&p.sim.to_le_bytes());
            }
        }
        bytes
    }

    /// Assemble a legacy (v1, v2, or v3) container image for `idx`.
    /// Shared with the `storage` tests' v1–v5 decode matrix.
    pub(crate) fn legacy_image(idx: &PathIndexes, version: u32) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.put_u32_le(version);
        buf.put_u32_le(idx.d() as u32);
        if version >= 2 {
            buf.put_u32_le(idx.shards().len() as u32);
            for &b in idx.bounds() {
                buf.put_u32_le(b);
            }
        } else {
            assert_eq!(idx.shards().len(), 1, "v1 images are single-shard");
        }
        buf.put_u32_le(idx.patterns().len() as u32);
        for i in 0..idx.patterns().len() {
            let key = idx.patterns().key(PatternId(i as u32));
            buf.put_u32_le(key.len() as u32);
            for &v in key {
                buf.put_u32_le(v);
            }
        }
        for shard in idx.shards() {
            let mut words: Vec<(WordId, &WordPathIndex)> = shard.iter_words().collect();
            words.sort_by_key(|(w, _)| *w);
            buf.put_u32_le(words.len() as u32);
            for (w, widx) in words {
                let stream = if version >= 3 {
                    encode_blocked(widx)
                } else {
                    encode_interleaved(widx)
                };
                buf.put_u32_le(w.0);
                buf.put_u32_le(widx.len() as u32);
                buf.put_u32_le(stream.len() as u32);
                buf.extend_from_slice(&stream);
            }
        }
        buf
    }

    #[test]
    fn v3_v2_and_v1_legacy_images_still_decode() {
        let (g, t) = sample(60);
        for (version, shards) in [(1u32, 1usize), (2, 1), (2, 3), (3, 1), (3, 3)] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            let image = legacy_image(&idx, version);
            let comp = CompressedPathIndexes::decode(&image)
                .unwrap_or_else(|e| panic!("v{version} image decodes: {e}"));
            assert_eq!(comp.num_shards(), shards);
            let back = comp.decompress().expect("legacy streams decode");
            assert_eq!(back.num_postings(), idx.num_postings());
            for (s, shard) in idx.shards().iter().enumerate() {
                for (w, widx) in shard.iter_words() {
                    let bw = back.shards()[s].word(w).expect("word survives");
                    assert_eq!(
                        canon_word(idx.patterns(), widx),
                        canon_word(back.patterns(), bw),
                        "v{version} word {w:?}"
                    );
                }
            }
            // A legacy image decoded and re-encoded comes back as v4.
            let reencoded = CompressedPathIndexes::compress(&back).encode();
            assert_eq!(&reencoded[4..8], 4u32.to_le_bytes().as_slice());
            assert!(CompressedPathIndexes::decode(&reencoded).is_ok());
        }
    }

    #[test]
    fn empty_index_roundtrips() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_type("T");
        b.add_node(t0, "solo");
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let back = comp.decompress().unwrap();
        assert_eq!(back.num_postings(), idx.num_postings());
        assert_eq!(comp.d(), 2);
    }
}
