//! LEB128 variable-length integer coding for the compressed posting tier.
//!
//! Posting lists are dominated by small integers — group-local root deltas,
//! pattern-id deltas, path lengths — so LEB128 (7 payload bits per byte,
//! high bit = continuation) shrinks them to 1–2 bytes each. The codec is
//! deliberately minimal: `u32`/`u64` only, panics never, and decoding
//! returns `None` on truncated or oversized input instead of guessing.

/// Append `v` to `out` as LEB128 (1–5 bytes).
#[inline]
pub fn put_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` to `out` as LEB128 (1–10 bytes).
#[inline]
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a `u32` from `buf[*pos..]`, advancing `pos`. `None` on truncation
/// or a value that does not fit 32 bits.
#[inline]
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let payload = (byte & 0x7f) as u32;
        if shift >= 32 || (shift == 28 && payload > 0x0f) {
            return None; // overflow
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Decode a `u64` from `buf[*pos..]`, advancing `pos`. `None` on truncation
/// or a value that does not fit 64 bits.
#[inline]
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let payload = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && payload > 1) {
            return None; // overflow
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Encoded length of `v` in bytes without encoding it.
#[inline]
pub fn len_u32(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn boundary_values_roundtrip_u32() {
        for v in [
            0u32,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            put_u32(&mut buf, v);
            assert_eq!(buf.len(), len_u32(v), "length of {v:#x}");
            let mut pos = 0;
            assert_eq!(get_u32(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn boundary_values_roundtrip_u64() {
        for v in [0u64, 0x7f, 0x80, u32::MAX as u64, 1 << 62, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 300); // two bytes
        let mut pos = 0;
        assert_eq!(get_u32(&buf[..1], &mut pos), None);
        assert_eq!(get_u32(&[], &mut 0), None);
    }

    #[test]
    fn overlong_u32_rejected() {
        // Six continuation bytes would exceed 32 bits of payload.
        let buf = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), None);
        // A fifth byte with payload above 0x0f overflows too.
        let buf = [0xffu8, 0xff, 0xff, 0xff, 0x10];
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), None);
    }

    #[test]
    fn sequences_decode_in_order() {
        let vals = [0u32, 5, 127, 128, 99999, u32::MAX];
        let mut buf = Vec::new();
        for &v in &vals {
            put_u32(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(get_u32(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    proptest! {
        #[test]
        fn roundtrip_u32(v in any::<u32>()) {
            let mut buf = Vec::new();
            put_u32(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(get_u32(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(buf.len(), len_u32(v));
        }

        #[test]
        fn roundtrip_u64(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(get_u64(&buf, &mut pos), Some(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn roundtrip_u32_sequences(vals in proptest::collection::vec(any::<u32>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &vals {
                put_u32(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &vals {
                prop_assert_eq!(get_u32(&buf, &mut pos), Some(v));
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
