//! The per-word path index and the top-level [`PathIndexes`] handle.

use crate::grouped::GroupedPostings;
use crate::pattern::{PatternId, PatternSet};
use crate::posting::Posting;
use patternkb_graph::{FxHashMap, NodeId, WordId};

/// Both sort orders of the postings of one word, sharing one node arena.
#[derive(Clone, Debug, Default)]
pub struct WordPathIndex {
    /// Node sequences of all paths, referenced by `Posting::nodes_start`.
    arena: Vec<NodeId>,
    /// Pattern-first order: primary = pattern, secondary = root (Fig. 4(a)).
    pattern_first: GroupedPostings,
    /// Root-first order: primary = root, secondary = pattern (Fig. 4(b)).
    root_first: GroupedPostings,
}

impl WordPathIndex {
    /// Assemble from unsorted postings plus their shared arena.
    pub fn new(mut postings: Vec<Posting>, arena: Vec<NodeId>) -> Self {
        postings.sort_unstable_by_key(|p| (p.pattern.0, p.root.0, p.nodes_start));
        let pattern_first =
            GroupedPostings::from_sorted(postings.clone(), |p| p.pattern.0, |p| p.root.0);
        postings.sort_unstable_by_key(|p| (p.root.0, p.pattern.0, p.nodes_start));
        let root_first = GroupedPostings::from_sorted(postings, |p| p.root.0, |p| p.pattern.0);
        WordPathIndex {
            arena,
            pattern_first,
            root_first,
        }
    }

    /// The node sequence of a posting.
    #[inline]
    pub fn nodes_of(&self, p: &Posting) -> &[NodeId] {
        &self.arena[p.node_range()]
    }

    // --- Pattern-first access methods (Figure 4(a)) --------------------

    /// `Patterns(w)`: all patterns following which some root reaches the
    /// word, ascending by pattern id.
    pub fn patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        self.pattern_first
            .primary_keys()
            .iter()
            .map(|&k| PatternId(k))
    }

    /// `Roots(w, P)`: all roots reaching the word through pattern `p`,
    /// ascending. Empty iterator if the pattern is absent.
    pub fn roots_of_pattern(&self, p: PatternId) -> &[u32] {
        match self.pattern_first.find_primary(p.0) {
            Some(i) => self.pattern_first.secondary_keys(i),
            None => &[],
        }
    }

    /// `Paths(w, P, r)`: all paths with pattern `p` starting at `root`.
    pub fn paths_of_pattern_root(&self, p: PatternId, root: NodeId) -> &[Posting] {
        match self.pattern_first.find_primary(p.0) {
            Some(i) => self.pattern_first.run_postings(i, root.0),
            None => &[],
        }
    }

    /// All paths with pattern `p` (any root), in root order.
    pub fn paths_of_pattern(&self, p: PatternId) -> &[Posting] {
        match self.pattern_first.find_primary(p.0) {
            Some(i) => self.pattern_first.group_postings(i),
            None => &[],
        }
    }

    // --- Root-first access methods (Figure 4(b)) -----------------------

    /// `Roots(w)`: all roots that can reach the word, ascending.
    pub fn roots(&self) -> &[u32] {
        self.root_first.primary_keys()
    }

    /// `Patterns(w, r)`: all patterns through which `root` reaches the word.
    pub fn patterns_of_root(&self, root: NodeId) -> &[u32] {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.secondary_keys(i),
            None => &[],
        }
    }

    /// `Paths(w, r)`: all paths from `root` to the word (any pattern), in
    /// pattern order.
    pub fn paths_of_root(&self, root: NodeId) -> &[Posting] {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.group_postings(i),
            None => &[],
        }
    }

    /// `|Paths(w, r)|` in O(log): used by Algorithm 4 line 4 to compute
    /// `N_R` without enumerating subtrees.
    pub fn num_paths_of_root(&self, root: NodeId) -> usize {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.group_len(i),
            None => 0,
        }
    }

    /// `Paths(w, r, P)`: all paths from `root` with pattern `p`.
    pub fn paths_of_root_pattern(&self, root: NodeId, p: PatternId) -> &[Posting] {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.run_postings(i, p.0),
            None => &[],
        }
    }

    /// Iterate `(pattern, paths)` runs of one root.
    pub fn root_runs(&self, root: NodeId) -> impl Iterator<Item = (PatternId, &[Posting])> {
        let idx = self.root_first.find_primary(root.0);
        idx.into_iter()
            .flat_map(move |i| self.root_first.runs(i).map(|(k, ps)| (PatternId(k), ps)))
    }

    /// All postings in pattern-first order (used by the snapshot codec).
    pub fn postings_pattern_first(&self) -> &[Posting] {
        self.pattern_first.postings()
    }

    /// The shared node arena (used by the snapshot codec).
    pub fn arena(&self) -> &[NodeId] {
        &self.arena
    }

    /// Total number of postings (identical in both orders).
    pub fn len(&self) -> usize {
        self.pattern_first.len()
    }

    /// Whether the word has no paths.
    pub fn is_empty(&self) -> bool {
        self.pattern_first.is_empty()
    }

    /// Approximate resident bytes (both orders + arena).
    pub fn heap_bytes(&self) -> usize {
        self.arena.len() * 4 + self.pattern_first.heap_bytes() + self.root_first.heap_bytes()
    }
}

/// One root-range segment of the index: the per-word indexes for every
/// posting whose root lies in the shard's range. Shards share the global
/// [`PatternSet`], so pattern ids are comparable across shards.
#[derive(Default)]
pub struct IndexShard {
    words: FxHashMap<WordId, WordPathIndex>,
}

impl IndexShard {
    pub(crate) fn new(words: FxHashMap<WordId, WordPathIndex>) -> Self {
        IndexShard { words }
    }

    /// The per-word index for `w` within this shard; `None` when no root in
    /// the shard's range reaches the word.
    pub fn word(&self, w: WordId) -> Option<&WordPathIndex> {
        self.words.get(&w)
    }

    /// Iterate all `(word, index)` pairs of this shard.
    pub fn iter_words(&self) -> impl Iterator<Item = (WordId, &WordPathIndex)> {
        self.words.iter().map(|(&w, idx)| (w, idx))
    }

    /// Number of words with postings in this shard.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Total postings in this shard.
    pub fn num_postings(&self) -> usize {
        self.words.values().map(WordPathIndex::len).sum()
    }

    /// Approximate resident bytes of this shard.
    pub fn heap_bytes(&self) -> usize {
        self.words
            .values()
            .map(WordPathIndex::heap_bytes)
            .sum::<usize>()
            + self.words.len() * 48
    }
}

/// All index shards plus the shared pattern set: the queryable handle
/// produced by [`crate::build::build_indexes`].
///
/// The index is partitioned into `S` shards by **root-node range**: shard
/// `s` owns every posting whose root id lies in
/// `bounds[s] .. bounds[s + 1]` (the last bound is `u32::MAX`, so nodes
/// added later by [`crate::incremental`] land in the last shard). Shards
/// are independent — no posting spans two shards — which is what lets the
/// query algorithms run one contention-free worker per shard and merge at
/// the top-k heap.
pub struct PathIndexes {
    /// Height threshold `d` the index was built for.
    d: usize,
    patterns: PatternSet,
    /// Shard boundaries, length `num_shards() + 1`; `bounds[0] == 0` and
    /// `bounds[S] == u32::MAX`.
    bounds: Vec<u32>,
    shards: Vec<IndexShard>,
}

impl PathIndexes {
    pub(crate) fn new(
        d: usize,
        patterns: PatternSet,
        bounds: Vec<u32>,
        shards: Vec<IndexShard>,
    ) -> Self {
        debug_assert_eq!(bounds.len(), shards.len() + 1);
        debug_assert_eq!(bounds.first(), Some(&0));
        debug_assert_eq!(bounds.last(), Some(&u32::MAX));
        PathIndexes {
            d,
            patterns,
            bounds,
            shards,
        }
    }

    /// The height threshold `d` this index supports.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The shared pattern interner.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Number of root-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in ascending root-range order.
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// The shard boundaries (length `num_shards() + 1`).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The shard owning `root`.
    pub fn shard_of_root(&self, root: NodeId) -> usize {
        (self.bounds.partition_point(|&b| b <= root.0) - 1).min(self.shards.len() - 1)
    }

    /// The per-word index for `w` — **single-shard indexes only** (the
    /// pre-shard API, kept for tests and tools that build with
    /// `shards: 1`). Query code must go through the per-shard views.
    ///
    /// # Panics
    /// If the index has more than one shard.
    pub fn word(&self, w: WordId) -> Option<&WordPathIndex> {
        assert_eq!(
            self.shards.len(),
            1,
            "PathIndexes::word() requires a single-shard index; use word_shards()"
        );
        self.shards[0].word(w)
    }

    /// The per-word index for `w` within shard `s`.
    pub fn word_in(&self, s: usize, w: WordId) -> Option<&WordPathIndex> {
        self.shards[s].word(w)
    }

    /// Whether any shard has postings for `w`. `false` means the word never
    /// occurs within distance `d` of any root (which, since every node is a
    /// root of its own trivial path, means the word is absent from the KB).
    pub fn has_word(&self, w: WordId) -> bool {
        self.shards.iter().any(|s| s.words.contains_key(&w))
    }

    /// Iterate `(shard, index)` for every shard containing `w`, in shard
    /// order.
    pub fn word_shards(&self, w: WordId) -> impl Iterator<Item = (usize, &WordPathIndex)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(move |(s, shard)| shard.word(w).map(|idx| (s, idx)))
    }

    /// All distinct word ids with postings, ascending.
    pub fn word_ids(&self) -> Vec<WordId> {
        let mut ids: Vec<WordId> = self
            .shards
            .iter()
            .flat_map(|s| s.words.keys().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of distinct indexed words (across all shards).
    pub fn num_words(&self) -> usize {
        self.word_ids().len()
    }

    /// Total postings over all words and shards.
    pub fn num_postings(&self) -> usize {
        self.shards.iter().map(IndexShard::num_postings).sum()
    }

    /// Approximate resident bytes of everything.
    pub fn heap_bytes(&self) -> usize {
        self.patterns.heap_bytes()
            + self
                .shards
                .iter()
                .map(IndexShard::heap_bytes)
                .sum::<usize>()
    }
}

impl std::fmt::Debug for PathIndexes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PathIndexes {{ d: {}, shards: {}, words: {}, postings: {}, patterns: {} }}",
            self.d,
            self.shards.len(),
            self.num_words(),
            self.num_postings(),
            self.patterns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posting(pattern: u32, root: u32, start: u32, len: u16) -> Posting {
        Posting {
            pattern: PatternId(pattern),
            root: NodeId(root),
            nodes_start: start,
            nodes_len: len,
            edge_terminal: false,
            pagerank: 1.0,
            sim: 1.0,
        }
    }

    fn sample() -> WordPathIndex {
        // Arena: [n0, n1 | n2 | n3, n4]
        let arena = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let postings = vec![
            posting(2, 0, 0, 2), // pattern 2, root 0
            posting(1, 2, 2, 1), // pattern 1, root 2
            posting(2, 3, 3, 2), // pattern 2, root 3
        ];
        WordPathIndex::new(postings, arena)
    }

    #[test]
    fn pattern_first_access() {
        let idx = sample();
        let pats: Vec<_> = idx.patterns().collect();
        assert_eq!(pats, vec![PatternId(1), PatternId(2)]);
        assert_eq!(idx.roots_of_pattern(PatternId(2)), &[0, 3]);
        assert_eq!(idx.roots_of_pattern(PatternId(9)), &[] as &[u32]);
        let paths = idx.paths_of_pattern_root(PatternId(2), NodeId(3));
        assert_eq!(paths.len(), 1);
        assert_eq!(idx.nodes_of(&paths[0]), &[NodeId(3), NodeId(4)]);
    }

    #[test]
    fn root_first_access() {
        let idx = sample();
        assert_eq!(idx.roots(), &[0, 2, 3]);
        assert_eq!(idx.patterns_of_root(NodeId(0)), &[2]);
        assert_eq!(idx.patterns_of_root(NodeId(7)), &[] as &[u32]);
        assert_eq!(idx.paths_of_root(NodeId(2)).len(), 1);
        assert_eq!(idx.num_paths_of_root(NodeId(2)), 1);
        assert_eq!(idx.num_paths_of_root(NodeId(9)), 0);
        let runs: Vec<_> = idx
            .root_runs(NodeId(0))
            .map(|(p, ps)| (p, ps.len()))
            .collect();
        assert_eq!(runs, vec![(PatternId(2), 1)]);
    }

    #[test]
    fn both_orders_hold_same_postings() {
        let idx = sample();
        assert_eq!(idx.len(), 3);
        let mut via_pattern: Vec<_> = idx
            .patterns()
            .flat_map(|p| idx.paths_of_pattern(p).to_vec())
            .collect();
        let mut via_root: Vec<_> = idx
            .roots()
            .iter()
            .flat_map(|&r| idx.paths_of_root(NodeId(r)).to_vec())
            .collect();
        let key = |p: &Posting| (p.pattern.0, p.root.0, p.nodes_start);
        via_pattern.sort_unstable_by_key(key);
        via_root.sort_unstable_by_key(key);
        assert_eq!(via_pattern, via_root);
    }
}
