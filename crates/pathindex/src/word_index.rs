//! The per-word path index and the top-level [`PathIndexes`] handle.

use crate::grouped::GroupedPostings;
use crate::pattern::{PatternId, PatternSet};
use crate::posting::Posting;
use patternkb_graph::{FxHashMap, NodeId, WordId};

/// Per-pattern posting statistics, cached at construction. These are
/// pure functions of the posting list; the search layer's admissible
/// score bounds read them per query instead of rescanning every posting
/// (which used to be the largest fixed cost of a pruned `PATTERNENUM`
/// query).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PatternPostingStats {
    /// Total paths with this pattern (over all roots).
    pub num_paths: u32,
    /// Largest number of paths under a single root.
    pub max_per_root: u32,
    /// Minimum scoring length `|T(w)|`.
    pub min_len: f64,
    /// Maximum scoring length.
    pub max_len: f64,
    /// Minimum cached PageRank.
    pub min_pr: f64,
    /// Maximum cached PageRank.
    pub max_pr: f64,
    /// Minimum cached similarity.
    pub min_sim: f64,
    /// Maximum cached similarity.
    pub max_sim: f64,
}

impl PatternPostingStats {
    /// Combine stats of the same pattern from two disjoint posting sets
    /// (e.g. two root-range shards): `max_per_root` combines by `max`,
    /// everything else by sum/min/max.
    pub fn merge(&mut self, other: &PatternPostingStats) {
        self.num_paths += other.num_paths;
        self.max_per_root = self.max_per_root.max(other.max_per_root);
        self.min_len = self.min_len.min(other.min_len);
        self.max_len = self.max_len.max(other.max_len);
        self.min_pr = self.min_pr.min(other.min_pr);
        self.max_pr = self.max_pr.max(other.max_pr);
        self.min_sim = self.min_sim.min(other.min_sim);
        self.max_sim = self.max_sim.max(other.max_sim);
    }

    /// Scan one pattern's postings (sorted by root).
    fn scan(paths: &[Posting]) -> Self {
        let mut s = PatternPostingStats {
            num_paths: paths.len() as u32,
            max_per_root: 0,
            min_len: f64::INFINITY,
            max_len: 0.0,
            min_pr: f64::INFINITY,
            max_pr: 0.0,
            min_sim: f64::INFINITY,
            max_sim: 0.0,
        };
        let mut run = 0u32;
        let mut prev_root = u32::MAX;
        for post in paths {
            let len = post.score_len() as f64;
            s.min_len = s.min_len.min(len);
            s.max_len = s.max_len.max(len);
            s.min_pr = s.min_pr.min(post.pagerank);
            s.max_pr = s.max_pr.max(post.pagerank);
            s.min_sim = s.min_sim.min(post.sim);
            s.max_sim = s.max_sim.max(post.sim);
            if post.root.0 == prev_root {
                run += 1;
            } else {
                prev_root = post.root.0;
                run = 1;
            }
            s.max_per_root = s.max_per_root.max(run);
        }
        s
    }
}

/// One root type's patterns within a word index — the unit the pattern-
/// first algorithms enumerate ("`PatternsC(wᵢ)`"). All three columns are
/// parallel: `patterns[x]` sits at pattern-first position `prims[x]` and
/// has stats `stats[x]`.
#[derive(Clone, Debug)]
pub struct PatternTypeGroup {
    /// The shared root type.
    pub root_type: patternkb_graph::TypeId,
    /// Pattern ids, ascending.
    pub patterns: Vec<crate::pattern::PatternId>,
    /// Pattern-first positions of `patterns`.
    pub prims: Vec<u32>,
    /// Cached posting stats of `patterns`.
    pub stats: Vec<PatternPostingStats>,
}

/// Both sort orders of the postings of one word, sharing one node arena.
#[derive(Clone, Debug, Default)]
pub struct WordPathIndex {
    /// Node sequences of all paths, referenced by `Posting::nodes_start`.
    arena: Vec<NodeId>,
    /// Pattern-first order: primary = pattern, secondary = root (Fig. 4(a)).
    pattern_first: GroupedPostings,
    /// Root-first order: primary = root, secondary = pattern (Fig. 4(b)).
    root_first: GroupedPostings,
    /// Per-pattern stats, aligned with `pattern_first.primary_keys()`.
    pattern_stats: Vec<PatternPostingStats>,
    /// Per-pattern suffix score-bound tables, flat. Pattern `prim` owns
    /// `bound_table[bound_start[prim] .. bound_start[prim + 1]]`; see
    /// [`Self::pattern_block_bounds`].
    bound_start: Vec<u32>,
    bound_table: Vec<PatternPostingStats>,
    /// Lazy per-word grouping of patterns by root type (ascending type,
    /// ascending pattern within type) — a pure function of the postings
    /// and the pattern set, built on the first query touching the word so
    /// the per-query setup of the pattern-first algorithms is O(groups)
    /// instead of O(patterns).
    type_groups: std::sync::OnceLock<Vec<PatternTypeGroup>>,
}

impl WordPathIndex {
    /// Assemble from unsorted postings plus their shared arena.
    pub fn new(mut postings: Vec<Posting>, arena: Vec<NodeId>) -> Self {
        postings.sort_unstable_by_key(|p| (p.pattern.0, p.root.0, p.nodes_start));
        let pattern_first =
            GroupedPostings::from_sorted(postings.clone(), |p| p.pattern.0, |p| p.root.0);
        postings.sort_unstable_by_key(|p| (p.root.0, p.pattern.0, p.nodes_start));
        let root_first = GroupedPostings::from_sorted(postings, |p| p.root.0, |p| p.pattern.0);
        let pattern_stats = (0..pattern_first.num_primary())
            .map(|i| PatternPostingStats::scan(pattern_first.group_postings(i)))
            .collect();
        let (bound_start, bound_table) = Self::build_bound_tables(&pattern_first);
        WordPathIndex {
            arena,
            pattern_first,
            root_first,
            pattern_stats,
            bound_start,
            bound_table,
            type_groups: std::sync::OnceLock::new(),
        }
    }

    /// Build the per-pattern suffix score-bound tables.
    ///
    /// A pattern's root-run cursor visits its `(root, paths)` runs in
    /// ascending root order, [`crate::blocks::BLOCK`] runs per skip block.
    /// For every pattern with **more** than one block of runs, entry `b` of
    /// its table holds the [`PatternPostingStats`] of all postings in run
    /// blocks `b..` (a *suffix* bound: once a cursor has consumed `b`
    /// blocks, entry `b` bounds everything it can still produce). Patterns
    /// that fit in one block get an empty table — callers fall back to the
    /// whole-list [`Self::pattern_stats`].
    fn build_bound_tables(pattern_first: &GroupedPostings) -> (Vec<u32>, Vec<PatternPostingStats>) {
        let nprim = pattern_first.num_primary();
        let mut start = Vec::with_capacity(nprim + 1);
        start.push(0u32);
        let mut table: Vec<PatternPostingStats> = Vec::new();
        let mut blocks: Vec<PatternPostingStats> = Vec::new();
        for i in 0..nprim {
            if pattern_first.secondary_keys(i).len() > crate::blocks::BLOCK {
                blocks.clear();
                for (ri, (_, run)) in pattern_first.runs(i).enumerate() {
                    let s = PatternPostingStats::scan(run);
                    if ri % crate::blocks::BLOCK == 0 {
                        blocks.push(s);
                    } else {
                        blocks.last_mut().expect("first run pushes").merge(&s);
                    }
                }
                for b in (0..blocks.len() - 1).rev() {
                    let next = blocks[b + 1];
                    blocks[b].merge(&next);
                }
                table.extend_from_slice(&blocks);
            }
            start.push(table.len() as u32);
        }
        (start, table)
    }

    /// The node sequence of a posting.
    #[inline]
    pub fn nodes_of(&self, p: &Posting) -> &[NodeId] {
        &self.arena[p.node_range()]
    }

    // --- Pattern-first access methods (Figure 4(a)) --------------------

    /// `Patterns(w)`: all patterns following which some root reaches the
    /// word, ascending by pattern id.
    pub fn patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        self.pattern_first
            .primary_keys()
            .iter()
            .map(|&k| PatternId(k))
    }

    /// `Roots(w, P)`: all roots reaching the word through pattern `p`,
    /// ascending. Empty iterator if the pattern is absent.
    pub fn roots_of_pattern(&self, p: PatternId) -> &[u32] {
        match self.pattern_first.find_primary(p.0) {
            Some(i) => self.pattern_first.secondary_keys(i),
            None => &[],
        }
    }

    /// `Paths(w, P, r)`: all paths with pattern `p` starting at `root`.
    pub fn paths_of_pattern_root(&self, p: PatternId, root: NodeId) -> &[Posting] {
        match self.pattern_first.find_primary(p.0) {
            Some(i) => self.pattern_first.run_postings(i, root.0),
            None => &[],
        }
    }

    /// All paths with pattern `p` (any root), in root order.
    pub fn paths_of_pattern(&self, p: PatternId) -> &[Posting] {
        match self.pattern_first.find_primary(p.0) {
            Some(i) => self.pattern_first.group_postings(i),
            None => &[],
        }
    }

    /// Position of `p` in the pattern-first index, resolvable once per
    /// (combination, keyword) and then reused for O(1) cursor creation.
    pub fn pattern_primary(&self, p: PatternId) -> Option<usize> {
        self.pattern_first.find_primary(p.0)
    }

    /// Cached per-pattern posting stats, aligned with the iteration order
    /// of [`Self::patterns`] (and indexable by [`Self::pattern_primary`]).
    pub fn pattern_stats(&self) -> &[PatternPostingStats] {
        &self.pattern_stats
    }

    /// The pattern at pattern-first position `prim`
    /// (inverse of [`Self::pattern_primary`]).
    pub fn pattern_at(&self, prim: usize) -> PatternId {
        PatternId(self.pattern_first.primary_keys()[prim])
    }

    /// This word's patterns grouped by root type, ascending by type (and
    /// by pattern id within a type). Memoized on first use: pattern ids
    /// are stable under incremental refresh (the pattern set is
    /// append-only), so the grouping never invalidates for a live index.
    pub fn pattern_type_groups(
        &self,
        patterns: &crate::pattern::PatternSet,
    ) -> &[PatternTypeGroup] {
        self.type_groups.get_or_init(|| {
            let mut tagged: Vec<(patternkb_graph::TypeId, u32)> = self
                .pattern_first
                .primary_keys()
                .iter()
                .enumerate()
                .map(|(j, &p)| (patterns.root_type(crate::pattern::PatternId(p)), j as u32))
                .collect();
            // Secondary key `j` ascends with pattern id, so each type's
            // run stays in ascending pattern order.
            tagged.sort_unstable();
            let mut groups: Vec<PatternTypeGroup> = Vec::new();
            let mut at = 0usize;
            while at < tagged.len() {
                let root_type = tagged[at].0;
                let mut group = PatternTypeGroup {
                    root_type,
                    patterns: Vec::new(),
                    prims: Vec::new(),
                    stats: Vec::new(),
                };
                while at < tagged.len() && tagged[at].0 == root_type {
                    let j = tagged[at].1 as usize;
                    group.patterns.push(crate::pattern::PatternId(
                        self.pattern_first.primary_keys()[j],
                    ));
                    group.prims.push(j as u32);
                    group.stats.push(self.pattern_stats[j]);
                    at += 1;
                }
                groups.push(group);
            }
            groups
        })
    }

    /// The suffix score-bound table of pattern `prim` (an index from
    /// [`Self::pattern_primary`]).
    ///
    /// Entry `b` bounds every posting from run block `b` onward — all
    /// `(root, paths)` runs the pattern's run cursor yields once `b *`
    /// [`crate::blocks::BLOCK`] runs have been consumed. Empty when the
    /// pattern has at most one block of runs; callers then fall back to
    /// the whole-list entry of [`Self::pattern_stats`].
    pub fn pattern_block_bounds(&self, prim: usize) -> &[PatternPostingStats] {
        let lo = self.bound_start[prim] as usize;
        let hi = self.bound_start[prim + 1] as usize;
        &self.bound_table[lo..hi]
    }

    /// A seekable `(root, paths)` run cursor over pattern `prim` (an index
    /// from [`Self::pattern_primary`]) — the fused-join view of
    /// `Roots(w, P)` + `Paths(w, P, r)`.
    pub fn pattern_run_cursor(&self, prim: usize) -> crate::grouped::RunCursor<'_> {
        self.pattern_first.run_cursor(prim)
    }

    // --- Root-first access methods (Figure 4(b)) -----------------------

    /// `Roots(w)`: all roots that can reach the word, ascending.
    pub fn roots(&self) -> &[u32] {
        self.root_first.primary_keys()
    }

    /// `Patterns(w, r)`: all patterns through which `root` reaches the word.
    pub fn patterns_of_root(&self, root: NodeId) -> &[u32] {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.secondary_keys(i),
            None => &[],
        }
    }

    /// `Paths(w, r)`: all paths from `root` to the word (any pattern), in
    /// pattern order.
    pub fn paths_of_root(&self, root: NodeId) -> &[Posting] {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.group_postings(i),
            None => &[],
        }
    }

    /// `|Paths(w, r)|` in O(log): used by Algorithm 4 line 4 to compute
    /// `N_R` without enumerating subtrees.
    pub fn num_paths_of_root(&self, root: NodeId) -> usize {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.group_len(i),
            None => 0,
        }
    }

    /// `Paths(w, r, P)`: all paths from `root` with pattern `p`.
    pub fn paths_of_root_pattern(&self, root: NodeId, p: PatternId) -> &[Posting] {
        match self.root_first.find_primary(root.0) {
            Some(i) => self.root_first.run_postings(i, p.0),
            None => &[],
        }
    }

    /// Iterate `(pattern, paths)` runs of one root.
    pub fn root_runs(&self, root: NodeId) -> impl Iterator<Item = (PatternId, &[Posting])> {
        let idx = self.root_first.find_primary(root.0);
        idx.into_iter()
            .flat_map(move |i| self.root_first.runs(i).map(|(k, ps)| (PatternId(k), ps)))
    }

    /// All postings in pattern-first order (used by the snapshot codec).
    pub fn postings_pattern_first(&self) -> &[Posting] {
        self.pattern_first.postings()
    }

    /// The shared node arena (used by the snapshot codec).
    pub fn arena(&self) -> &[NodeId] {
        &self.arena
    }

    /// Total number of postings (identical in both orders).
    pub fn len(&self) -> usize {
        self.pattern_first.len()
    }

    /// Whether the word has no paths.
    pub fn is_empty(&self) -> bool {
        self.pattern_first.is_empty()
    }

    /// Approximate resident bytes (both orders + arena + stats).
    pub fn heap_bytes(&self) -> usize {
        self.arena.len() * 4
            + self.pattern_first.heap_bytes()
            + self.root_first.heap_bytes()
            + (self.pattern_stats.len() + self.bound_table.len())
                * std::mem::size_of::<PatternPostingStats>()
            + self.bound_start.len() * 4
    }
}

/// One root-range segment of the index: the per-word indexes for every
/// posting whose root lies in the shard's range. Shards share the global
/// [`PatternSet`], so pattern ids are comparable across shards.
///
/// Where the per-word indexes physically live is behind
/// [`crate::storage::IndexStorage`]: the heap tier owns fully decoded
/// structures, the mapped tier borrows a v5 snapshot region and decodes
/// words on first touch. Query code is oblivious — it only ever sees
/// `&WordPathIndex` borrows.
pub struct IndexShard {
    storage: Box<dyn crate::storage::IndexStorage>,
}

impl Default for IndexShard {
    fn default() -> Self {
        IndexShard {
            storage: Box::new(crate::storage::HeapStorage::default()),
        }
    }
}

impl IndexShard {
    pub(crate) fn new(words: FxHashMap<WordId, WordPathIndex>) -> Self {
        IndexShard {
            storage: Box::new(crate::storage::HeapStorage::new(words)),
        }
    }

    /// Wrap an arbitrary storage backend (the mapped tier's entry point).
    pub(crate) fn from_storage(storage: Box<dyn crate::storage::IndexStorage>) -> Self {
        IndexShard { storage }
    }

    /// Which storage tier backs this shard.
    pub fn storage_backend(&self) -> crate::storage::StorageBackend {
        self.storage.backend()
    }

    /// The per-word index for `w` within this shard; `None` when no root in
    /// the shard's range reaches the word.
    pub fn word(&self, w: WordId) -> Option<&WordPathIndex> {
        self.storage.word(w)
    }

    /// Whether this shard has postings for `w` (never decodes).
    pub fn contains(&self, w: WordId) -> bool {
        self.storage.contains(w)
    }

    /// All word ids with postings in this shard, ascending.
    pub fn word_ids(&self) -> Vec<WordId> {
        self.storage.word_ids()
    }

    /// Iterate all `(word, index)` pairs of this shard, in ascending word
    /// order. On the mapped tier this decodes every word it visits (the
    /// materialization path used by incremental refresh); words whose
    /// streams are damaged are skipped here — queries surface them as
    /// typed errors via [`PathIndexes::prepare_words`] instead.
    pub fn iter_words(&self) -> impl Iterator<Item = (WordId, &WordPathIndex)> {
        self.storage
            .word_ids()
            .into_iter()
            .filter_map(move |w| self.storage.word(w).map(|idx| (w, idx)))
    }

    /// Number of words with postings in this shard.
    pub fn num_words(&self) -> usize {
        self.storage.num_words()
    }

    /// Total postings in this shard.
    pub fn num_postings(&self) -> usize {
        self.storage.num_postings()
    }

    /// Approximate resident bytes of this shard (for the mapped tier:
    /// only what has been decoded so far, not the snapshot file).
    pub fn heap_bytes(&self) -> usize {
        self.storage.heap_bytes()
    }

    /// Ensure `w` is decoded and usable, surfacing a damaged mapped
    /// stream as its typed error. No-op on the heap tier.
    pub fn prepare(&self, w: WordId) -> Result<(), patternkb_graph::snapshot::SnapshotError> {
        self.storage.prepare(w)
    }
}

/// All index shards plus the shared pattern set: the queryable handle
/// produced by [`crate::build::build_indexes`].
///
/// The index is partitioned into `S` shards by **root-node range**: shard
/// `s` owns every posting whose root id lies in
/// `bounds[s] .. bounds[s + 1]` (the last bound is `u32::MAX`, so nodes
/// added later by [`crate::incremental`] land in the last shard). Shards
/// are independent — no posting spans two shards — which is what lets the
/// query algorithms run one contention-free worker per shard and merge at
/// the top-k heap.
pub struct PathIndexes {
    /// Height threshold `d` the index was built for.
    d: usize,
    patterns: PatternSet,
    /// Shard boundaries, length `num_shards() + 1`; `bounds[0] == 0` and
    /// `bounds[S] == u32::MAX`.
    bounds: Vec<u32>,
    shards: Vec<IndexShard>,
}

impl PathIndexes {
    pub(crate) fn new(
        d: usize,
        patterns: PatternSet,
        bounds: Vec<u32>,
        shards: Vec<IndexShard>,
    ) -> Self {
        debug_assert_eq!(bounds.len(), shards.len() + 1);
        debug_assert_eq!(bounds.first(), Some(&0));
        debug_assert_eq!(bounds.last(), Some(&u32::MAX));
        PathIndexes {
            d,
            patterns,
            bounds,
            shards,
        }
    }

    /// The height threshold `d` this index supports.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The shared pattern interner.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Number of root-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in ascending root-range order.
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// The shard boundaries (length `num_shards() + 1`).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The shard owning `root`.
    pub fn shard_of_root(&self, root: NodeId) -> usize {
        (self.bounds.partition_point(|&b| b <= root.0) - 1).min(self.shards.len() - 1)
    }

    /// The per-word index for `w` — **single-shard indexes only** (the
    /// pre-shard API, kept for tests and tools that build with
    /// `shards: 1`). Query code must go through the per-shard views.
    ///
    /// # Panics
    /// If the index has more than one shard.
    pub fn word(&self, w: WordId) -> Option<&WordPathIndex> {
        assert_eq!(
            self.shards.len(),
            1,
            "PathIndexes::word() requires a single-shard index; use word_shards()"
        );
        self.shards[0].word(w)
    }

    /// The per-word index for `w` within shard `s`.
    pub fn word_in(&self, s: usize, w: WordId) -> Option<&WordPathIndex> {
        self.shards[s].word(w)
    }

    /// Whether any shard has postings for `w`. `false` means the word never
    /// occurs within distance `d` of any root (which, since every node is a
    /// root of its own trivial path, means the word is absent from the KB).
    pub fn has_word(&self, w: WordId) -> bool {
        self.shards.iter().any(|s| s.contains(w))
    }

    /// Iterate `(shard, index)` for every shard containing `w`, in shard
    /// order.
    pub fn word_shards(&self, w: WordId) -> impl Iterator<Item = (usize, &WordPathIndex)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(move |(s, shard)| shard.word(w).map(|idx| (s, idx)))
    }

    /// All distinct word ids with postings, ascending.
    pub fn word_ids(&self) -> Vec<WordId> {
        let mut ids: Vec<WordId> = self.shards.iter().flat_map(|s| s.word_ids()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of distinct indexed words (across all shards).
    pub fn num_words(&self) -> usize {
        self.word_ids().len()
    }

    /// Total postings over all words and shards.
    pub fn num_postings(&self) -> usize {
        self.shards.iter().map(IndexShard::num_postings).sum()
    }

    /// Approximate resident bytes of everything (for the mapped tier:
    /// only what has been decoded so far, not the snapshot file).
    pub fn heap_bytes(&self) -> usize {
        self.patterns.heap_bytes()
            + self
                .shards
                .iter()
                .map(IndexShard::heap_bytes)
                .sum::<usize>()
    }

    /// Which storage tier backs the shards. Mixed tiers never occur in
    /// practice (a snapshot opens whole); if they did, any mapped shard
    /// makes the answer [`crate::storage::StorageBackend::Mmap`].
    pub fn storage_backend(&self) -> crate::storage::StorageBackend {
        if self
            .shards
            .iter()
            .any(|s| s.storage_backend() == crate::storage::StorageBackend::Mmap)
        {
            crate::storage::StorageBackend::Mmap
        } else {
            crate::storage::StorageBackend::Heap
        }
    }

    /// Ensure every listed word is decoded in every shard that holds it,
    /// surfacing the first damaged mapped stream as its typed error
    /// (with the byte offset of the damage). Queries call this up front
    /// so corruption is reported, not silently treated as a missing
    /// word. No-op on the heap tier.
    pub fn prepare_words(
        &self,
        words: &[WordId],
    ) -> Result<(), patternkb_graph::snapshot::SnapshotError> {
        for &w in words {
            for s in &self.shards {
                s.prepare(w)?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for PathIndexes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PathIndexes {{ d: {}, shards: {}, words: {}, postings: {}, patterns: {} }}",
            self.d,
            self.shards.len(),
            self.num_words(),
            self.num_postings(),
            self.patterns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posting(pattern: u32, root: u32, start: u32, len: u16) -> Posting {
        Posting {
            pattern: PatternId(pattern),
            root: NodeId(root),
            nodes_start: start,
            nodes_len: len,
            edge_terminal: false,
            pagerank: 1.0,
            sim: 1.0,
        }
    }

    fn sample() -> WordPathIndex {
        // Arena: [n0, n1 | n2 | n3, n4]
        let arena = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let postings = vec![
            posting(2, 0, 0, 2), // pattern 2, root 0
            posting(1, 2, 2, 1), // pattern 1, root 2
            posting(2, 3, 3, 2), // pattern 2, root 3
        ];
        WordPathIndex::new(postings, arena)
    }

    #[test]
    fn pattern_first_access() {
        let idx = sample();
        let pats: Vec<_> = idx.patterns().collect();
        assert_eq!(pats, vec![PatternId(1), PatternId(2)]);
        assert_eq!(idx.roots_of_pattern(PatternId(2)), &[0, 3]);
        assert_eq!(idx.roots_of_pattern(PatternId(9)), &[] as &[u32]);
        let paths = idx.paths_of_pattern_root(PatternId(2), NodeId(3));
        assert_eq!(paths.len(), 1);
        assert_eq!(idx.nodes_of(&paths[0]), &[NodeId(3), NodeId(4)]);
    }

    #[test]
    fn root_first_access() {
        let idx = sample();
        assert_eq!(idx.roots(), &[0, 2, 3]);
        assert_eq!(idx.patterns_of_root(NodeId(0)), &[2]);
        assert_eq!(idx.patterns_of_root(NodeId(7)), &[] as &[u32]);
        assert_eq!(idx.paths_of_root(NodeId(2)).len(), 1);
        assert_eq!(idx.num_paths_of_root(NodeId(2)), 1);
        assert_eq!(idx.num_paths_of_root(NodeId(9)), 0);
        let runs: Vec<_> = idx
            .root_runs(NodeId(0))
            .map(|(p, ps)| (p, ps.len()))
            .collect();
        assert_eq!(runs, vec![(PatternId(2), 1)]);
    }

    #[test]
    fn both_orders_hold_same_postings() {
        let idx = sample();
        assert_eq!(idx.len(), 3);
        let mut via_pattern: Vec<_> = idx
            .patterns()
            .flat_map(|p| idx.paths_of_pattern(p).to_vec())
            .collect();
        let mut via_root: Vec<_> = idx
            .roots()
            .iter()
            .flat_map(|&r| idx.paths_of_root(NodeId(r)).to_vec())
            .collect();
        let key = |p: &Posting| (p.pattern.0, p.root.0, p.nodes_start);
        via_pattern.sort_unstable_by_key(key);
        via_root.sort_unstable_by_key(key);
        assert_eq!(via_pattern, via_root);
    }

    #[test]
    fn pattern_stats_match_postings() {
        let idx = sample();
        assert_eq!(idx.pattern_stats().len(), 2);
        // Pattern 2 (position 1) has two postings, one per root.
        let prim = idx.pattern_primary(PatternId(2)).unwrap();
        let s = idx.pattern_stats()[prim];
        assert_eq!(s.num_paths, 2);
        assert_eq!(s.max_per_root, 1);
        assert_eq!(s.min_len, 2.0);
        assert_eq!(s.max_len, 2.0);
        assert_eq!(idx.pattern_at(prim), PatternId(2));
    }

    #[test]
    fn block_bounds_are_suffix_stats() {
        use crate::blocks::BLOCK;
        // Pattern 1: 2.5 blocks of single-posting runs with descending
        // pagerank, so every suffix entry tightens. Pattern 2: one run.
        let nruns = BLOCK * 2 + BLOCK / 2;
        let mut postings = Vec::new();
        for r in 0..nruns as u32 {
            let mut p = posting(1, r, 0, 1);
            p.pagerank = 1000.0 - r as f64;
            postings.push(p);
        }
        postings.push(posting(2, 0, 0, 2));
        let idx = WordPathIndex::new(postings, vec![NodeId(0), NodeId(1)]);

        let small = idx.pattern_primary(PatternId(2)).unwrap();
        assert!(idx.pattern_block_bounds(small).is_empty());

        let prim = idx.pattern_primary(PatternId(1)).unwrap();
        let bounds = idx.pattern_block_bounds(prim);
        assert_eq!(bounds.len(), 3);
        // Entry 0 covers everything: identical to the whole-list stats.
        assert_eq!(bounds[0], idx.pattern_stats()[prim]);
        for b in 0..bounds.len() {
            // Suffix b holds the remaining runs...
            assert_eq!(bounds[b].num_paths as usize, nruns - b * BLOCK);
            // ...whose best pagerank is that of the first remaining run.
            assert_eq!(bounds[b].max_pr, 1000.0 - (b * BLOCK) as f64);
            assert_eq!(bounds[b].min_pr, 1000.0 - (nruns - 1) as f64);
        }
        // Suffixes only shrink: each entry is contained in the previous.
        for w in bounds.windows(2) {
            assert!(w[1].num_paths <= w[0].num_paths);
            assert!(w[1].max_pr <= w[0].max_pr);
            assert!(w[1].max_per_root <= w[0].max_per_root);
        }
    }

    #[test]
    fn type_groups_partition_patterns() {
        use crate::pattern::PatternSet;
        let idx = sample();
        // `sample()` uses pattern ids 1 and 2; intern three single-node
        // keys (`[l << 1, root_type]`) so those ids resolve, with distinct
        // root types for ids 1 and 2.
        let mut ps = PatternSet::new();
        ps.intern_key(&[2, 5]); // id 0, unused by sample()
        ps.intern_key(&[2, 9]); // id 1 → root type 9
        ps.intern_key(&[2, 7]); // id 2 → root type 7
        let groups = idx.pattern_type_groups(&ps);
        // Patterns 1 and 2 of `sample()` resolve through `ps`:
        // all groups together must cover every pattern exactly once.
        let total: usize = groups.iter().map(|g| g.patterns.len()).sum();
        assert_eq!(total, 2);
        for g in groups {
            assert_eq!(g.patterns.len(), g.prims.len());
            assert_eq!(g.patterns.len(), g.stats.len());
            for (x, &prim) in g.patterns.iter().zip(&g.prims) {
                assert_eq!(idx.pattern_at(prim as usize), *x);
                assert_eq!(ps.root_type(*x), g.root_type);
            }
        }
        // Ascending by type.
        assert!(groups.windows(2).all(|w| w[0].root_type < w[1].root_type));
        // Memoized: same slice on the second call.
        assert_eq!(groups.len(), idx.pattern_type_groups(&ps).len());
    }
}
