//! Two-level grouped posting storage.
//!
//! Both index orders of Figure 4 share one layout: postings sorted by a
//! primary key and a secondary key, with offset arrays for both levels.
//! For the pattern-first index the primary key is the pattern and the
//! secondary key is the root; the root-first index swaps them. Every access
//! method of §3 then becomes: binary-search the primary key, optionally
//! binary-search the secondary key inside its run range, return a slice.

use crate::posting::Posting;

/// Postings grouped by `(primary, secondary)` keys.
///
/// Invariants (checked in debug builds by [`GroupedPostings::validate`]):
/// * `g1_keys` is strictly increasing;
/// * within each level-1 group, its level-2 run keys are strictly
///   increasing;
/// * run offsets partition `postings` contiguously.
#[derive(Clone, Debug, Default)]
pub struct GroupedPostings {
    /// All postings, sorted by `(primary, secondary)`.
    postings: Vec<Posting>,
    /// Distinct primary keys, ascending.
    g1_keys: Vec<u32>,
    /// For level-1 group `i`, its level-2 runs are
    /// `g2_keys[g1_run_start[i] .. g1_run_start[i+1]]`. Length
    /// `g1_keys.len() + 1`.
    g1_run_start: Vec<u32>,
    /// Secondary key of each run.
    g2_keys: Vec<u32>,
    /// Posting range of run `j` is `g2_post_start[j] .. g2_post_start[j+1]`.
    /// Length `g2_keys.len() + 1`.
    g2_post_start: Vec<u32>,
}

impl GroupedPostings {
    /// Build from postings already sorted by `(primary(p), secondary(p))`.
    pub fn from_sorted<FP, FS>(postings: Vec<Posting>, primary: FP, secondary: FS) -> Self
    where
        FP: Fn(&Posting) -> u32,
        FS: Fn(&Posting) -> u32,
    {
        let mut g1_keys = Vec::new();
        let mut g1_run_start = vec![0u32];
        let mut g2_keys = Vec::new();
        let mut g2_post_start = vec![0u32];
        let mut i = 0;
        while i < postings.len() {
            let pk = primary(&postings[i]);
            g1_keys.push(pk);
            while i < postings.len() && primary(&postings[i]) == pk {
                let sk = secondary(&postings[i]);
                g2_keys.push(sk);
                while i < postings.len()
                    && primary(&postings[i]) == pk
                    && secondary(&postings[i]) == sk
                {
                    i += 1;
                }
                g2_post_start.push(i as u32);
            }
            g1_run_start.push(g2_keys.len() as u32);
        }
        let out = GroupedPostings {
            postings,
            g1_keys,
            g1_run_start,
            g2_keys,
            g2_post_start,
        };
        debug_assert!(out.validate());
        out
    }

    /// All postings in `(primary, secondary)` order.
    #[inline]
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Distinct primary keys, ascending.
    #[inline]
    pub fn primary_keys(&self) -> &[u32] {
        &self.g1_keys
    }

    /// Index of a primary key, if present.
    #[inline]
    pub fn find_primary(&self, key: u32) -> Option<usize> {
        self.g1_keys.binary_search(&key).ok()
    }

    /// Distinct secondary keys under the `i`-th primary group, ascending.
    pub fn secondary_keys(&self, i: usize) -> &[u32] {
        let lo = self.g1_run_start[i] as usize;
        let hi = self.g1_run_start[i + 1] as usize;
        &self.g2_keys[lo..hi]
    }

    /// All postings under the `i`-th primary group.
    pub fn group_postings(&self, i: usize) -> &[Posting] {
        let run_lo = self.g1_run_start[i] as usize;
        let run_hi = self.g1_run_start[i + 1] as usize;
        let lo = self.g2_post_start[run_lo] as usize;
        let hi = self.g2_post_start[run_hi] as usize;
        &self.postings[lo..hi]
    }

    /// Number of postings under the `i`-th primary group (O(1)).
    pub fn group_len(&self, i: usize) -> usize {
        let run_lo = self.g1_run_start[i] as usize;
        let run_hi = self.g1_run_start[i + 1] as usize;
        (self.g2_post_start[run_hi] - self.g2_post_start[run_lo]) as usize
    }

    /// Postings of the run with secondary key `sec` inside the `i`-th
    /// primary group; empty if absent.
    pub fn run_postings(&self, i: usize, sec: u32) -> &[Posting] {
        let run_lo = self.g1_run_start[i] as usize;
        let run_hi = self.g1_run_start[i + 1] as usize;
        match self.g2_keys[run_lo..run_hi].binary_search(&sec) {
            Ok(off) => {
                let j = run_lo + off;
                let lo = self.g2_post_start[j] as usize;
                let hi = self.g2_post_start[j + 1] as usize;
                &self.postings[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Iterate `(secondary key, postings)` runs of the `i`-th primary group.
    pub fn runs(&self, i: usize) -> impl Iterator<Item = (u32, &[Posting])> {
        let run_lo = self.g1_run_start[i] as usize;
        let run_hi = self.g1_run_start[i + 1] as usize;
        (run_lo..run_hi).map(move |j| {
            let lo = self.g2_post_start[j] as usize;
            let hi = self.g2_post_start[j + 1] as usize;
            (self.g2_keys[j], &self.postings[lo..hi])
        })
    }

    /// A seekable cursor over the `i`-th primary group's runs — the
    /// fused-join primitive: leapfrogging several groups' cursors by
    /// secondary key intersects their key sets **and** lands directly on
    /// each matching run's posting slice, with no per-match binary search.
    pub fn run_cursor(&self, i: usize) -> RunCursor<'_> {
        let run_lo = self.g1_run_start[i] as usize;
        let run_hi = self.g1_run_start[i + 1] as usize;
        RunCursor {
            keys: &self.g2_keys[run_lo..run_hi],
            starts: &self.g2_post_start[run_lo..=run_hi],
            postings: &self.postings,
            pos: 0,
        }
    }

    /// Number of distinct primary keys.
    pub fn num_primary(&self) -> usize {
        self.g1_keys.len()
    }

    /// Total number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether there are no postings.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Approximate resident bytes.
    pub fn heap_bytes(&self) -> usize {
        self.postings.len() * std::mem::size_of::<Posting>()
            + (self.g1_keys.len()
                + self.g1_run_start.len()
                + self.g2_keys.len()
                + self.g2_post_start.len())
                * 4
    }

    /// Check the structural invariants (used in debug assertions/tests).
    pub fn validate(&self) -> bool {
        if self.g1_run_start.len() != self.g1_keys.len() + 1 {
            return false;
        }
        if self.g2_post_start.len() != self.g2_keys.len() + 1 {
            return false;
        }
        if self.g1_keys.windows(2).any(|w| w[0] >= w[1]) {
            return false;
        }
        for i in 0..self.g1_keys.len() {
            let runs = self.secondary_keys(i);
            if runs.windows(2).any(|w| w[0] >= w[1]) {
                return false;
            }
        }
        self.g2_post_start.last().copied().unwrap_or(0) as usize == self.postings.len()
    }
}

/// Forward cursor over one primary group's `(secondary key, postings)`
/// runs, with galloping skip-ahead by secondary key. `seek` targets must
/// be non-decreasing; it positions the cursor **at** the found run (peek
/// semantics), so [`RunCursor::postings`] returns that run's slice in
/// O(1).
pub struct RunCursor<'a> {
    /// Secondary keys of the group's runs, ascending.
    keys: &'a [u32],
    /// Posting-range starts; run `j` spans `starts[j] .. starts[j + 1]`.
    starts: &'a [u32],
    /// The whole posting array the starts index into.
    postings: &'a [Posting],
    pos: usize,
}

impl<'a> RunCursor<'a> {
    /// The least run key `≥ target` at or after the current position,
    /// without consuming it. Gallops from the current position.
    #[inline]
    pub fn seek(&mut self, target: u32) -> Option<u32> {
        self.pos = crate::cursor::gallop_lower_bound(self.keys, self.pos, target);
        self.keys.get(self.pos).copied()
    }

    /// Advance past the current run, returning the next run's key.
    #[inline]
    pub fn advance(&mut self) -> Option<u32> {
        self.pos += 1;
        self.keys.get(self.pos).copied()
    }

    /// The current run's postings (valid after a successful
    /// `seek`/`advance`).
    #[inline]
    pub fn postings(&self) -> &'a [Posting] {
        let lo = self.starts[self.pos] as usize;
        let hi = self.starts[self.pos + 1] as usize;
        &self.postings[lo..hi]
    }

    /// Runs not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.keys.len().saturating_sub(self.pos)
    }

    /// Number of runs already consumed (the cursor's position in run
    /// units). `pos / crate::blocks::BLOCK` is the run block the cursor
    /// sits in — the index into a suffix score-bound table
    /// ([`crate::word_index::WordPathIndex::pattern_block_bounds`]).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternId;
    use patternkb_graph::NodeId;

    fn posting(pattern: u32, root: u32) -> Posting {
        Posting {
            pattern: PatternId(pattern),
            root: NodeId(root),
            nodes_start: 0,
            nodes_len: 1,
            edge_terminal: false,
            pagerank: 0.0,
            sim: 0.0,
        }
    }

    fn by_pattern(p: &Posting) -> u32 {
        p.pattern.0
    }
    fn by_root(p: &Posting) -> u32 {
        p.root.0
    }

    fn sample() -> GroupedPostings {
        // Sorted by (pattern, root).
        let postings = vec![
            posting(1, 5),
            posting(1, 5),
            posting(1, 9),
            posting(3, 2),
            posting(3, 5),
            posting(3, 5),
            posting(3, 5),
        ];
        GroupedPostings::from_sorted(postings, by_pattern, by_root)
    }

    #[test]
    fn structure() {
        let g = sample();
        assert!(g.validate());
        assert_eq!(g.primary_keys(), &[1, 3]);
        assert_eq!(g.num_primary(), 2);
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn group_access() {
        let g = sample();
        let i1 = g.find_primary(1).unwrap();
        assert_eq!(g.secondary_keys(i1), &[5, 9]);
        assert_eq!(g.group_postings(i1).len(), 3);
        assert_eq!(g.group_len(i1), 3);
        let i3 = g.find_primary(3).unwrap();
        assert_eq!(g.secondary_keys(i3), &[2, 5]);
        assert_eq!(g.group_len(i3), 4);
        assert_eq!(g.find_primary(2), None);
    }

    #[test]
    fn run_access() {
        let g = sample();
        let i3 = g.find_primary(3).unwrap();
        assert_eq!(g.run_postings(i3, 5).len(), 3);
        assert_eq!(g.run_postings(i3, 2).len(), 1);
        assert!(g.run_postings(i3, 7).is_empty());
    }

    #[test]
    fn runs_iteration() {
        let g = sample();
        let i1 = g.find_primary(1).unwrap();
        let runs: Vec<(u32, usize)> = g.runs(i1).map(|(k, ps)| (k, ps.len())).collect();
        assert_eq!(runs, vec![(5, 2), (9, 1)]);
    }

    #[test]
    fn empty() {
        let g = GroupedPostings::from_sorted(vec![], by_pattern, by_root);
        assert!(g.validate());
        assert!(g.is_empty());
        assert_eq!(g.find_primary(0), None);
    }

    #[test]
    fn run_cursor_seeks_runs() {
        let g = sample();
        let i3 = g.find_primary(3).unwrap();
        let mut c = g.run_cursor(i3);
        assert_eq!(c.remaining(), 2);
        assert_eq!(c.seek(0), Some(2));
        assert_eq!(c.postings().len(), 1);
        assert_eq!(c.seek(3), Some(5));
        assert_eq!(c.postings().len(), 3);
        assert!(c.postings().iter().all(|p| p.root.0 == 5));
        assert_eq!(c.advance(), None);
        assert_eq!(c.seek(9), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::pattern::PatternId;
    use patternkb_graph::NodeId;
    use proptest::prelude::*;

    proptest! {
        /// from_sorted over any sorted input yields a structure whose
        /// group/run slices reproduce exactly the original postings.
        #[test]
        fn partition_is_lossless(pairs in proptest::collection::vec((0u32..8, 0u32..8), 0..40)) {
            let mut pairs = pairs;
            pairs.sort_unstable();
            let postings: Vec<Posting> = pairs.iter().map(|&(p, r)| Posting {
                pattern: PatternId(p),
                root: NodeId(r),
                nodes_start: 0,
                nodes_len: 1,
                edge_terminal: false,
                pagerank: 0.0,
                sim: 0.0,
            }).collect();
            let g = GroupedPostings::from_sorted(postings.clone(),
                |p| p.pattern.0, |p| p.root.0);
            prop_assert!(g.validate());
            // Reassemble from runs.
            let mut rebuilt = Vec::new();
            for i in 0..g.num_primary() {
                for (_, ps) in g.runs(i) {
                    rebuilt.extend_from_slice(ps);
                }
            }
            prop_assert_eq!(rebuilt, postings.clone());
            // Every (pattern, root) pair can be found through run_postings.
            for &(p, r) in &pairs {
                let i = g.find_primary(p).unwrap();
                let run = g.run_postings(i, r);
                prop_assert!(run.iter().all(|x| x.pattern.0 == p && x.root.0 == r));
                let expected = pairs.iter().filter(|&&(a, b)| a == p && b == r).count();
                prop_assert_eq!(run.len(), expected);
            }
        }
    }
}
