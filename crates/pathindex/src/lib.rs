//! # patternkb-index
//!
//! Path-pattern based inverted indexes, reproducing Section 3 of the VLDB'14
//! paper. For each (canonical) keyword `w` the index materializes **all
//! paths** in the knowledge graph that start at some root `r`, follow a path
//! pattern `P`, and end at a node or edge containing `w`, with length at most
//! `d`. The same postings are stored in two sort orders:
//!
//! * the **pattern-first** order (Figure 4(a)) — `(pattern, root)` — serving
//!   `Patterns(w)`, `Roots(w, P)`, `Paths(w, P, r)`;
//! * the **root-first** order (Figure 4(b)) — `(root, pattern)` — serving
//!   `Roots(w)`, `Patterns(w, r)`, `Paths(w, r)`, `Paths(w, r, P)`.
//!
//! Postings are stored contiguously and sorted, with two-level group-offset
//! arrays, so every access method is a binary search plus a slice — the
//! in-memory analogue of the paper's "sort and store paths sequentially in
//! memory … store pointers pointing to the beginning of a list of paths".
//!
//! Per the end of §3, the scoring terms `|T(w)|`, `PR(f(w))` and
//! `sim(w, f(w))` are **precomputed into each posting**, so online scoring
//! never touches the graph.

#![warn(missing_docs)]

pub mod blocks;
pub mod build;
pub mod compress;
pub mod cursor;
pub mod grouped;
pub mod incremental;
pub mod pattern;
pub mod posting;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod varint;
pub mod word_index;

pub use blocks::{BlockCursor, BlockList, Encoding, BLOCK};
pub use build::{build_indexes, BuildConfig};
pub use compress::{CompressedPathIndexes, CompressedWordIndex};
pub use cursor::{intersect_runs, intersect_runs_while, SeekCursor, SliceCursor};
pub use grouped::RunCursor;
pub use incremental::{refresh_indexes, RefreshStats};
pub use pattern::{PathPattern, PatternId, PatternSet};
pub use posting::Posting;
pub use stats::{EncodingMix, IndexStats};
pub use storage::{IndexStorage, StorageBackend};
pub use word_index::{
    IndexShard, PathIndexes, PatternPostingStats, PatternTypeGroup, WordPathIndex,
};
