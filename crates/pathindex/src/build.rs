//! Index construction — Algorithm 1 of the paper.
//!
//! For every root `r`, a bounded DFS enumerates all simple paths with at
//! most `d` nodes. At each path `p = v1 … v_l`:
//!
//! * for every word in the text/type of the terminal node `v_l`, a
//!   **node-terminal** posting is emitted with pattern
//!   `τ(v1) α(e1) … τ(v_l)`;
//! * if `l + 1 ≤ d`, for every out-edge `(v_l) -A-> u` (with `u` not on the
//!   path — subtrees are subgraphs, so root-to-leaf paths are simple) and
//!   every word in `A`'s text, an **edge-terminal** posting is emitted with
//!   pattern `τ(v1) … α(e_l)` and node sequence `v1 … v_l, u` (the leaf is
//!   stored so table answers can show the value cell).
//!
//! The scoring terms `|T(w)|`, `PR(f(w))` and `sim(w, f(w))` are computed
//! here and stored in the posting (paper §3, last paragraph).
//!
//! Construction parallelizes over disjoint root ranges with scoped
//! scoped threads; each worker interns patterns locally and the merge step
//! re-interns into the global [`PatternSet`] (pattern counts are tiny
//! compared to posting counts, so the remap is cheap).

use crate::pattern::PatternSet;
use crate::posting::Posting;
use crate::word_index::{PathIndexes, WordPathIndex};
use patternkb_graph::ids::Id;
use patternkb_graph::{traversal, FxHashMap, KnowledgeGraph, NodeId, WordId};
use patternkb_text::TextIndex;

/// Maximum supported height threshold. `d = 4` is the paper's largest
/// experimental setting; the extra headroom exists for the Theorem-1
/// reduction tests, which build indexes with `d = |V| + 1` on tiny graphs.
pub const MAX_D: usize = 8;

/// Construction parameters.
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// Height threshold `d`: the maximum number of nodes on any root-to-
    /// match path (edge matches count their implied leaf).
    pub d: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Root-range shards to partition the index into (0 = available
    /// parallelism). Sharded execution is result-identical to `shards: 1`;
    /// see [`crate::word_index::PathIndexes`].
    pub shards: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            d: 3,
            threads: 0,
            shards: 1,
        }
    }
}

/// Resolve a `0 = auto` knob against available parallelism.
pub(crate) fn resolve_auto(value: usize) -> usize {
    if value == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        value
    }
}

/// Shard boundaries for `n` nodes in `shards` contiguous ranges. The last
/// bound is `u32::MAX` so nodes added by later deltas land in the last
/// shard.
pub(crate) fn shard_bounds(n: usize, shards: usize) -> Vec<u32> {
    let shards = shards.clamp(1, n.max(1));
    let chunk = n.div_ceil(shards).max(1);
    let mut bounds = Vec::with_capacity(shards + 1);
    for s in 0..shards {
        bounds.push((s * chunk).min(n) as u32);
    }
    bounds.push(u32::MAX);
    bounds
}

/// One raw (pre-merge) posting produced by a worker.
pub(crate) struct RawEntry {
    pub(crate) word: WordId,
    /// Worker-local pattern id.
    pub(crate) lpat: u32,
    pub(crate) root: NodeId,
    pub(crate) nodes: [NodeId; MAX_D + 1],
    pub(crate) nodes_len: u8,
    pub(crate) edge_terminal: bool,
    pub(crate) pagerank: f64,
    pub(crate) sim: f64,
}

pub(crate) struct WorkerOut {
    pub(crate) patterns: PatternSet,
    pub(crate) entries: Vec<RawEntry>,
}

/// Build both path indexes (pattern-first and root-first) for `g`.
///
/// # Panics
/// If `cfg.d` is 0 or exceeds [`MAX_D`].
pub fn build_indexes(g: &KnowledgeGraph, text: &TextIndex, cfg: &BuildConfig) -> PathIndexes {
    assert!(
        (1..=MAX_D).contains(&cfg.d),
        "height threshold d must be in 1..={MAX_D}"
    );
    let n = g.num_nodes();
    let threads = resolve_auto(cfg.threads).clamp(1, n.max(1));
    let bounds = shard_bounds(n, resolve_auto(cfg.shards));

    let outs: Vec<WorkerOut> = if threads == 1 || n < 4096 {
        vec![build_range(g, text, cfg.d, 0, n)]
    } else {
        let chunk = n.div_ceil(threads);
        let mut outs: Vec<Option<WorkerOut>> = (0..threads).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (t, slot) in outs.iter_mut().enumerate() {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    *slot = Some(build_range(g, text, cfg.d, lo, hi));
                });
            }
        });
        outs.into_iter()
            .map(|o| o.expect("worker output"))
            .collect()
    };

    merge(cfg.d, bounds, outs)
}

/// DFS over roots `[lo, hi)`, emitting raw entries with worker-local
/// pattern ids.
fn build_range(g: &KnowledgeGraph, text: &TextIndex, d: usize, lo: usize, hi: usize) -> WorkerOut {
    build_roots(g, text, d, (lo..hi).map(NodeId::from_usize))
}

/// DFS over an explicit root set, emitting raw entries with worker-local
/// pattern ids. Used by full construction (over contiguous ranges) and by
/// the incremental refresh (over the affected-root set).
pub(crate) fn build_roots(
    g: &KnowledgeGraph,
    text: &TextIndex,
    d: usize,
    roots: impl IntoIterator<Item = NodeId>,
) -> WorkerOut {
    let mut patterns = PatternSet::new();
    let mut entries: Vec<RawEntry> = Vec::new();
    let mut key: Vec<u32> = Vec::with_capacity(2 * MAX_D + 2);
    let mut words: Vec<WordId> = Vec::new();

    for root in roots {
        traversal::for_each_path(g, root, d, |nodes, attrs| {
            let l = nodes.len();
            let t = *nodes.last().expect("non-empty path");
            let t_type = g.node_type(t);

            // --- node-terminal postings ---
            // Words in the terminal node's text or type text (sorted merge).
            merge_sorted(text.node_tokens(t), text.type_tokens(t_type), &mut words);
            if !words.is_empty() {
                key.clear();
                key.push((l as u32) << 1);
                for i in 0..l {
                    key.push(g.node_type(nodes[i]).as_u32());
                    if i < attrs.len() {
                        key.push(attrs[i].as_u32());
                    }
                }
                let lpat = patterns.intern_key(&key).0;
                let pr = g.pagerank(t);
                let mut node_buf = [NodeId(0); MAX_D + 1];
                node_buf[..l].copy_from_slice(nodes);
                for &w in words.iter() {
                    entries.push(RawEntry {
                        word: w,
                        lpat,
                        root,
                        nodes: node_buf,
                        nodes_len: l as u8,
                        edge_terminal: false,
                        pagerank: pr,
                        sim: text.sim_node(w, t, t_type),
                    });
                }
            }

            // --- edge-terminal postings ---
            // The implied leaf counts toward the height bound: l + 1 ≤ d.
            if l < d {
                let pr = g.pagerank(t);
                for (attr, target) in g.out_edges(t) {
                    if nodes.contains(&target) {
                        continue; // keep root-to-leaf paths simple
                    }
                    let attr_words = text.attr_tokens(attr);
                    if attr_words.is_empty() {
                        continue;
                    }
                    key.clear();
                    key.push(((l as u32) << 1) | 1);
                    for i in 0..l {
                        key.push(g.node_type(nodes[i]).as_u32());
                        if i < attrs.len() {
                            key.push(attrs[i].as_u32());
                        }
                    }
                    key.push(attr.as_u32());
                    let lpat = patterns.intern_key(&key).0;
                    let mut node_buf = [NodeId(0); MAX_D + 1];
                    node_buf[..l].copy_from_slice(nodes);
                    node_buf[l] = target;
                    for &w in attr_words {
                        entries.push(RawEntry {
                            word: w,
                            lpat,
                            root,
                            nodes: node_buf,
                            nodes_len: (l + 1) as u8,
                            edge_terminal: true,
                            pagerank: pr,
                            sim: text.sim_attr(w, attr),
                        });
                    }
                }
            }
        });
    }
    WorkerOut { patterns, entries }
}

/// Merge two sorted id slices into `out`, deduplicated.
fn merge_sorted(a: &[WordId], b: &[WordId], out: &mut Vec<WordId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Re-intern worker-local patterns globally, route every posting to the
/// shard owning its root, and assemble per-shard per-word indexes.
fn merge(d: usize, bounds: Vec<u32>, outs: Vec<WorkerOut>) -> PathIndexes {
    let num_shards = bounds.len() - 1;
    let shard_of = |root: NodeId| -> usize {
        (bounds.partition_point(|&b| b <= root.0) - 1).min(num_shards - 1)
    };
    let mut global = PatternSet::new();
    let mut per_shard: Vec<FxHashMap<WordId, (Vec<Posting>, Vec<NodeId>)>> =
        (0..num_shards).map(|_| FxHashMap::default()).collect();

    for out in outs {
        // local pattern id -> global id
        let remap: Vec<u32> = (0..out.patterns.len())
            .map(|i| {
                global
                    .intern_key(out.patterns.key(crate::pattern::PatternId(i as u32)))
                    .0
            })
            .collect();
        for e in out.entries {
            let (postings, arena) = per_shard[shard_of(e.root)].entry(e.word).or_default();
            let start = arena.len() as u32;
            arena.extend_from_slice(&e.nodes[..e.nodes_len as usize]);
            postings.push(Posting {
                pattern: crate::pattern::PatternId(remap[e.lpat as usize]),
                root: e.root,
                nodes_start: start,
                nodes_len: e.nodes_len as u16,
                edge_terminal: e.edge_terminal,
                pagerank: e.pagerank,
                sim: e.sim,
            });
        }
    }

    let shards: Vec<crate::word_index::IndexShard> = per_shard
        .into_iter()
        .map(|per_word| {
            crate::word_index::IndexShard::new(
                per_word
                    .into_iter()
                    .map(|(w, (postings, arena))| (w, WordPathIndex::new(postings, arena)))
                    .collect(),
            )
        })
        .collect();
    PathIndexes::new(d, global, bounds, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::GraphBuilder;
    use patternkb_text::SynonymTable;

    /// SQL Server --Developer--> Microsoft --Revenue--> "US$ 77 billion"
    ///            --Genre-----> Relational database (text)
    fn sample() -> (KnowledgeGraph, TextIndex) {
        let mut b = GraphBuilder::new();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let genre = b.add_attr("Genre");
        let sql = b.add_node(soft, "SQL Server");
        let ms = b.add_node(comp, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        b.add_text_edge(sql, genre, "Relational database");
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        (g, t)
    }

    fn word(t: &TextIndex, s: &str) -> WordId {
        t.lookup_word(s).expect("word present")
    }

    #[test]
    fn node_terminal_paths_found() {
        let (g, t) = sample();
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let db = word(&t, "database");
        let widx = idx.word(db).expect("database indexed");
        // Paths ending at "Relational database": from its own root (trivial)
        // and from SQL Server via Genre.
        assert_eq!(widx.len(), 2);
        let roots = widx.roots();
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn edge_terminal_paths_found() {
        let (g, t) = sample();
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let revenue = word(&t, "revenue");
        let widx = idx.word(revenue).expect("revenue indexed");
        // Ending at the Revenue edge: from Microsoft (2 nodes incl leaf) and
        // from SQL Server via Developer (3 nodes incl leaf).
        assert_eq!(widx.len(), 2);
        for p in widx.patterns().flat_map(|pat| widx.paths_of_pattern(pat)) {
            assert!(p.edge_terminal);
            let nodes = widx.nodes_of(p);
            // Leaf stored: last node is the text node.
            assert!(g.is_text_node(*nodes.last().unwrap()));
        }
    }

    #[test]
    fn height_bound_respected() {
        let (g, t) = sample();
        // With d = 2 the 3-node revenue path from SQL Server must vanish.
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let revenue = word(&t, "revenue");
        let widx = idx.word(revenue).expect("revenue indexed");
        assert_eq!(widx.len(), 1);
        assert_eq!(widx.roots().len(), 1);
        for (_, w) in idx.shards()[0].iter_words() {
            for pat in w.patterns() {
                assert!(idx.patterns().height(pat) <= 2);
            }
        }
    }

    #[test]
    fn scoring_terms_precomputed() {
        let (g, t) = sample();
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let db = word(&t, "database");
        let widx = idx.word(db).unwrap();
        for pat in widx.patterns() {
            for p in widx.paths_of_pattern(pat) {
                // "Relational database" has 2 tokens → sim = 1/2.
                assert!((p.sim - 0.5).abs() < 1e-12);
                let terminal = *widx.nodes_of(p).last().unwrap();
                assert!((p.pagerank - g.pagerank(terminal)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn type_words_match_all_nodes_of_type() {
        let (g, t) = sample();
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let software = word(&t, "software");
        let widx = idx.word(software).unwrap();
        // "software" matches the SQL Server node via its type; paths: the
        // trivial one from itself (1 node). No other node reaches it... via
        // no edges pointing to SQL Server. So exactly 1 posting.
        assert_eq!(widx.len(), 1);
        let p = &widx.paths_of_pattern(widx.patterns().next().unwrap())[0];
        assert_eq!(widx.nodes_of(p), &[NodeId(0)]);
        assert_eq!(idx.patterns().root_type(p.pattern), g.node_type(NodeId(0)));
    }

    #[test]
    fn parallel_build_matches_serial() {
        // A slightly larger random-ish graph.
        let mut b = GraphBuilder::new();
        let t0 = b.add_type("Alpha");
        let t1 = b.add_type("Beta");
        let a0 = b.add_attr("link");
        let a1 = b.add_attr("rel");
        let nodes: Vec<_> = (0..200)
            .map(|i| b.add_node(if i % 2 == 0 { t0 } else { t1 }, &format!("node {i}")))
            .collect();
        for i in 0..200usize {
            b.add_edge(nodes[i], a0, nodes[(i * 7 + 3) % 200]);
            b.add_edge(nodes[i], a1, nodes[(i * 13 + 11) % 200]);
        }
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        let serial = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let parallel = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 4,
                shards: 1,
            },
        );
        assert_eq!(serial.num_postings(), parallel.num_postings());
        assert_eq!(serial.patterns().len(), parallel.patterns().len());
        // Compare per-word posting multisets via a canonical projection.
        for (w, ws) in serial.shards()[0].iter_words() {
            let wp = parallel.word(w).expect("word in parallel index");
            let canon = |idx: &WordPathIndex| {
                let mut v: Vec<(Vec<NodeId>, bool, u64, u64)> = idx
                    .roots()
                    .iter()
                    .flat_map(|&r| idx.paths_of_root(NodeId(r)).to_vec())
                    .map(|p| {
                        (
                            idx.nodes_of(&p).to_vec(),
                            p.edge_terminal,
                            p.pagerank.to_bits(),
                            p.sim.to_bits(),
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(canon(ws), canon(wp));
        }
    }

    #[test]
    #[should_panic(expected = "height threshold")]
    fn rejects_bad_d() {
        let (g, t) = sample();
        build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 0,
                threads: 1,
                shards: 1,
            },
        );
    }

    #[test]
    fn sharded_build_partitions_by_root_range() {
        let (g, t) = sample();
        for shards in [1usize, 2, 3, 7] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            assert_eq!(idx.num_shards(), shards.min(g.num_nodes()));
            assert_eq!(idx.bounds().len(), idx.num_shards() + 1);
            // Every posting's root lies in its shard's declared range.
            for (s, shard) in idx.shards().iter().enumerate() {
                let (lo, hi) = (idx.bounds()[s], idx.bounds()[s + 1]);
                for (_, widx) in shard.iter_words() {
                    for p in widx.postings_pattern_first() {
                        assert!(p.root.0 >= lo && (hi == u32::MAX || p.root.0 < hi));
                        assert_eq!(idx.shard_of_root(p.root), s);
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_build_holds_same_postings_as_single() {
        let (g, t) = sample();
        let single = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let canon = |idx: &PathIndexes| {
            let mut rows: Vec<(u32, Vec<u32>, Vec<NodeId>, bool, u64, u64)> = Vec::new();
            for shard in idx.shards() {
                for (w, widx) in shard.iter_words() {
                    for p in widx.postings_pattern_first() {
                        rows.push((
                            w.0,
                            idx.patterns().key(p.pattern).to_vec(),
                            widx.nodes_of(p).to_vec(),
                            p.edge_terminal,
                            p.pagerank.to_bits(),
                            p.sim.to_bits(),
                        ));
                    }
                }
            }
            rows.sort();
            rows
        };
        let reference = canon(&single);
        for shards in [2usize, 3, 7] {
            let idx = build_indexes(
                &g,
                &t,
                &BuildConfig {
                    d: 3,
                    threads: 1,
                    shards,
                },
            );
            assert_eq!(canon(&idx), reference, "shards = {shards}");
            assert_eq!(idx.num_postings(), single.num_postings());
            assert_eq!(idx.num_words(), single.num_words());
            assert_eq!(idx.patterns().len(), single.patterns().len());
        }
    }
}
