//! Seekable cursors over sorted id lists and gallop (leapfrog)
//! intersection — the primitive behind candidate-root computation
//! (`R = ∩ᵢ Roots(wᵢ)`, Algorithm 3 line 1) and `PATTERNENUM`'s per-
//! combination emptiness tests.
//!
//! The previous engine intersected by binary-searching **every** element
//! of the shortest list in each other list: `O(n_min · k · log n)` with no
//! way to benefit from skew. Leapfrog intersection instead keeps one
//! cursor per list and repeatedly seeks the lagging cursors to the
//! current candidate; each seek gallops (exponential probe, then binary
//! search inside the bracket) from the cursor's position, so runs of
//! non-matching ids cost `O(log run)` instead of `O(run · log n)` and the
//! whole intersection is `O(k · Σ log jumps)` — within a constant of the
//! information-theoretic lower bound for merging sorted sets.
//!
//! Two cursor types share the discipline (monotone targets, peek
//! semantics): [`SliceCursor`] over in-memory `&[u32]` runs (the hot
//! uncompressed index) and [`crate::blocks::BlockCursor`] over the
//! compressed tier's block-coded lists, where per-block max-root skip
//! entries make `seek` cheaper still.

use crate::blocks::BlockCursor;

/// A forward cursor over a sorted `u32` sequence supporting skip-ahead.
///
/// Contract: `seek` targets are non-decreasing across calls; `seek`
/// positions the cursor **at** the returned element (peeking), while
/// `next` consumes.
pub trait SeekCursor {
    /// The least remaining element `≥ target`, without consuming it.
    fn seek(&mut self, target: u32) -> Option<u32>;
    /// Consume and return the current element.
    fn next(&mut self) -> Option<u32>;
    /// Exact number of unconsumed elements.
    fn remaining(&self) -> usize;
}

/// Lower bound of `target` in sorted `keys`, galloping forward from
/// position `from`: exponential probe to bracket the answer in
/// `O(log jump)`, then binary search inside the bracket. The shared
/// kernel behind [`SliceCursor::seek`] and
/// [`crate::grouped::RunCursor::seek`].
#[inline]
pub(crate) fn gallop_lower_bound(keys: &[u32], from: usize, target: u32) -> usize {
    let mut lo = from;
    if lo >= keys.len() || keys[lo] >= target {
        return lo;
    }
    let mut step = 1usize;
    while lo + step < keys.len() && keys[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(keys.len());
    lo + keys[lo..hi].partition_point(|&v| v < target)
}

/// [`SeekCursor`] over a plain sorted slice, seeking by galloping from
/// the current position.
pub struct SliceCursor<'a> {
    s: &'a [u32],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    /// Cursor over `s` (must be sorted ascending).
    pub fn new(s: &'a [u32]) -> Self {
        debug_assert!(s.windows(2).all(|w| w[0] <= w[1]));
        SliceCursor { s, pos: 0 }
    }
}

impl SeekCursor for SliceCursor<'_> {
    #[inline]
    fn seek(&mut self, target: u32) -> Option<u32> {
        self.pos = gallop_lower_bound(self.s, self.pos, target);
        self.s.get(self.pos).copied()
    }

    #[inline]
    fn next(&mut self) -> Option<u32> {
        let v = self.s.get(self.pos).copied();
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    fn remaining(&self) -> usize {
        self.s.len() - self.pos
    }
}

impl SeekCursor for BlockCursor<'_> {
    #[inline]
    fn seek(&mut self, target: u32) -> Option<u32> {
        BlockCursor::seek(self, target)
    }

    #[inline]
    fn next(&mut self) -> Option<u32> {
        self.next_value()
    }

    fn remaining(&self) -> usize {
        BlockCursor::remaining(self)
    }
}

/// Leapfrog-intersect `cursors`, calling `emit` for every common value in
/// ascending order. Duplicates within a list are emitted once per common
/// value. Returns the number of `seek` calls issued (the intersection's
/// work measure).
pub fn intersect_with<C: SeekCursor>(cursors: &mut [C], mut emit: impl FnMut(u32)) -> u64 {
    if cursors.is_empty() {
        return 0;
    }
    let mut seeks: u64 = 0;
    // Start from the smallest list: it drives the fewest rounds.
    let lead = cursors
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| c.remaining())
        .map(|(i, _)| i)
        .expect("non-empty cursor set");
    cursors.swap(0, lead);
    let Some(mut candidate) = cursors[0].next() else {
        return seeks;
    };
    'round: loop {
        // Leapfrog every other cursor up to the candidate.
        for c in cursors[1..].iter_mut() {
            seeks += 1;
            match c.seek(candidate) {
                None => break 'round,
                Some(v) if v == candidate => {}
                Some(v) => {
                    // Overshoot: the lead must catch up to v.
                    seeks += 1;
                    match cursors[0].seek(v) {
                        None => break 'round,
                        Some(next) => {
                            candidate = next;
                            cursors[0].next();
                            continue 'round;
                        }
                    }
                }
            }
        }
        emit(candidate);
        match cursors[0].next() {
            Some(next) if next == candidate => {
                // Skip duplicates of an already-emitted value in the lead.
                loop {
                    match cursors[0].next() {
                        Some(v) if v == candidate => continue,
                        Some(v) => {
                            candidate = v;
                            break;
                        }
                        None => break 'round,
                    }
                }
            }
            Some(next) => candidate = next,
            None => break 'round,
        }
    }
    seeks
}

/// Intersect sorted slices into a materialized vector (ascending,
/// deduplicated), galloping under the hood. `seeks`, when provided,
/// accumulates the number of cursor seeks performed.
pub fn intersect_sorted_into(lists: &[&[u32]], out: &mut Vec<u32>, seeks: Option<&mut u64>) {
    out.clear();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return;
    }
    let mut cursors: Vec<SliceCursor> = lists.iter().map(|l| SliceCursor::new(l)).collect();
    let n = intersect_with(&mut cursors, |v| out.push(v));
    if let Some(s) = seeks {
        *s += n;
    }
}

/// Intersect sorted slices, returning the common values.
pub fn intersect_sorted(lists: &[&[u32]]) -> Vec<u32> {
    let mut out = Vec::new();
    intersect_sorted_into(lists, &mut out, None);
    out
}

/// `|∩ lists|` without materializing the intersection.
pub fn intersect_count(lists: &[&[u32]], seeks: Option<&mut u64>) -> usize {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return 0;
    }
    let mut cursors: Vec<SliceCursor> = lists.iter().map(|l| SliceCursor::new(l)).collect();
    let mut count = 0usize;
    let n = intersect_with(&mut cursors, |_| count += 1);
    if let Some(s) = seeks {
        *s += n;
    }
    count
}

/// Fused intersection + join over per-keyword
/// [`RunCursor`](crate::grouped::RunCursor)s: leapfrog
/// the cursors by their run keys (roots), and for every **common** key
/// call `f(key, slices)` with each cursor's matching posting run — the
/// per-combination inner loop of `PATTERNENUM`, with zero per-match
/// binary searches and no materialized intersection vector. Returns the
/// number of seeks performed.
pub fn intersect_runs<'a>(
    cursors: &mut [crate::grouped::RunCursor<'a>],
    slices: &mut Vec<&'a [crate::posting::Posting]>,
    mut f: impl FnMut(u32, &[&'a [crate::posting::Posting]]),
) -> u64 {
    intersect_runs_while(cursors, slices, |key, runs, _| {
        f(key, runs);
        std::ops::ControlFlow::Continue(())
    })
}

/// [`intersect_runs`] with early exit: after each common key, `f` returns
/// [`std::ops::ControlFlow`] — `Break(())` abandons the remainder of the
/// intersection (the score-bounded search path breaks once the pattern's
/// upper bound can no longer beat the shared top-k threshold). `f` also
/// receives the cursor array read-only, so callers can inspect each
/// cursor's [`crate::grouped::RunCursor::pos`]/`remaining` to index
/// suffix score-bound tables. Returns the number of seeks performed.
pub fn intersect_runs_while<'a>(
    cursors: &mut [crate::grouped::RunCursor<'a>],
    slices: &mut Vec<&'a [crate::posting::Posting]>,
    mut f: impl FnMut(
        u32,
        &[&'a [crate::posting::Posting]],
        &[crate::grouped::RunCursor<'a>],
    ) -> std::ops::ControlFlow<()>,
) -> u64 {
    let mut seeks: u64 = 0;
    if cursors.is_empty() {
        return seeks;
    }
    // Drive from the shortest run list: it bounds the number of rounds,
    // which is what makes provably-empty combinations exit in O(m) seeks.
    let lead = cursors
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| c.remaining())
        .map(|(i, _)| i)
        .expect("non-empty cursor set");
    seeks += 1;
    let Some(mut candidate) = cursors[lead].seek(0) else {
        return seeks;
    };
    'round: loop {
        for ci in 0..cursors.len() {
            if ci == lead {
                continue;
            }
            seeks += 1;
            match cursors[ci].seek(candidate) {
                None => break 'round,
                Some(v) if v == candidate => {}
                Some(v) => {
                    seeks += 1;
                    match cursors[lead].seek(v) {
                        None => break 'round,
                        Some(next) => {
                            candidate = next;
                            continue 'round;
                        }
                    }
                }
            }
        }
        slices.clear();
        for c in cursors.iter() {
            slices.push(c.postings());
        }
        if f(candidate, slices, &*cursors).is_break() {
            break 'round;
        }
        match cursors[lead].advance() {
            Some(next) => candidate = next,
            None => break,
        }
    }
    seeks
}

/// Reference implementation: binary-search each element of the shortest
/// list in all others (what the engine shipped before galloping). Kept
/// for the equivalence proptests and the gallop-vs-naive microbench.
pub fn intersect_naive(lists: &[&[u32]]) -> Vec<u32> {
    if lists.is_empty() {
        return Vec::new();
    }
    let shortest = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty lists");
    let mut out = Vec::with_capacity(lists[shortest].len());
    let mut prev: Option<u32> = None;
    'outer: for &x in lists[shortest] {
        if prev == Some(x) {
            continue; // dedup, matching the gallop implementation
        }
        for (i, l) in lists.iter().enumerate() {
            if i != shortest && l.binary_search(&x).is_err() {
                continue 'outer;
            }
        }
        prev = Some(x);
        out.push(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockList;
    use proptest::prelude::*;

    #[test]
    fn slice_cursor_seek_and_next() {
        let s = [2u32, 4, 4, 8, 16, 100, 1000];
        let mut c = SliceCursor::new(&s);
        assert_eq!(c.seek(1), Some(2));
        assert_eq!(c.next(), Some(2));
        assert_eq!(c.seek(4), Some(4));
        assert_eq!(c.seek(5), Some(8));
        assert_eq!(c.seek(999), Some(1000));
        assert_eq!(c.next(), Some(1000));
        assert_eq!(c.seek(1001), None);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn intersect_basic() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 5, 8];
        let c = [3u32, 5, 9];
        assert_eq!(intersect_sorted(&[&a, &b, &c]), vec![3, 5]);
        assert_eq!(intersect_count(&[&a, &b, &c], None), 2);
    }

    #[test]
    fn intersect_empty_cases() {
        let a = [1u32, 2];
        let empty: [u32; 0] = [];
        assert!(intersect_sorted(&[&a, &empty]).is_empty());
        assert!(intersect_sorted(&[]).is_empty());
        assert_eq!(intersect_sorted(&[&a]), vec![1, 2]);
        assert_eq!(intersect_count(&[&a], None), 2);
    }

    #[test]
    fn intersect_dedups_common_duplicates() {
        let a = [3u32, 3, 5];
        let b = [3u32, 5, 5];
        assert_eq!(intersect_sorted(&[&a, &b]), vec![3, 5]);
        assert_eq!(intersect_naive(&[&a, &b]), vec![3, 5]);
    }

    #[test]
    fn block_cursors_intersect_too() {
        let a: Vec<u32> = (0..2000).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..2000).map(|i| i * 5).collect();
        let la = BlockList::encode(&a);
        let lb = BlockList::encode(&b);
        let mut cursors = vec![la.cursor(), lb.cursor()];
        let mut out = Vec::new();
        intersect_with(&mut cursors, |v| out.push(v));
        let expect: Vec<u32> = (0..2000u32 * 3).filter(|v| v % 15 == 0).collect();
        assert_eq!(out, expect);
    }

    proptest! {
        /// Gallop intersection equals the naive implementation on
        /// arbitrary sorted lists (the satellite equivalence property).
        #[test]
        fn gallop_equals_naive(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u32..400, 0..300), 1..5)
        ) {
            let lists: Vec<Vec<u32>> = raw
                .into_iter()
                .map(|mut l| { l.sort_unstable(); l })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            let gallop = intersect_sorted(&refs);
            let naive = intersect_naive(&refs);
            prop_assert_eq!(&gallop, &naive);
            prop_assert_eq!(intersect_count(&refs, None), naive.len());
        }

        /// Block-coded cursors produce the same intersection as slices.
        #[test]
        fn blocks_equal_slices(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u32..500, 1..400), 2..4)
        ) {
            let lists: Vec<Vec<u32>> = raw
                .into_iter()
                .map(|mut l| { l.sort_unstable(); l })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            let blocks: Vec<BlockList> =
                lists.iter().map(|l| BlockList::encode(l)).collect();
            let mut cursors: Vec<_> = blocks.iter().map(BlockList::cursor).collect();
            let mut via_blocks = Vec::new();
            intersect_with(&mut cursors, |v| via_blocks.push(v));
            prop_assert_eq!(via_blocks, intersect_sorted(&refs));
        }
    }
}
