//! Incremental maintenance of the path-pattern indexes under graph
//! mutation.
//!
//! Full index construction (Algorithm 1) costs minutes at knowledge-base
//! scale — the paper's Figure 6 reports 502 s for `d = 3` on Wiki — which
//! is far too slow to rerun for every ingested fact. This module refreshes
//! an existing [`PathIndexes`] after a batch of graph mutations by
//! re-enumerating paths only from the **affected roots**.
//!
//! A root's indexed paths can change only if some path from it (in the old
//! *or* new graph, with at most `d` nodes) touches a *dirty* node — an
//! endpoint of an added/removed edge or a brand-new node (see
//! [`patternkb_graph::mutate::GraphDelta::dirty_nodes`]). Equivalently, the
//! root reaches a dirty node within `d − 1` hops, so the affected set is a
//! backward BFS of depth `d − 1` from the dirty set, run on **both** the
//! old graph (covers paths that existed before a removal) and the new one
//! (covers paths created by an addition). Postings rooted outside the
//! affected set are carried over verbatim; affected roots are rebuilt with
//! the same DFS as full construction.
//!
//! Two subtleties:
//!
//! * **Word-id stability.** The text index is rebuilt against the new
//!   graph, and word ids are assigned in interning order — a new type or
//!   attribute that introduces vocabulary shifts every later id. Carried-
//!   over postings are therefore *remapped* through the canonical word
//!   forms (old id → canonical text → new id); text is never removed, so
//!   the remap is total.
//! * **PageRank.** The postings cache `PR(f(w))`. When the mutation was
//!   applied with [`patternkb_graph::mutate::PagerankMode::Recompute`],
//!   every node's score moved, so pass `refresh_pagerank = true` and the
//!   carried-over postings get their cached score re-read from the new
//!   graph (an O(postings) pass, no path enumeration). Under `Frozen`
//!   semantics pass `false` and the old cached scores remain exact.
//!
//! The result is **semantically identical** to a full rebuild on the new
//! graph: same per-word posting multisets, same patterns, same scores
//! (asserted by the equivalence tests below and by property tests). Only
//! internal id assignment (pattern ids, arena layout) may differ, and
//! stale patterns with no remaining postings may linger in the interner —
//! both invisible through the query API.

use crate::build;
use crate::pattern::{PatternId, PatternSet};
use crate::posting::Posting;
use crate::word_index::{PathIndexes, WordPathIndex};
use patternkb_graph::ids::Id;
use patternkb_graph::{traversal, FxHashMap, KnowledgeGraph, NodeId, WordId};
use patternkb_text::TextIndex;

/// Counters describing one [`refresh_indexes`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Roots whose paths were re-enumerated.
    pub affected_roots: usize,
    /// Postings dropped because their root was affected.
    pub postings_dropped: usize,
    /// Postings carried over verbatim (modulo word-id remap and optional
    /// PageRank re-read).
    pub postings_kept: usize,
    /// Fresh postings produced by re-enumerating the affected roots.
    pub postings_added: usize,
    /// Path patterns newly interned by the refresh.
    pub patterns_added: usize,
}

/// Rebuild the path indexes for `new_g` from the indexes of `old_g`,
/// re-enumerating only roots whose `d`-bounded neighbourhood can have
/// changed.
///
/// `dirty` is the seed set of changed nodes (typically
/// [`patternkb_graph::mutate::GraphDelta::dirty_nodes`]). `old_text` /
/// `new_text` are the text indexes of the two graphs (the new one is a
/// cheap full rebuild — tokenization is linear in the text, not in the
/// path count). Set `refresh_pagerank` iff the mutation recomputed
/// PageRank.
pub fn refresh_indexes(
    old: &PathIndexes,
    old_g: &KnowledgeGraph,
    new_g: &KnowledgeGraph,
    old_text: &TextIndex,
    new_text: &TextIndex,
    dirty: &[NodeId],
    refresh_pagerank: bool,
) -> (PathIndexes, RefreshStats) {
    let d = old.d();
    let old_n = old_g.num_nodes();
    let new_n = new_g.num_nodes();
    let mut stats = RefreshStats::default();

    // --- 1. Affected roots: backward BFS depth d−1 on both graphs. ---
    let mask_old = traversal::backward_reach_mask(
        old_g,
        dirty.iter().copied().filter(|v| v.index() < old_n),
        d,
    );
    let mask_new = traversal::backward_reach_mask(new_g, dirty.iter().copied(), d);
    let mut affected = mask_new;
    for (i, &m) in mask_old.iter().enumerate() {
        if m {
            affected[i] = true;
        }
    }
    debug_assert_eq!(affected.len(), new_n);
    let affected_roots: Vec<NodeId> = (0..new_n)
        .filter(|&i| affected[i])
        .map(NodeId::from_usize)
        .collect();
    stats.affected_roots = affected_roots.len();

    // --- 2. Word-id remap old → new through canonical forms. ---
    let remap: FxHashMap<WordId, WordId> = old
        .word_ids()
        .into_iter()
        .map(|w| {
            let canon = old_text.vocab().resolve(w);
            let nw = new_text
                .vocab()
                .lookup_canonical(canon)
                .expect("canonical words survive mutation (text is never removed)");
            (w, nw)
        })
        .collect();

    // --- 3. Carry over postings of unaffected roots, shard by shard
    //        (unaffected roots stay in their owning shard). ---
    let bounds = old.bounds().to_vec();
    let num_shards = old.num_shards();
    let mut patterns: PatternSet = old.patterns().clone();
    let patterns_before = patterns.len();
    let mut acc: Vec<FxHashMap<WordId, (Vec<Posting>, Vec<NodeId>)>> =
        (0..num_shards).map(|_| FxHashMap::default()).collect();
    for (s, shard) in old.shards().iter().enumerate() {
        for (w, widx) in shard.iter_words() {
            let nw = remap[&w];
            let (postings, arena) = acc[s].entry(nw).or_default();
            for p in widx.postings_pattern_first() {
                if affected[p.root.index()] {
                    stats.postings_dropped += 1;
                    continue;
                }
                let nodes = widx.nodes_of(p);
                let start = arena.len() as u32;
                arena.extend_from_slice(nodes);
                let pagerank = if refresh_pagerank {
                    // Matched node: the terminal for node matches, the edge's
                    // source (second-to-last stored node — the leaf is
                    // appended) for edge matches.
                    let matched = if p.edge_terminal {
                        nodes[nodes.len() - 2]
                    } else {
                        *nodes.last().expect("non-empty path")
                    };
                    new_g.pagerank(matched)
                } else {
                    p.pagerank
                };
                postings.push(Posting {
                    pattern: p.pattern,
                    root: p.root,
                    nodes_start: start,
                    nodes_len: p.nodes_len,
                    edge_terminal: p.edge_terminal,
                    pagerank,
                    sim: p.sim,
                });
                stats.postings_kept += 1;
            }
        }
    }

    // --- 4. Re-enumerate the affected roots on the new graph, routing
    //        each fresh posting to the shard owning its root (new nodes
    //        beyond the old bounds land in the last shard). ---
    let out = build::build_roots(new_g, new_text, d, affected_roots.iter().copied());
    let pat_remap: Vec<PatternId> = (0..out.patterns.len())
        .map(|i| patterns.intern_key(out.patterns.key(PatternId(i as u32))))
        .collect();
    for e in out.entries {
        let s = (bounds.partition_point(|&b| b <= e.root.0) - 1).min(num_shards - 1);
        let (postings, arena) = acc[s].entry(e.word).or_default();
        let start = arena.len() as u32;
        arena.extend_from_slice(&e.nodes[..e.nodes_len as usize]);
        postings.push(Posting {
            pattern: pat_remap[e.lpat as usize],
            root: e.root,
            nodes_start: start,
            nodes_len: e.nodes_len as u16,
            edge_terminal: e.edge_terminal,
            pagerank: e.pagerank,
            sim: e.sim,
        });
        stats.postings_added += 1;
    }
    stats.patterns_added = patterns.len() - patterns_before;

    // --- 5. Re-freeze per-word indexes (drops words left empty). ---
    let shards: Vec<crate::word_index::IndexShard> = acc
        .into_iter()
        .map(|per_word| {
            crate::word_index::IndexShard::new(
                per_word
                    .into_iter()
                    .filter(|(_, (postings, _))| !postings.is_empty())
                    .map(|(w, (postings, arena))| (w, WordPathIndex::new(postings, arena)))
                    .collect(),
            )
        })
        .collect();
    (PathIndexes::new(d, patterns, bounds, shards), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_indexes, BuildConfig};
    use patternkb_graph::mutate::{GraphDelta, PagerankMode};
    use patternkb_graph::GraphBuilder;
    use patternkb_text::SynonymTable;

    /// Canonicalize a whole index into a comparable value: per canonical
    /// word text, the sorted multiset of (pattern key, node sequence,
    /// flags, score bits).
    fn canon(
        idx: &PathIndexes,
        text: &TextIndex,
    ) -> Vec<(String, Vec<(Vec<u32>, Vec<NodeId>, bool, u64, u64)>)> {
        let mut acc: std::collections::BTreeMap<
            String,
            Vec<(Vec<u32>, Vec<NodeId>, bool, u64, u64)>,
        > = std::collections::BTreeMap::new();
        for shard in idx.shards() {
            for (w, widx) in shard.iter_words() {
                let rows = acc.entry(text.vocab().resolve(w).to_string()).or_default();
                rows.extend(widx.postings_pattern_first().iter().map(|p| {
                    (
                        idx.patterns().key(p.pattern).to_vec(),
                        widx.nodes_of(p).to_vec(),
                        p.edge_terminal,
                        p.pagerank.to_bits(),
                        p.sim.to_bits(),
                    )
                }));
            }
        }
        acc.into_iter()
            .map(|(word, mut rows)| {
                rows.sort();
                (word, rows)
            })
            .collect()
    }

    fn base_graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let model = b.add_type("Model");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let genre = b.add_attr("Genre");
        let sql = b.add_node(soft, "SQL Server");
        let ms = b.add_node(comp, "Microsoft");
        let rdb = b.add_node(model, "Relational database");
        b.add_edge(sql, dev, ms);
        b.add_edge(sql, genre, rdb);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        b.build()
    }

    fn rebuild_and_refresh(
        g: &KnowledgeGraph,
        delta: &GraphDelta,
        mode: PagerankMode,
    ) -> (PathIndexes, PathIndexes, TextIndex, RefreshStats) {
        let cfg = BuildConfig {
            d: 3,
            threads: 1,
            shards: 1,
        };
        let old_text = TextIndex::build(g, SynonymTable::new());
        let old_idx = build_indexes(g, &old_text, &cfg);

        let g2 = delta.apply(g, mode).expect("delta applies");
        let new_text = TextIndex::build(&g2, SynonymTable::new());
        let full = build_indexes(&g2, &new_text, &cfg);
        let (incr, stats) = refresh_indexes(
            &old_idx,
            g,
            &g2,
            &old_text,
            &new_text,
            &delta.dirty_nodes(),
            mode == PagerankMode::Recompute,
        );
        (full, incr, new_text, stats)
    }

    #[test]
    fn add_entity_matches_full_rebuild() {
        let g = base_graph();
        let comp = g.type_by_text("Company").unwrap();
        let dev = g.attr_by_text("Developer").unwrap();
        let rev = g.attr_by_text("Revenue").unwrap();
        let mut d = GraphDelta::new(&g);
        let ora = d.add_node(comp, "Oracle Corp").unwrap();
        let soft = g.type_by_text("Software").unwrap();
        let odb = d.add_node(soft, "Oracle DB").unwrap();
        d.add_edge(odb, dev, ora).unwrap();
        d.add_text_edge(ora, rev, "US$ 37 billion").unwrap();
        let (full, incr, text, stats) = rebuild_and_refresh(&g, &d, PagerankMode::Recompute);
        assert_eq!(canon(&full, &text), canon(&incr, &text));
        assert!(stats.postings_added > 0);
    }

    #[test]
    fn remove_edge_matches_full_rebuild() {
        let g = base_graph();
        let dev = g.attr_by_text("Developer").unwrap();
        let mut d = GraphDelta::new(&g);
        d.remove_edge(NodeId(0), dev, NodeId(1)).unwrap();
        let (full, incr, text, stats) = rebuild_and_refresh(&g, &d, PagerankMode::Recompute);
        assert_eq!(canon(&full, &text), canon(&incr, &text));
        assert!(stats.postings_dropped > 0);
    }

    #[test]
    fn frozen_mode_matches_full_rebuild_on_frozen_graph() {
        let g = base_graph();
        let comp = g.type_by_text("Company").unwrap();
        let mut d = GraphDelta::new(&g);
        let _ = d.add_node(comp, "Oracle Corp").unwrap();
        let (full, incr, text, _) = rebuild_and_refresh(&g, &d, PagerankMode::Frozen);
        assert_eq!(canon(&full, &text), canon(&incr, &text));
    }

    #[test]
    fn new_vocabulary_via_new_attr_remaps_word_ids() {
        // A new attribute whose text interleaves new words before the node
        // words in interning order: exercises the word-id remap.
        let g = base_graph();
        let mut d = GraphDelta::new(&g);
        let acquired = d.add_attr("acquired subsidiary");
        d.add_edge(NodeId(1), acquired, NodeId(0)).unwrap();
        let (full, incr, text, _) = rebuild_and_refresh(&g, &d, PagerankMode::Recompute);
        assert_eq!(canon(&full, &text), canon(&incr, &text));
        // The new attribute's words must be findable.
        let w = text.lookup_word("subsidiary").expect("new word indexed");
        assert!(incr.has_word(w));
    }

    #[test]
    fn empty_delta_keeps_everything() {
        let g = base_graph();
        let d = GraphDelta::new(&g);
        let (full, incr, text, stats) = rebuild_and_refresh(&g, &d, PagerankMode::Frozen);
        assert_eq!(canon(&full, &text), canon(&incr, &text));
        assert_eq!(stats.affected_roots, 0);
        assert_eq!(stats.postings_dropped, 0);
        assert_eq!(stats.postings_added, 0);
        assert_eq!(stats.postings_kept, full.num_postings());
    }

    #[test]
    fn far_away_roots_untouched() {
        // A long chain: mutating the tail must not re-enumerate the head.
        let mut b = GraphBuilder::new();
        let t = b.add_type("Station");
        let next = b.add_attr("next");
        let nodes: Vec<_> = (0..12)
            .map(|i| b.add_node(t, &format!("station {i}")))
            .collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], next, w[1]);
        }
        let g = b.build();
        let mut d = GraphDelta::new(&g);
        let extra = d.add_node(t, "station extra").unwrap();
        d.add_edge(nodes[11], next, extra).unwrap();
        let (full, incr, text, stats) = rebuild_and_refresh(&g, &d, PagerankMode::Frozen);
        assert_eq!(canon(&full, &text), canon(&incr, &text));
        // Only the last d−1 = 2 chain nodes (plus the new one) can reach the
        // dirty set within 2 hops.
        assert!(
            stats.affected_roots <= 4,
            "expected a local refresh, got {} affected roots",
            stats.affected_roots
        );
        assert!(stats.postings_kept > 0);
    }

    #[test]
    fn refreshed_index_recompresses_identically_to_full_rebuild() {
        // A chain long enough that posting lists span several blocks and
        // the v4 adaptive selector has real choices to make. Extending the
        // tail dirties only nearby roots, yet the refreshed index must
        // re-freeze its per-word indexes so that re-compression re-runs
        // encoding selection on the dirtied lists — byte-identical to
        // compressing a from-scratch rebuild of the new graph.
        let mut b = GraphBuilder::new();
        let t = b.add_type("Station");
        let next = b.add_attr("next");
        let nodes: Vec<_> = (0..300)
            .map(|i| b.add_node(t, &format!("station s{i}")))
            .collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], next, w[1]);
        }
        let g = b.build();
        let mut d = GraphDelta::new(&g);
        let extra = d.add_node(t, "station tail").unwrap();
        d.add_edge(nodes[299], next, extra).unwrap();
        let (full, incr, _text, stats) = rebuild_and_refresh(&g, &d, PagerankMode::Recompute);
        assert!(stats.postings_kept > 0 && stats.postings_added > 0);

        let img_full = crate::compress::CompressedPathIndexes::compress(&full);
        let img_incr = crate::compress::CompressedPathIndexes::compress(&incr);
        assert_eq!(
            img_full.encode(),
            img_incr.encode(),
            "refresh must produce an index whose compressed image is \
             byte-identical to a full rebuild's"
        );
        // And the selector really exercised more than one codec here.
        let mix = img_incr.encoding_mix().expect("walkable image");
        assert!(mix.total() > 0);
    }

    #[test]
    fn chained_deltas_stay_consistent() {
        // Apply three deltas in sequence, refreshing after each; final
        // index must equal a from-scratch build of the final graph.
        let cfg = BuildConfig {
            d: 3,
            threads: 1,
            shards: 1,
        };
        let mut g = base_graph();
        let mut text = TextIndex::build(&g, SynonymTable::new());
        let mut idx = build_indexes(&g, &text, &cfg);

        for step in 0..3 {
            let comp = g.type_by_text("Company").unwrap();
            let dev = g.attr_by_text("Developer").unwrap();
            let mut d = GraphDelta::new(&g);
            let v = d.add_node(comp, &format!("company {step}")).unwrap();
            d.add_edge(NodeId(0), dev, v).unwrap();
            let g2 = d.apply(&g, PagerankMode::Recompute).unwrap();
            let text2 = TextIndex::build(&g2, SynonymTable::new());
            let (idx2, _) = refresh_indexes(&idx, &g, &g2, &text, &text2, &d.dirty_nodes(), true);
            g = g2;
            text = text2;
            idx = idx2;
        }

        let full = build_indexes(&g, &text, &cfg);
        assert_eq!(canon(&full, &text), canon(&idx, &text));
    }
}
