//! Property test: incremental index refresh is semantically identical to a
//! full rebuild, for arbitrary small graphs and arbitrary mutation batches.

use proptest::prelude::*;

use patternkb_graph::mutate::{GraphDelta, PagerankMode};
use patternkb_graph::{GraphBuilder, KnowledgeGraph, NodeId};
use patternkb_index::{build_indexes, refresh_indexes, BuildConfig, PathIndexes};
use patternkb_text::{SynonymTable, TextIndex};

/// A word pool small enough that keywords collide across nodes, exercising
/// multi-root posting lists.
const WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "omega", "kernel", "driver", "engine",
];
const TYPES: &[&str] = &["Device", "Vendor", "Protocol"];
const ATTRS: &[&str] = &["maker", "speaks", "replaces"];

#[derive(Clone, Debug)]
struct RandomGraph {
    nodes: Vec<(usize, usize)>,        // (type idx, word idx)
    edges: Vec<(usize, usize, usize)>, // (source, attr idx, target)
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (2usize..10).prop_flat_map(|n| {
        let nodes = proptest::collection::vec((0..TYPES.len(), 0..WORDS.len()), n);
        let edges = proptest::collection::vec((0..n, 0..ATTRS.len(), 0..n), 0..(2 * n));
        (nodes, edges).prop_map(|(nodes, edges)| RandomGraph { nodes, edges })
    })
}

#[derive(Clone, Debug)]
enum Op {
    /// Add a node of TYPES[t] with text WORDS[w].
    AddNode { t: usize, w: usize },
    /// Add edge between node indices (mod current node count).
    AddEdge { s: usize, a: usize, t: usize },
    /// Remove the i-th existing edge (mod edge count), if any.
    RemoveEdge { i: usize },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..TYPES.len(), 0..WORDS.len()).prop_map(|(t, w)| Op::AddNode { t, w }),
            (0..64usize, 0..ATTRS.len(), 0..64usize).prop_map(|(s, a, t)| Op::AddEdge { s, a, t }),
            (0..64usize).prop_map(|i| Op::RemoveEdge { i }),
        ],
        1..8,
    )
}

fn build_graph(rg: &RandomGraph) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let types: Vec<_> = TYPES.iter().map(|t| b.add_type(t)).collect();
    let attrs: Vec<_> = ATTRS.iter().map(|a| b.add_attr(a)).collect();
    let nodes: Vec<_> = rg
        .nodes
        .iter()
        .map(|&(t, w)| b.add_node(types[t], WORDS[w]))
        .collect();
    for &(s, a, t) in &rg.edges {
        b.add_edge(nodes[s], attrs[a], nodes[t]);
    }
    b.build()
}

/// Apply the op list as a delta, skipping ops the validator rejects (the
/// point here is index equivalence, not delta validation, which has its own
/// unit tests).
fn build_delta(g: &KnowledgeGraph, ops: &[Op]) -> GraphDelta {
    let mut d = GraphDelta::new(g);
    let mut nodes = g.num_nodes();
    let existing: Vec<_> = g.edges().collect();
    let mut removed: Vec<(NodeId, patternkb_graph::AttrId, NodeId)> = Vec::new();
    let mut added: Vec<(NodeId, patternkb_graph::AttrId, NodeId)> = Vec::new();
    for op in ops {
        match *op {
            Op::AddNode { t, w } => {
                let tid = g.type_by_text(TYPES[t]).unwrap();
                d.add_node(tid, WORDS[w]).unwrap();
                nodes += 1;
            }
            Op::AddEdge { s, a, t } => {
                let s = NodeId((s % nodes) as u32);
                let t = NodeId((t % nodes) as u32);
                let a = g.attr_by_text(ATTRS[a]).unwrap();
                let survives = g.has_edge(s, a, t) && !removed.contains(&(s, a, t));
                if !survives && !added.contains(&(s, a, t)) {
                    d.add_edge(s, a, t).unwrap();
                    added.push((s, a, t));
                }
            }
            Op::RemoveEdge { i } => {
                if existing.is_empty() {
                    continue;
                }
                let e = existing[i % existing.len()];
                if !removed.contains(&(e.source, e.attr, e.target))
                    && !added.contains(&(e.source, e.attr, e.target))
                {
                    d.remove_edge(e.source, e.attr, e.target).unwrap();
                    removed.push((e.source, e.attr, e.target));
                }
            }
        }
    }
    d
}

/// Project an index to a canonical, id-free form.
fn canon(
    idx: &PathIndexes,
    text: &TextIndex,
) -> Vec<(String, Vec<(Vec<u32>, Vec<NodeId>, bool, u64, u64)>)> {
    let mut acc: std::collections::BTreeMap<String, Vec<(Vec<u32>, Vec<NodeId>, bool, u64, u64)>> =
        std::collections::BTreeMap::new();
    for shard in idx.shards() {
        for (w, widx) in shard.iter_words() {
            let rows = acc.entry(text.vocab().resolve(w).to_string()).or_default();
            rows.extend(widx.postings_pattern_first().iter().map(|p| {
                (
                    idx.patterns().key(p.pattern).to_vec(),
                    widx.nodes_of(p).to_vec(),
                    p.edge_terminal,
                    p.pagerank.to_bits(),
                    p.sim.to_bits(),
                )
            }));
        }
    }
    acc.into_iter()
        .map(|(word, mut rows)| {
            rows.sort();
            (word, rows)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_refresh_equals_full_rebuild(
        rg in graph_strategy(),
        ops in ops_strategy(),
        d in 2usize..5,
        shards in 1usize..4,
        recompute in proptest::bool::ANY,
    ) {
        let cfg = BuildConfig { d, threads: 1, shards };
        let g = build_graph(&rg);
        let old_text = TextIndex::build(&g, SynonymTable::new());
        let old_idx = build_indexes(&g, &old_text, &cfg);

        let delta = build_delta(&g, &ops);
        let mode = if recompute { PagerankMode::Recompute } else { PagerankMode::Frozen };
        let g2 = delta.apply(&g, mode).expect("filtered delta always applies");
        let new_text = TextIndex::build(&g2, SynonymTable::new());

        let full = build_indexes(&g2, &new_text, &cfg);
        let (incr, _) = refresh_indexes(
            &old_idx, &g, &g2, &old_text, &new_text, &delta.dirty_nodes(), recompute,
        );
        prop_assert_eq!(canon(&full, &new_text), canon(&incr, &new_text));
    }
}
