//! Index correctness against a brute-force oracle.
//!
//! For random Wiki-like graphs, the set of `(word, pattern, root, path)`
//! postings produced by Algorithm 1 must equal an independent brute-force
//! enumeration straight off the graph, and the two sort orders (Figure
//! 4(a) and 4(b)) must expose exactly the same postings through their
//! access methods.

use patternkb_datagen::wiki::{wiki, WikiConfig};
use patternkb_graph::ids::Id;
use patternkb_graph::{traversal, KnowledgeGraph, NodeId, WordId};
use patternkb_index::{build_indexes, BuildConfig, PathIndexes};
use patternkb_text::{SynonymTable, TextIndex};
use std::collections::BTreeSet;

/// Canonical form of one posting: (word, encoded pattern, root, node
/// sequence, edge-terminal flag).
type Canon = (u32, Vec<u32>, u32, Vec<u32>, bool);

/// Brute-force enumeration of every expected posting.
fn brute_force(g: &KnowledgeGraph, text: &TextIndex, d: usize) -> BTreeSet<Canon> {
    let mut out = BTreeSet::new();
    for root in g.nodes() {
        traversal::for_each_path(g, root, d, |nodes, attrs| {
            let l = nodes.len();
            let t = *nodes.last().unwrap();
            let t_type = g.node_type(t);
            // Node-terminal postings.
            let mut words: Vec<WordId> = text
                .node_tokens(t)
                .iter()
                .chain(text.type_tokens(t_type))
                .copied()
                .collect();
            words.sort_unstable();
            words.dedup();
            let mut key = vec![(l as u32) << 1];
            for j in 0..l {
                key.push(g.node_type(nodes[j]).as_u32());
                if j < attrs.len() {
                    key.push(attrs[j].as_u32());
                }
            }
            for &w in &words {
                out.insert((
                    w.as_u32(),
                    key.clone(),
                    root.as_u32(),
                    nodes.iter().map(|n| n.as_u32()).collect(),
                    false,
                ));
            }
            // Edge-terminal postings.
            if l < d {
                for (attr, target) in g.out_edges(t) {
                    if nodes.contains(&target) {
                        continue;
                    }
                    let attr_words = text.attr_tokens(attr);
                    if attr_words.is_empty() {
                        continue;
                    }
                    let mut ekey = vec![((l as u32) << 1) | 1];
                    for j in 0..l {
                        ekey.push(g.node_type(nodes[j]).as_u32());
                        if j < attrs.len() {
                            ekey.push(attrs[j].as_u32());
                        }
                    }
                    ekey.push(attr.as_u32());
                    let mut enodes: Vec<u32> = nodes.iter().map(|n| n.as_u32()).collect();
                    enodes.push(target.as_u32());
                    for &w in attr_words {
                        out.insert((
                            w.as_u32(),
                            ekey.clone(),
                            root.as_u32(),
                            enodes.clone(),
                            true,
                        ));
                    }
                }
            }
        });
    }
    out
}

/// Extract the canonical posting set through the pattern-first order.
fn via_pattern_first(idx: &PathIndexes) -> BTreeSet<Canon> {
    let mut out = BTreeSet::new();
    for (w, widx) in idx.shards().iter().flat_map(|s| s.iter_words()) {
        for pat in widx.patterns() {
            let key = idx.patterns().key(pat).to_vec();
            for &r in widx.roots_of_pattern(pat) {
                for p in widx.paths_of_pattern_root(pat, NodeId(r)) {
                    out.insert((
                        w.as_u32(),
                        key.clone(),
                        r,
                        widx.nodes_of(p).iter().map(|n| n.as_u32()).collect(),
                        p.edge_terminal,
                    ));
                }
            }
        }
    }
    out
}

/// Extract the canonical posting set through the root-first order.
fn via_root_first(idx: &PathIndexes) -> BTreeSet<Canon> {
    let mut out = BTreeSet::new();
    for (w, widx) in idx.shards().iter().flat_map(|s| s.iter_words()) {
        for &r in widx.roots() {
            for (pat, paths) in widx.root_runs(NodeId(r)) {
                let key = idx.patterns().key(pat).to_vec();
                for p in paths {
                    out.insert((
                        w.as_u32(),
                        key.clone(),
                        r,
                        widx.nodes_of(p).iter().map(|n| n.as_u32()).collect(),
                        p.edge_terminal,
                    ));
                }
            }
        }
    }
    out
}

fn check(seed: u64, d: usize) {
    // Exercise a different shard count per seed; posting sets must agree
    // regardless of the partition.
    let g = wiki(&WikiConfig {
        entities: 150,
        types: 6,
        attrs_per_type: 3,
        attr_pool: 6,
        vocab: 40,
        avg_degree: 3.0,
        value_pool: 15,
        seed,
        ..WikiConfig::default()
    });
    let text = TextIndex::build(&g, SynonymTable::new());
    let shards = 1 + (seed as usize % 3);
    let idx = build_indexes(
        &g,
        &text,
        &BuildConfig {
            d,
            threads: 2,
            shards,
        },
    );
    let expected = brute_force(&g, &text, d);
    let pf = via_pattern_first(&idx);
    let rf = via_root_first(&idx);
    assert_eq!(pf.len(), idx.num_postings(), "seed {seed} d {d}");
    assert_eq!(
        pf, expected,
        "pattern-first vs brute force, seed {seed} d {d}"
    );
    assert_eq!(rf, expected, "root-first vs brute force, seed {seed} d {d}");
}

#[test]
fn indexes_match_brute_force_d2() {
    for seed in 0..4 {
        check(seed, 2);
    }
}

#[test]
fn indexes_match_brute_force_d3() {
    for seed in 0..4 {
        check(seed, 3);
    }
}

#[test]
fn indexes_match_brute_force_d4() {
    check(7, 4);
}

#[test]
fn num_paths_of_root_is_consistent() {
    let g = wiki(&WikiConfig::tiny(5));
    let text = TextIndex::build(&g, SynonymTable::new());
    let idx = build_indexes(
        &g,
        &text,
        &BuildConfig {
            d: 3,
            threads: 0,
            shards: 1,
        },
    );
    for (_, widx) in idx.shards().iter().flat_map(|s| s.iter_words()) {
        for &r in widx.roots() {
            let counted = widx.paths_of_root(NodeId(r)).len();
            assert_eq!(widx.num_paths_of_root(NodeId(r)), counted);
            let via_runs: usize = widx.root_runs(NodeId(r)).map(|(_, ps)| ps.len()).sum();
            assert_eq!(via_runs, counted);
        }
    }
}

#[test]
fn snapshot_of_real_index_roundtrips() {
    let g = wiki(&WikiConfig::tiny(11));
    let text = TextIndex::build(&g, SynonymTable::new());
    let idx = build_indexes(
        &g,
        &text,
        &BuildConfig {
            d: 3,
            threads: 0,
            shards: 1,
        },
    );
    let decoded = patternkb_index::snapshot::decode(&patternkb_index::snapshot::encode(&idx))
        .expect("decode");
    assert_eq!(via_pattern_first(&idx), via_pattern_first(&decoded));
    assert_eq!(via_root_first(&idx), via_root_first(&decoded));
}
