//! Wall-clock helpers and the paper's min / geometric-mean / max error
//! bars ("we report the min / (geometric) average / max execution time in
//! the form of error bars", §5).

use std::time::{Duration, Instant};

/// Run `f`, returning its result and the elapsed wall-clock time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Min / geometric-mean / max summary of a set of durations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorBar {
    /// Fastest observation (ms).
    pub min_ms: f64,
    /// Geometric mean (ms) — the paper's "average".
    pub geo_ms: f64,
    /// Slowest observation (ms).
    pub max_ms: f64,
    /// Number of observations.
    pub n: usize,
}

impl ErrorBar {
    /// Summarize durations; `None` for an empty input.
    pub fn of(durations: &[Duration]) -> Option<ErrorBar> {
        if durations.is_empty() {
            return None;
        }
        let ms: Vec<f64> = durations.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ms.iter().copied().fold(0.0f64, f64::max);
        // Geometric mean over max(x, tiny) to tolerate sub-microsecond zeros.
        let geo = (ms.iter().map(|&x| x.max(1e-6).ln()).sum::<f64>() / ms.len() as f64).exp();
        Some(ErrorBar {
            min_ms: min,
            geo_ms: geo,
            max_ms: max,
            n: ms.len(),
        })
    }
}

impl std::fmt::Display for ErrorBar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} / {:.2} / {:.2} ms (n={})",
            self.min_ms, self.geo_ms, self.max_ms, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value() {
        let (v, d) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0); // non-negative by type
    }

    #[test]
    fn error_bar_math() {
        let ds = [Duration::from_millis(1), Duration::from_millis(100)];
        let eb = ErrorBar::of(&ds).unwrap();
        assert_eq!(eb.min_ms, 1.0);
        assert_eq!(eb.max_ms, 100.0);
        // geo mean of 1 and 100 is 10.
        assert!((eb.geo_ms - 10.0).abs() < 1e-9);
        assert_eq!(eb.n, 2);
    }

    #[test]
    fn empty_is_none() {
        assert!(ErrorBar::of(&[]).is_none());
    }

    #[test]
    fn display() {
        let eb = ErrorBar::of(&[Duration::from_millis(5)]).unwrap();
        assert!(format!("{eb}").contains("n=1"));
    }
}
