//! Shared request/response plumbing for the Criterion benches and the
//! experiments binary: engine construction through [`EngineBuilder`] and
//! one-call execution of a pre-parsed query under an explicit algorithm.

use patternkb_graph::KnowledgeGraph;
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{
    AlgorithmChoice, EngineBuilder, Query, SearchEngine, SearchRequest, SearchResponse,
};
use patternkb_text::SynonymTable;

/// Build a bench engine: English synonyms, height `d`, all cores, one
/// index shard per core.
pub fn engine(g: KnowledgeGraph, d: usize) -> SearchEngine {
    EngineBuilder::new()
        .graph(g)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .build()
        .expect("bench d in range")
}

/// [`engine`] with an explicit root-range shard count (the shard-scaling
/// sweep's knob; answers are bit-identical across shard counts).
pub fn engine_sharded(g: KnowledgeGraph, d: usize, shards: usize) -> SearchEngine {
    EngineBuilder::new()
        .graph(g)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .shards(shards)
        .build()
        .expect("bench d in range")
}

/// Build a bench engine with an empty synonym table (adversarial graphs
/// whose tokens must not canonicalize).
pub fn engine_plain(g: KnowledgeGraph, d: usize) -> SearchEngine {
    EngineBuilder::new()
        .graph(g)
        .synonyms(SynonymTable::new())
        .height(d)
        .build()
        .expect("bench d in range")
}

/// Run one pre-parsed query at `k` under an explicit algorithm. Exact
/// (non-sampled) unless `sampling` is given. Table composition is turned
/// off so the Criterion loops time the paper's algorithms, not response
/// rendering.
pub fn respond_algo(
    e: &SearchEngine,
    q: &Query,
    k: usize,
    algo: AlgorithmChoice,
    sampling: Option<SamplingConfig>,
) -> SearchResponse {
    let mut req = SearchRequest::query(q.clone())
        .k(k)
        .algorithm(algo)
        .compose_tables(false);
    if let Some(s) = sampling {
        req = req.sampling(s);
    }
    e.respond(&req).expect("pre-parsed query always responds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{wiki_graph, Scale};

    #[test]
    fn harness_round_trips() {
        let e = engine(wiki_graph(Scale::Small), 2);
        let mut qg = patternkb_datagen::queries::QueryGenerator::new(e.graph(), e.text(), 2, 3);
        let spec = qg.anchored(2).expect("small wiki has queries");
        let q = Query::from_ids(spec.keywords);
        let r = respond_algo(&e, &q, 10, AlgorithmChoice::LinearEnum, None);
        let r2 = respond_algo(&e, &q, 10, AlgorithmChoice::PatternEnum, None);
        assert_eq!(r.patterns.len(), r2.patterns.len());
    }
}
