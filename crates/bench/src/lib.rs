//! # patternkb-bench
//!
//! Harness utilities shared by the Criterion benches and the `experiments`
//! binary that regenerates every table and figure of the paper's §5.

#![warn(missing_docs)]

pub mod buckets;
pub mod datasets;
pub mod harness;
pub mod report;
pub mod timing;

pub use buckets::{bucket_of, Bucketed};
pub use harness::{engine, engine_plain, respond_algo};
pub use report::Report;
pub use timing::{time_it, ErrorBar};
