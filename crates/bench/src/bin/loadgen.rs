//! HTTP load generator for `patternkb-cli serve` — makes throughput
//! under sustained concurrent traffic a *measured* quantity, like the
//! `hotpath` experiment does for single-query latency.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 [--dataset figure1|wiki|imdb]
//!         [--entities N] [--movies N] [--seed N] [--d N]
//!         [--mode closed|open] [--conns N] [--rate R]
//!         [--duration-s S] [--k N] [--zipf-theta F] [--timeout-ms N]
//!         [--write-rate W] [--json PATH]
//!         [--min-ok N] [--max-errors N] [--max-p99-ms F]
//!         [--max-shed N] [--min-429 N]
//!         [--min-writes-ok N] [--max-write-errors N] [--max-write-conflicts N]
//! ```
//!
//! * **Query mix**: the same deterministic generators the server builds
//!   its dataset from ([`patternkb_datagen`]) regenerate the graph
//!   locally (same spec ⇒ same vocabulary), then
//!   [`patternkb_datagen::queries::QueryGenerator`] samples an anchored
//!   query pool and each request draws from it **Zipf-weighted** — hot
//!   queries repeat, exercising the server's result cache like real
//!   traffic does.
//! * **Closed loop** (`--mode closed`, default): `--conns` keep-alive
//!   connections each issue requests back-to-back — measures capacity.
//! * **Open loop** (`--mode open --rate R`): requests are paced at R/s
//!   across the connections regardless of completions — measures latency
//!   at an offered load (queueing shows up instead of hiding in the
//!   closed loop's self-throttling).
//! * **Mixed read/write** (`--write-rate W`): one writer connection
//!   additionally issues `POST /admin/ingest` batches at W/s — entities
//!   typed with the *dataset's own* first entity type and attribute (the
//!   same datagen spec the server built from), so writes grow the live
//!   graph the reads are querying. The report tracks write outcomes and
//!   checks the returned engine version is monotone.
//! * **Report**: one JSON object on stdout (and `--json PATH`):
//!   counts by outcome, throughput, shed rate, p50/p90/p95/p99/max/mean.
//! * **Gates**: the `--min-ok` / `--max-errors` / `--max-p99-ms` /
//!   `--max-shed` / `--min-429` flags turn the run into a CI check
//!   (non-zero exit on violation) — see the `serve-smoke` job.

use patternkb_datagen::queries::QueryGenerator;
use patternkb_datagen::zipf::Zipf;
use patternkb_graph::KnowledgeGraph;
use patternkb_text::{Stemmer, SynonymTable, TextIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let dataset: String = flag(&args, "--dataset").unwrap_or_else(|| "figure1".to_string());
    let seed: u64 = flag(&args, "--seed").unwrap_or(42);
    let d: usize = flag(&args, "--d").unwrap_or(3);
    let mode: String = flag(&args, "--mode").unwrap_or_else(|| "closed".to_string());
    let conns: usize = flag(&args, "--conns").unwrap_or(4).max(1);
    let rate: f64 = flag(&args, "--rate").unwrap_or(100.0);
    let duration_s: f64 = flag(&args, "--duration-s").unwrap_or(10.0);
    let k: usize = flag(&args, "--k").unwrap_or(10);
    let theta: f64 = flag(&args, "--zipf-theta").unwrap_or(0.9);
    let timeout_ms: Option<u64> = flag(&args, "--timeout-ms");
    let write_rate: f64 = flag(&args, "--write-rate").unwrap_or(0.0);
    let json_path: Option<String> = flag(&args, "--json");

    if !matches!(mode.as_str(), "closed" | "open") {
        eprintln!("--mode must be closed or open, got {mode:?}");
        std::process::exit(2);
    }

    // Regenerate the server's dataset locally: same spec, same seed ⇒
    // same vocabulary, so generated surfaces parse on the server.
    let graph = match build_graph(&dataset, &args, seed) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let text = TextIndex::build_with(&graph, SynonymTable::default_english(), Stemmer::Lite);
    let pool = query_pool(&graph, &text, d, seed);
    if pool.is_empty() {
        eprintln!("could not sample any queries from dataset {dataset:?}");
        std::process::exit(2);
    }
    eprintln!(
        "[loadgen] {} queries in pool over {dataset}; mode={mode} conns={conns} duration={duration_s}s",
        pool.len()
    );

    // Pre-render the request bodies once.
    let bodies: Vec<String> = pool
        .iter()
        .map(|q| {
            let text = q.surface.join(" ");
            let timeout = timeout_ms
                .map(|t| format!(",\"timeout_ms\":{t}"))
                .unwrap_or_default();
            format!(
                "{{\"q\":\"{}\",\"k\":{k}{timeout}}}",
                text.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();

    let duration = Duration::from_secs_f64(duration_s);
    let zipf = Zipf::new(bodies.len(), theta);
    let open_interval = if mode == "open" {
        Some(Duration::from_secs_f64(conns as f64 / rate.max(0.001)))
    } else {
        None
    };

    // Mixed read/write mode: the ingest batches type their entities with
    // the dataset's own vocabulary (first entity type / first attribute),
    // so the spec stays the single source of truth for reads and writes.
    let write_spec = if write_rate > 0.0 {
        match ingest_spec(&graph) {
            Some(spec) => Some(spec),
            None => {
                eprintln!(
                    "--write-rate needs a dataset with at least one entity type and attribute"
                );
                std::process::exit(2);
            }
        }
    } else {
        None
    };

    let started = Instant::now();
    let mut tallies: Vec<Tally> = Vec::new();
    let mut writes = WriteTally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..conns {
            let addr = addr.as_str();
            let bodies = &bodies;
            let zipf = &zipf;
            handles.push(scope.spawn(move || {
                run_connection(
                    addr,
                    bodies,
                    zipf,
                    seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    started,
                    duration,
                    open_interval,
                )
            }));
        }
        let writer = write_spec.as_ref().map(|(type_name, attr_name)| {
            let addr = addr.as_str();
            scope.spawn(move || {
                run_writer(addr, type_name, attr_name, write_rate, started, duration)
            })
        });
        for h in handles {
            tallies.push(h.join().expect("connection thread"));
        }
        if let Some(w) = writer {
            writes = w.join().expect("writer thread");
        }
    });
    let elapsed = started.elapsed();

    let mut total = Tally::default();
    for t in &tallies {
        total.merge(t);
    }
    total.latencies_us.sort_unstable();

    let report = render_report(
        &mode,
        conns,
        &dataset,
        rate,
        elapsed,
        bodies.len(),
        &total,
        &writes,
    );
    println!("{report}");
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    // CI gates.
    let mut failures = Vec::new();
    if let Some(min_ok) = flag::<u64>(&args, "--min-ok") {
        if total.ok < min_ok {
            failures.push(format!("ok {} < --min-ok {min_ok}", total.ok));
        }
    }
    if let Some(max_errors) = flag::<u64>(&args, "--max-errors") {
        let errors = total.errors();
        if errors > max_errors {
            failures.push(format!("errors {errors} > --max-errors {max_errors}"));
        }
    }
    if let Some(max_p99) = flag::<f64>(&args, "--max-p99-ms") {
        let p99 = total.percentile_ms(0.99);
        if p99 > max_p99 {
            failures.push(format!("p99 {p99:.1}ms > --max-p99-ms {max_p99}ms"));
        }
    }
    if let Some(max_shed) = flag::<u64>(&args, "--max-shed") {
        let shed = total.shed_429 + total.shed_503;
        if shed > max_shed {
            failures.push(format!("shed {shed} > --max-shed {max_shed}"));
        }
    }
    if let Some(min_429) = flag::<u64>(&args, "--min-429") {
        if total.shed_429 < min_429 {
            failures.push(format!("429s {} < --min-429 {min_429}", total.shed_429));
        }
    }
    if let Some(min_writes_ok) = flag::<u64>(&args, "--min-writes-ok") {
        if writes.ok < min_writes_ok {
            failures.push(format!(
                "writes ok {} < --min-writes-ok {min_writes_ok}",
                writes.ok
            ));
        }
    }
    if let Some(max_write_errors) = flag::<u64>(&args, "--max-write-errors") {
        if writes.errors > max_write_errors {
            failures.push(format!(
                "write errors {} > --max-write-errors {max_write_errors}",
                writes.errors
            ));
        }
    }
    if let Some(max_conflicts) = flag::<u64>(&args, "--max-write-conflicts") {
        if writes.conflicts > max_conflicts {
            failures.push(format!(
                "write conflicts {} > --max-write-conflicts {max_conflicts}",
                writes.conflicts
            ));
        }
    }
    if writes.sent > 0 && !writes.version_monotone {
        // Not flag-gated: a version that ever went backwards is a
        // correctness bug, never an acceptable load outcome.
        failures.push("engine version went backwards across ingests".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[loadgen] GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn build_graph(dataset: &str, args: &[String], seed: u64) -> Result<KnowledgeGraph, String> {
    match dataset {
        "figure1" => Ok(patternkb_datagen::figure1().0),
        "wiki" => {
            let entities = flag(args, "--entities").unwrap_or(10_000);
            let cfg = patternkb_datagen::WikiConfig {
                entities,
                seed,
                ..patternkb_datagen::WikiConfig::default()
            };
            Ok(patternkb_datagen::wiki::wiki(&cfg))
        }
        "imdb" => {
            let movies = flag(args, "--movies").unwrap_or(5_000);
            let cfg = patternkb_datagen::ImdbConfig { movies, seed };
            Ok(patternkb_datagen::imdb::imdb(&cfg))
        }
        other => Err(format!(
            "unknown dataset {other:?} (figure1|wiki|imdb; must match the server's)"
        )),
    }
}

/// Anchored queries (answerable by construction), 1–4 keywords.
fn query_pool(
    g: &KnowledgeGraph,
    text: &TextIndex,
    d: usize,
    seed: u64,
) -> Vec<patternkb_datagen::queries::QuerySpec> {
    let mut qg = QueryGenerator::new(g, text, d, seed);
    qg.batch(20, 4)
}

#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    shed_429: u64,
    shed_503: u64,
    http_4xx: u64,
    http_5xx: u64,
    io_errors: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.shed_429 += other.shed_429;
        self.shed_503 += other.shed_503;
        self.http_4xx += other.http_4xx;
        self.http_5xx += other.http_5xx;
        self.io_errors += other.io_errors;
        self.latencies_us.extend_from_slice(&other.latencies_us);
    }

    /// Hard failures: transport errors plus unexpected HTTP statuses.
    /// 429/503 are *shedding* (correct overload behavior), not errors.
    fn errors(&self) -> u64 {
        self.io_errors + self.http_4xx + self.http_5xx
    }

    /// Latency percentile over successful requests, in ms (0 when none).
    fn percentile_ms(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_us.len() - 1) as f64 * q).round() as usize;
        self.latencies_us[idx] as f64 / 1e3
    }
}

/// The (entity type, attribute) the writer mints ingest batches with:
/// the dataset's first non-text entity type and first attribute.
fn ingest_spec(g: &KnowledgeGraph) -> Option<(String, String)> {
    use patternkb_graph::{AttrId, TypeId};
    if g.num_attrs() == 0 {
        return None;
    }
    let t = (0..g.num_types() as u32)
        .map(TypeId)
        .find(|&t| !g.type_text(t).is_empty())?;
    Some((
        g.type_text(t).to_string(),
        g.attr_text(AttrId(0)).to_string(),
    ))
}

fn jstr(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[derive(Default)]
struct WriteTally {
    sent: u64,
    ok: u64,
    conflicts: u64,
    errors: u64,
    io_errors: u64,
    last_version: u64,
    /// Highest engine version the server ever acknowledged with a 200.
    /// Against a durable server this is the recovery floor: after a crash
    /// and reboot, `patternkb_engine_version` must be ≥ this value (an
    /// acked write is never lost).
    acked_version_hwm: u64,
    version_monotone: bool,
}

/// One keep-alive writer connection issuing `POST /admin/ingest` batches
/// at `rate`/s: a fresh entity plus one text attribute per batch. Batch
/// names are referenced batch-locally, so repeated runs against one
/// server never collide on ambiguous names.
fn run_writer(
    addr: &str,
    type_name: &str,
    attr_name: &str,
    rate: f64,
    started: Instant,
    duration: Duration,
) -> WriteTally {
    let mut tally = WriteTally {
        version_monotone: true,
        ..WriteTally::default()
    };
    let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
    let mut client: Option<Client> = None;
    let mut next_send = Instant::now();
    let mut seq = 0u64;
    // Per-process nonce so consecutive CI legs against one server mint
    // distinct names (names only need batch-local uniqueness, but
    // distinct names keep /search assertions on fresh facts readable).
    let nonce = std::process::id();
    while started.elapsed() < duration {
        let now = Instant::now();
        if now < next_send {
            std::thread::sleep(next_send - now);
        }
        next_send += interval;
        let name = format!("loadgen vendor {nonce} {seq}");
        let body = format!(
            "{{\"mutations\":[{{\"op\":\"add_node\",\"type\":{},\"name\":{}}},\
             {{\"op\":\"add_text_edge\",\"source\":{},\"attr\":{},\"value\":{}}}]}}",
            jstr(type_name),
            jstr(&name),
            jstr(&name),
            jstr(attr_name),
            jstr(&format!("ingestmark {seq}"))
        );
        seq += 1;
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    tally.io_errors += 1;
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            },
        };
        tally.sent += 1;
        match c.post("/admin/ingest", &body) {
            Ok((200, reply)) => {
                tally.ok += 1;
                if let Some(v) = extract_version(&reply) {
                    if v < tally.last_version {
                        tally.version_monotone = false;
                    }
                    tally.last_version = v;
                    tally.acked_version_hwm = tally.acked_version_hwm.max(v);
                }
            }
            // 400/409 replies keep the connection alive (they are
            // client-fixable outcomes, like search 4xxs); anything else
            // closes it server-side.
            Ok((409, _)) => tally.conflicts += 1,
            Ok((400, _)) => tally.errors += 1,
            Ok(_) => {
                tally.errors += 1;
                client = None;
            }
            Err(_) => {
                tally.errors += 1;
                client = None;
            }
        }
    }
    tally
}

/// Pull `"version":N` out of an ingest reply without a JSON parser.
fn extract_version(body: &str) -> Option<u64> {
    let rest = &body[body.find("\"version\":")? + "\"version\":".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn run_connection(
    addr: &str,
    bodies: &[String],
    zipf: &Zipf,
    seed: u64,
    started: Instant,
    duration: Duration,
    open_interval: Option<Duration>,
) -> Tally {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tally = Tally::default();
    let mut client: Option<Client> = None;
    let mut next_send = Instant::now();
    while started.elapsed() < duration {
        if let Some(interval) = open_interval {
            // Open loop: fixed arrival schedule, independent of service
            // times (late arrivals are sent immediately, back to back).
            let now = Instant::now();
            if now < next_send {
                std::thread::sleep(next_send - now);
            }
            next_send += interval;
        }
        let body = &bodies[zipf.sample(&mut rng) % bodies.len()];
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    // No request went on the wire: an io_error but not a
                    // `sent` (keeps shed_rate's denominator honest).
                    tally.io_errors += 1;
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            },
        };
        tally.sent += 1;
        let t0 = Instant::now();
        match c.post_search(body) {
            Ok(status) => {
                match status {
                    200 => {
                        tally.ok += 1;
                        tally.latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    429 => tally.shed_429 += 1,
                    503 => tally.shed_503 += 1,
                    s if (400..500).contains(&s) => tally.http_4xx += 1,
                    _ => tally.http_5xx += 1,
                }
                // Sheds answer with connection handling intact; errors
                // close the connection server-side.
                if status != 200 && status != 429 && status != 503 {
                    client = None;
                }
            }
            Err(_) => {
                tally.io_errors += 1;
                client = None;
            }
        }
    }
    tally
}

/// Minimal keep-alive HTTP client for `POST /search`.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    fn post_search(&mut self, body: &str) -> std::io::Result<u16> {
        // The reply body is discarded without the copy `post` pays —
        // this is the measured hot loop.
        self.request("/search", body, false)
            .map(|(status, _)| status)
    }

    fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request(path, body, true)
            .map(|(status, reply)| (status, reply.unwrap_or_default()))
    }

    fn request(
        &mut self,
        path: &str,
        body: &str,
        capture_reply: bool,
    ) -> std::io::Result<(u16, Option<String>)> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        // Read head.
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head_text = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status: u16 = head_text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let content_length: usize = head_text
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                if k.eq_ignore_ascii_case("content-length") {
                    v.trim().parse().ok()
                } else {
                    None
                }
            })
            .unwrap_or(0);
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let reply = capture_reply.then(|| {
            String::from_utf8_lossy(&self.buf[body_start..body_start + content_length]).to_string()
        });
        self.buf.drain(..body_start + content_length);
        Ok((status, reply))
    }
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    mode: &str,
    conns: usize,
    dataset: &str,
    rate: f64,
    elapsed: Duration,
    pool: usize,
    t: &Tally,
    w: &WriteTally,
) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let shed = t.shed_429 + t.shed_503;
    let mean_ms = if t.latencies_us.is_empty() {
        0.0
    } else {
        t.latencies_us.iter().sum::<u64>() as f64 / t.latencies_us.len() as f64 / 1e3
    };
    let rate_field = if mode == "open" {
        format!("{rate}")
    } else {
        "null".to_string()
    };
    format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"mode\": \"{mode}\",\n  \"dataset\": \"{dataset}\",\n  \
         \"conns\": {conns},\n  \"offered_rate_rps\": {rate_field},\n  \"duration_s\": {secs:.3},\n  \
         \"queries_in_pool\": {pool},\n  \"sent\": {sent},\n  \"ok\": {ok},\n  \"shed_429\": {s429},\n  \
         \"shed_503\": {s503},\n  \"http_4xx\": {e4},\n  \"http_5xx\": {e5},\n  \"io_errors\": {io},\n  \
         \"throughput_rps\": {rps:.2},\n  \"shed_rate\": {shed_rate:.4},\n  \"writes\": {{\n    \
         \"sent\": {wsent},\n    \"ok\": {wok},\n    \"conflicts\": {wconf},\n    \
         \"errors\": {werr},\n    \"io_errors\": {wio},\n    \"last_version\": {wver},\n    \
         \"acked_version_hwm\": {whwm},\n    \
         \"version_monotone\": {wmono}\n  }},\n  \"latency_ms\": {{\n    \
         \"mean\": {mean:.3},\n    \"p50\": {p50:.3},\n    \"p90\": {p90:.3},\n    \"p95\": {p95:.3},\n    \
         \"p99\": {p99:.3},\n    \"max\": {max:.3}\n  }}\n}}",
        wsent = w.sent,
        wok = w.ok,
        wconf = w.conflicts,
        werr = w.errors,
        wio = w.io_errors,
        wver = w.last_version,
        whwm = w.acked_version_hwm,
        wmono = if w.sent == 0 || w.version_monotone {
            "true"
        } else {
            "false"
        },
        sent = t.sent,
        ok = t.ok,
        s429 = t.shed_429,
        s503 = t.shed_503,
        e4 = t.http_4xx,
        e5 = t.http_5xx,
        io = t.io_errors,
        rps = t.ok as f64 / secs,
        shed_rate = if t.sent == 0 {
            0.0
        } else {
            shed as f64 / t.sent as f64
        },
        mean = mean_ms,
        p50 = t.percentile_ms(0.50),
        p90 = t.percentile_ms(0.90),
        p95 = t.percentile_ms(0.95),
        p99 = t.percentile_ms(0.99),
        max = t.percentile_ms(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_merge() {
        let mut a = Tally {
            sent: 2,
            ok: 2,
            latencies_us: vec![1000, 2000],
            ..Tally::default()
        };
        let b = Tally {
            sent: 2,
            ok: 1,
            shed_429: 1,
            latencies_us: vec![3000],
            ..Tally::default()
        };
        a.merge(&b);
        a.latencies_us.sort_unstable();
        assert_eq!(a.sent, 4);
        assert_eq!(a.ok, 3);
        assert_eq!(a.shed_429, 1);
        assert_eq!(a.percentile_ms(0.5), 2.0);
        assert_eq!(a.percentile_ms(1.0), 3.0);
        assert_eq!(a.errors(), 0);
    }

    #[test]
    fn report_is_valid_jsonish() {
        let t = Tally {
            sent: 10,
            ok: 8,
            shed_429: 2,
            latencies_us: vec![500, 1000, 1500],
            ..Tally::default()
        };
        let w = WriteTally {
            sent: 5,
            ok: 4,
            conflicts: 1,
            last_version: 4,
            acked_version_hwm: 4,
            version_monotone: true,
            ..WriteTally::default()
        };
        let r = render_report(
            "closed",
            4,
            "figure1",
            0.0,
            Duration::from_secs(2),
            30,
            &t,
            &w,
        );
        assert!(r.contains("\"ok\": 8"));
        assert!(r.contains("\"shed_429\": 2"));
        assert!(r.contains("\"shed_rate\": 0.2000"));
        assert!(r.contains("\"p99\": 1.500"));
        assert!(r.contains("\"last_version\": 4"));
        assert!(r.contains("\"acked_version_hwm\": 4"));
        assert!(r.contains("\"version_monotone\": true"));
        // Balanced braces (hand-rolled JSON sanity).
        assert_eq!(
            r.matches('{').count(),
            r.matches('}').count(),
            "unbalanced: {r}"
        );
    }

    #[test]
    fn figure1_pool_is_nonempty_and_parsable() {
        let g = patternkb_datagen::figure1().0;
        let text = TextIndex::build_with(&g, SynonymTable::default_english(), Stemmer::Lite);
        let pool = query_pool(&g, &text, 3, 42);
        assert!(!pool.is_empty());
        for q in &pool {
            assert!(!q.surface.is_empty());
        }
    }

    #[test]
    fn graph_specs() {
        assert!(build_graph("figure1", &[], 42).is_ok());
        assert!(build_graph("venus", &[], 42).is_err());
    }

    #[test]
    fn ingest_spec_picks_dataset_vocabulary() {
        let g = patternkb_datagen::figure1().0;
        let (type_name, attr_name) = ingest_spec(&g).unwrap();
        assert!(!type_name.is_empty(), "TEXT_TYPE must be skipped");
        assert!(g.type_by_text(&type_name).is_some());
        assert!(g.attr_by_text(&attr_name).is_some());
    }

    #[test]
    fn version_extraction_and_escaping() {
        assert_eq!(
            extract_version(r#"{"ok":true,"version":17,"affected_roots":3}"#),
            Some(17)
        );
        assert_eq!(extract_version(r#"{"ok":true}"#), None);
        assert_eq!(jstr(r#"a "b" \c"#), r#""a \"b\" \\c""#);
    }
}
