//! Regenerate every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! experiments [--scale small|full] [--shards N] [--json PATH]
//!             [--check BASELINE.json]
//!             [fig6 fig7 fig8 fig9 fig10 expk fig11 fig12 fig13 fig16
//!              case worstcase smoke hotpath coldboot | all]
//! ```
//!
//! Each experiment prints a paper-style table; `all` runs everything in
//! figure order. `--shards N` partitions every engine's index into N
//! root-range shards (0 = one per core; answers are identical, only
//! latency moves). `--json PATH` additionally writes the per-algorithm
//! timings collected by the timed experiments as machine-readable JSON —
//! the `smoke` experiment exists for exactly that: a fast per-algorithm
//! sweep CI runs as a `shards = {1, 4}` matrix and uploads as the
//! benchmark-trajectory artifact. Absolute times differ from the paper's
//! C#/Xeon setup — the reproduced quantities are the *shapes*: who wins,
//! scaling slopes, and the sampling trade-off (see EXPERIMENTS.md).

use patternkb_bench::datasets::{imdb_graph, wiki_graph, Scale};
use patternkb_bench::{bucket_of, ErrorBar, Report};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_graph::{subgraph, KnowledgeGraph};
use patternkb_index::{build_indexes, BuildConfig, IndexStats};
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{
    AlgorithmChoice, EngineBuilder, Query, SearchConfig, SearchEngine, SearchRequest,
    SearchResponse,
};
use patternkb_text::{SynonymTable, TextIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Root-range shard count applied to every engine this process builds
/// (`--shards`; 0 = available parallelism). A process-wide knob so the
/// dozens of `engine_for` call sites stay untouched.
static SHARDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// One machine-readable timing record emitted into the `--json` file.
struct JsonTiming {
    experiment: &'static str,
    dataset: String,
    algorithm: String,
    queries: usize,
    total_ms: f64,
    geo_ms: f64,
}

/// Calibration time (ms) of a fixed integer workload, measured once per
/// process by the `hotpath` experiment. The regression gate divides every
/// tracked metric by it, so baselines recorded on one machine stay
/// meaningful on another (both metric and calibration scale with the
/// host's single-core speed). Stored as `f64` bits; 0 = not measured.
static CALIBRATION_MS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Time a fixed xorshift workload — the machine-speed yardstick.
fn calibrate() -> f64 {
    let t0 = Instant::now();
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut acc = 0u64;
    for _ in 0..40_000_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    std::hint::black_box(acc);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    CALIBRATION_MS.store(ms.to_bits(), std::sync::atomic::Ordering::Relaxed);
    ms
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut picks: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {
                check_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--check takes a committed baseline JSON path");
                    std::process::exit(2);
                }));
            }
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use small|full");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                let v = it.next().unwrap_or_default();
                let shards: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("--shards takes an integer (0 = one per core), got {v:?}");
                    std::process::exit(2);
                });
                SHARDS.store(shards, std::sync::atomic::Ordering::Relaxed);
            }
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json takes an output path");
                    std::process::exit(2);
                }));
            }
            other => picks.push(other.to_string()),
        }
    }
    if picks.is_empty() || picks.iter().any(|p| p == "all") {
        picks = [
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "expk",
            "fig11",
            "fig12",
            "fig13",
            "fig16",
            "case",
            "worstcase",
            "ablation",
            "smoke",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut report = Report::new();
    let mut timings: Vec<JsonTiming> = Vec::new();
    report.line(&format!(
        "patternkb experiments — scale {scale:?}, shards {}",
        match SHARDS.load(std::sync::atomic::Ordering::Relaxed) {
            0 => "auto".to_string(),
            n => n.to_string(),
        }
    ));
    for pick in &picks {
        match pick.as_str() {
            "fig6" => fig6(&mut report, scale),
            "fig7" => fig7(&mut report, scale),
            "fig8" => fig8(&mut report, scale),
            "fig9" => fig9(&mut report, scale),
            "fig10" => fig10(&mut report, scale),
            "expk" => expk(&mut report, scale),
            "fig11" => fig11(&mut report, scale),
            "fig12" => fig12(&mut report, scale),
            "fig13" => fig13(&mut report, scale),
            "fig16" => fig16(&mut report, scale),
            "case" => case_study(&mut report, scale),
            "worstcase" => worst_case(&mut report),
            "ablation" => ablation(&mut report, scale),
            "smoke" => smoke(&mut report, scale, &mut timings),
            "hotpath" => hotpath(&mut report, scale, &mut timings),
            "coldboot" => coldboot(&mut report, scale, &mut timings),
            other => eprintln!("unknown experiment {other:?}"),
        }
    }
    report.print();

    if let Some(path) = json_path {
        let json = render_json(scale, &timings);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} timing record(s) to {path}", timings.len());
    }
    if let Some(path) = check_path {
        check_regression(&path, &timings);
    }
}

/// The bench-regression gate: compare this run's `hotpath` metrics against
/// a committed baseline JSON and fail the process when any tracked metric
/// regresses more than [`REGRESSION_TOLERANCE`]. Both sides are
/// normalized by their run's `calibration_ms`, so a baseline recorded on
/// a faster or slower machine still gates meaningfully.
const REGRESSION_TOLERANCE: f64 = 1.25;

fn check_regression(baseline_path: &str, timings: &[JsonTiming]) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    // Take the top-level calibration only — the committed baseline may
    // carry a historical `pre_change` section with its own calibration.
    let head = text.split("\"pre_change\"").next().unwrap_or(&text);
    // A baseline with `"shards": 0` predates the resolved-count fix (the
    // raw `--shards` sentinel leaked into the report); refuse it so stale
    // baselines get regenerated rather than silently trusted.
    let base_shards = json_number(head, "shards").unwrap_or(0.0);
    if base_shards <= 0.0 {
        eprintln!("baseline {baseline_path} records shards = {base_shards}; regenerate it (the report must carry the resolved shard count)");
        std::process::exit(1);
    }
    let base_cal = json_number(head, "calibration_ms").unwrap_or(0.0);
    let cur_cal = f64::from_bits(CALIBRATION_MS.load(std::sync::atomic::Ordering::Relaxed));
    if base_cal <= 0.0 || cur_cal <= 0.0 {
        eprintln!("regression check needs calibration_ms in both runs (did you run `hotpath`?)");
        std::process::exit(1);
    }
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for t in timings.iter().filter(|t| t.experiment == "hotpath") {
        let Some(base_geo) = baseline_metric(&text, &t.dataset, &t.algorithm) else {
            eprintln!(
                "baseline has no record for {}/{} — skipping (new metric?)",
                t.dataset, t.algorithm
            );
            continue;
        };
        checked += 1;
        let ratio = (t.geo_ms / cur_cal) / (base_geo / base_cal);
        let verdict = if ratio > REGRESSION_TOLERANCE {
            failures.push(format!(
                "{}/{}: {:.3} ms vs baseline {:.3} ms (normalized ratio {:.2} > {:.2})",
                t.dataset, t.algorithm, t.geo_ms, base_geo, ratio, REGRESSION_TOLERANCE
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "check {}/{}: normalized ratio {:.2} [{}]",
            t.dataset, t.algorithm, ratio, verdict
        );
    }
    if checked == 0 {
        eprintln!("regression check matched no hotpath metrics — refusing to pass vacuously");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!("bench regression gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    eprintln!("bench regression gate passed ({checked} metric(s) within tolerance)");
}

/// Extract a top-level `"key": <number>` from our own JSON schema.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Find the `geo_ms` of the baseline's hotpath record for
/// `(dataset, algorithm)`. Hand-rolled against our own `render_json`
/// output (the build environment vendors no serde).
fn baseline_metric(text: &str, dataset: &str, algorithm: &str) -> Option<f64> {
    for line in text.lines() {
        if line.contains("\"experiment\": \"hotpath\"")
            && line.contains(&format!("\"dataset\": \"{dataset}\""))
            && line.contains(&format!("\"algorithm\": \"{algorithm}\""))
        {
            return json_number(line, "geo_ms");
        }
    }
    None
}

/// Serialize the collected timings as JSON (hand-rolled — the build
/// environment vendors no serde).
fn render_json(scale: Scale, timings: &[JsonTiming]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!("  \"shards\": {},\n", resolved_shards()));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    ));
    let cal = f64::from_bits(CALIBRATION_MS.load(std::sync::atomic::Ordering::Relaxed));
    if cal > 0.0 {
        out.push_str(&format!("  \"calibration_ms\": {cal:.3},\n"));
    }
    out.push_str("  \"timings\": [\n");
    let rows: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"experiment\": \"{}\", \"dataset\": \"{}\", \"algorithm\": \"{}\", \
                 \"queries\": {}, \"total_ms\": {:.3}, \"geo_ms\": {:.3}}}",
                esc(t.experiment),
                esc(&t.dataset),
                esc(&t.algorithm),
                t.queries,
                t.total_ms,
                t.geo_ms
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// The shard count engines actually get: the `--shards` knob with the
/// `0 = one per core` sentinel resolved to the host's available
/// parallelism. The `--json` report records this (never the raw knob, so
/// a default run no longer reports the nonsensical `"shards": 0`).
fn resolved_shards() -> usize {
    match SHARDS.load(std::sync::atomic::Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        n => n,
    }
}

fn engine_for(g: KnowledgeGraph, d: usize) -> SearchEngine {
    EngineBuilder::new()
        .graph(g)
        .synonyms(SynonymTable::default_english())
        .height(d)
        .shards(SHARDS.load(std::sync::atomic::Ordering::Relaxed))
        .build()
        .expect("d in range")
}

/// One measured request: a pre-parsed query run under `cfg` with an
/// explicit algorithm (and optional sampling). Times reported by callers
/// use `response.stats.elapsed` — the search proper, measured inside each
/// algorithm — so the figures stay comparable to the pre-0.2 harness.
fn respond_algo(
    e: &SearchEngine,
    q: &Query,
    cfg: &SearchConfig,
    algo: AlgorithmChoice,
    sampling: Option<SamplingConfig>,
) -> SearchResponse {
    let mut req = SearchRequest::query(q.clone())
        .k(cfg.k)
        .scoring(cfg.scoring)
        .strict_trees(cfg.strict_trees)
        .max_rows(cfg.max_rows)
        .algorithm(algo);
    if let Some(s) = sampling {
        req = req.sampling(s);
    }
    e.respond(&req).expect("pre-parsed query always responds")
}

fn query_batch(e: &SearchEngine, scale: Scale, max_m: usize, seed: u64) -> Vec<Query> {
    let per_m = match scale {
        Scale::Small => 8,
        Scale::Full => 50,
    };
    let mut qg = QueryGenerator::new(e.graph(), e.text(), e.d(), seed);
    qg.batch(per_m, max_m)
        .into_iter()
        .map(|s| Query::from_ids(s.keywords))
        .collect()
}

/// Per-query measurement shared by Figures 7–9 and 16.
struct Measurement {
    m: usize,
    n_patterns: u64,
    n_subtrees: u64,
    times: BTreeMap<&'static str, Duration>,
}

const ALGOS: [(&str, AlgorithmChoice); 3] = [
    ("Baseline", AlgorithmChoice::Baseline),
    ("LETopK", AlgorithmChoice::LinearEnumTopK),
    ("PETopK", AlgorithmChoice::PatternEnum),
];

fn sweep(e: &SearchEngine, queries: &[Query], cfg: &SearchConfig) -> Vec<Measurement> {
    queries
        .iter()
        .map(|q| {
            let mut times = BTreeMap::new();
            for (name, algo) in ALGOS {
                let r = respond_algo(e, q, cfg, algo, None);
                times.insert(name, r.stats.elapsed);
            }
            Measurement {
                m: q.len(),
                n_patterns: e.count_patterns(q),
                n_subtrees: e.count_subtrees(q),
                times,
            }
        })
        .collect()
}

fn bucket_table(report: &mut Report, ms: &[Measurement], by_subtrees: bool) {
    let mut buckets: BTreeMap<u64, Vec<&Measurement>> = BTreeMap::new();
    for m in ms {
        let key = bucket_of(if by_subtrees {
            m.n_subtrees
        } else {
            m.n_patterns
        });
        buckets.entry(key).or_default().push(m);
    }
    let mut rows = vec![vec![
        if by_subtrees {
            "#subtrees<"
        } else {
            "#patterns<"
        }
        .to_string(),
        "queries".to_string(),
        "Baseline min/geo/max (ms)".to_string(),
        "LETopK min/geo/max (ms)".to_string(),
        "PETopK min/geo/max (ms)".to_string(),
    ]];
    for (bucket, group) in &buckets {
        let mut row = vec![format!("{bucket}"), format!("{}", group.len())];
        for (name, _) in ALGOS {
            let ds: Vec<Duration> = group.iter().map(|m| m.times[name]).collect();
            let eb = ErrorBar::of(&ds).unwrap();
            row.push(format!(
                "{:.2}/{:.2}/{:.2}",
                eb.min_ms, eb.geo_ms, eb.max_ms
            ));
        }
        rows.push(row);
    }
    report.table(&rows);
}

// ------------------------------------------------------------------
// Figure 6: index construction cost on Wiki for different d.
// ------------------------------------------------------------------
fn fig6(report: &mut Report, scale: Scale) {
    report.section("Figure 6: index construction cost on Wiki (time & size vs d)");
    let g = wiki_graph(scale);
    report.line(&format!("graph: {g:?}"));
    let text = TextIndex::build(&g, SynonymTable::default_english());
    let mut rows = vec![vec![
        "d".into(),
        "build time (s)".into(),
        "size (MB)".into(),
        "postings".into(),
        "patterns".into(),
    ]];
    for d in [2, 3, 4] {
        let t0 = Instant::now();
        let idx = build_indexes(
            &g,
            &text,
            &BuildConfig {
                d,
                threads: 0,
                shards: 0,
            },
        );
        let secs = t0.elapsed().as_secs_f64();
        let stats = IndexStats::of(&idx);
        rows.push(vec![
            format!("{d}"),
            format!("{secs:.2}"),
            format!("{:.1}", stats.megabytes()),
            format!("{}", stats.postings),
            format!("{}", stats.patterns),
        ]);
    }
    report.table(&rows);
    report.line("(paper: 43s/229MB, 502s/2.6GB, 7011s/34GB at 1.89M entities — same exponential-in-d shape)");
}

// ------------------------------------------------------------------
// Figure 7: execution time vs #patterns, d = 2, 3, 4, Wiki.
// ------------------------------------------------------------------
fn fig7(report: &mut Report, scale: Scale) {
    report.section("Figure 7: execution time vs #tree patterns on Wiki (d = 2, 3, 4)");
    let g = wiki_graph(scale);
    for d in [2, 3, 4] {
        let e = engine_for(g.clone(), d);
        let queries = query_batch(&e, scale, 6, 17);
        let ms = sweep(&e, &queries, &SearchConfig::top(100));
        report.line(&format!("-- d = {d} ({} queries) --", queries.len()));
        bucket_table(report, &ms, false);
    }
    report.line("(expected shape: PETopK fastest, LETopK <= Baseline, all growing with #patterns)");
}

// ------------------------------------------------------------------
// Figure 8: the same on IMDB, d = 3.
// ------------------------------------------------------------------
fn fig8(report: &mut Report, scale: Scale) {
    report.section("Figure 8: execution time vs #tree patterns on IMDB (d = 3)");
    let e = engine_for(imdb_graph(scale), 3);
    let queries = query_batch(&e, scale, 6, 19);
    let ms = sweep(&e, &queries, &SearchConfig::top(100));
    report.line(&format!("({} queries)", queries.len()));
    bucket_table(report, &ms, false);
}

// ------------------------------------------------------------------
// Figure 9: execution time vs #valid subtrees, Wiki & IMDB.
// ------------------------------------------------------------------
fn fig9(report: &mut Report, scale: Scale) {
    report.section("Figure 9(a): execution time vs #valid subtrees on Wiki (d = 3)");
    let e = engine_for(wiki_graph(scale), 3);
    let queries = query_batch(&e, scale, 6, 23);
    let ms = sweep(&e, &queries, &SearchConfig::top(100));
    bucket_table(report, &ms, true);

    report.section("Figure 9(b): execution time vs #valid subtrees on IMDB (d = 3)");
    let e = engine_for(imdb_graph(scale), 3);
    let queries = query_batch(&e, scale, 6, 29);
    let ms = sweep(&e, &queries, &SearchConfig::top(100));
    bucket_table(report, &ms, true);
}

// ------------------------------------------------------------------
// Figure 10: scalability — induced subgraphs of 10%..100% of entities.
// ------------------------------------------------------------------
fn fig10(report: &mut Report, scale: Scale) {
    report.section("Figure 10: execution time on Wiki subsets (10%-100% of entities)");
    let g = wiki_graph(scale);
    let fractions: &[f64] = match scale {
        Scale::Small => &[0.25, 0.5, 0.75, 1.0],
        Scale::Full => &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    };
    let mut rows = vec![vec![
        "entities %".into(),
        "nodes".into(),
        "Baseline geo (ms)".into(),
        "LETopK geo (ms)".into(),
        "PETopK geo (ms)".into(),
    ]];
    for &frac in fractions {
        let mut rng = SmallRng::seed_from_u64(31);
        let sub = subgraph::induced_by(&g, |_| rng.gen::<f64>() < frac);
        let n = sub.graph.num_nodes();
        let e = engine_for(sub.graph, 3);
        let queries = query_batch(&e, scale, 4, 37);
        if queries.is_empty() {
            continue;
        }
        let ms = sweep(&e, &queries, &SearchConfig::top(100));
        let mut row = vec![format!("{:.0}%", frac * 100.0), format!("{n}")];
        for (name, _) in ALGOS {
            let ds: Vec<Duration> = ms.iter().map(|m| m.times[name]).collect();
            row.push(format!("{:.2}", ErrorBar::of(&ds).unwrap().geo_ms));
        }
        rows.push(row);
    }
    report.table(&rows);
    report.line("(paper: near-linear growth in the number of entities)");
}

// ------------------------------------------------------------------
// Exp-IV: varying k has little impact.
// ------------------------------------------------------------------
fn expk(report: &mut Report, scale: Scale) {
    report.section("Exp-IV: execution time vs k (should be flat)");
    let e = engine_for(wiki_graph(scale), 3);
    let queries = query_batch(&e, scale, 4, 41);
    let mut rows = vec![vec![
        "k".into(),
        "LETopK geo (ms)".into(),
        "PETopK geo (ms)".into(),
    ]];
    for k in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let cfg = SearchConfig::top(k);
        let mut le = Vec::new();
        let mut pe = Vec::new();
        for q in &queries {
            let r = respond_algo(&e, q, &cfg, AlgorithmChoice::LinearEnumTopK, None);
            le.push(r.stats.elapsed);
            let r = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnum, None);
            pe.push(r.stats.elapsed);
        }
        rows.push(vec![
            format!("{k}"),
            format!("{:.2}", ErrorBar::of(&le).unwrap().geo_ms),
            format!("{:.2}", ErrorBar::of(&pe).unwrap().geo_ms),
        ]);
    }
    report.table(&rows);
}

/// The heaviest 2–3 keyword queries by #subtrees (mirrors §5.2's query 1–3
/// selection).
fn heavy_queries(e: &SearchEngine, count: usize) -> Vec<(Query, u64)> {
    let mut qg = QueryGenerator::new(e.graph(), e.text(), e.d(), 53);
    let mut seen: Vec<(Query, u64)> = Vec::new();
    for m in [2usize, 3] {
        for _ in 0..200 {
            if let Some(spec) = qg.anchored(m) {
                let q = Query::from_ids(spec.keywords);
                let n = e.count_subtrees(&q);
                if !seen.iter().any(|(existing, _)| existing == &q) {
                    seen.push((q, n));
                }
            }
        }
    }
    seen.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    seen.truncate(count);
    seen
}

fn precision_against(exact_keys: &[Vec<u32>], approx: &SearchResponse) -> f64 {
    let approx_keys: Vec<Vec<u32>> = approx.patterns.iter().map(|p| p.key()).collect();
    patternkb_search::metrics::precision(exact_keys, &approx_keys)
}

// ------------------------------------------------------------------
// Figure 11: varying sampling threshold Λ (ρ = 0.01, 0.1).
// ------------------------------------------------------------------
fn fig11(report: &mut Report, scale: Scale) {
    report.section("Figure 11: LETopK with varying sampling threshold (k = 100)");
    let e = engine_for(wiki_graph(scale), 3);
    let cfg = SearchConfig::top(100);
    let heavy = heavy_queries(&e, 3);
    let mut rows = vec![vec![
        "query".into(),
        "N subtrees".into(),
        "lambda".into(),
        "rho".into(),
        "time (ms)".into(),
        "precision".into(),
        "PETopK (ms)".into(),
    ]];
    for (qi, (q, n)) in heavy.iter().enumerate() {
        let exact = respond_algo(&e, q, &cfg, AlgorithmChoice::LinearEnumTopK, None);
        let exact_keys: Vec<Vec<u32>> = exact.patterns.iter().map(|p| p.key()).collect();
        let pe = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnum, None);
        let pe_ms = pe.stats.elapsed.as_secs_f64() * 1e3;
        for rho in [0.01, 0.1] {
            for lambda in [100u64, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
                let approx = respond_algo(
                    &e,
                    q,
                    &cfg,
                    AlgorithmChoice::LinearEnumTopK,
                    Some(SamplingConfig::new(lambda, rho, 77)),
                );
                let ms = approx.stats.elapsed.as_secs_f64() * 1e3;
                rows.push(vec![
                    format!("q{}", qi + 1),
                    format!("{n}"),
                    format!("{lambda}"),
                    format!("{rho}"),
                    format!("{ms:.2}"),
                    format!("{:.3}", precision_against(&exact_keys, &approx)),
                    format!("{pe_ms:.2}"),
                ]);
            }
        }
    }
    report.table(&rows);
    report.line("(expected: time and precision both rise with the threshold)");
}

// ------------------------------------------------------------------
// Figure 12: varying sampling rate ρ (Λ fixed).
// ------------------------------------------------------------------
fn fig12(report: &mut Report, scale: Scale) {
    report.section("Figure 12: LETopK with varying sampling rate (k = 100)");
    let e = engine_for(wiki_graph(scale), 3);
    let cfg = SearchConfig::top(100);
    // Λ: the paper uses 1e5 on queries with ~5e5–2.5e6 subtrees; scale it to
    // sit below our heavy queries' N the same way.
    let heavy = heavy_queries(&e, 3);
    let lambda = match scale {
        Scale::Small => 1_000,
        Scale::Full => 100_000,
    };
    let mut rows = vec![vec![
        "query".into(),
        "N subtrees".into(),
        "rho".into(),
        "time (ms)".into(),
        "precision".into(),
        "PETopK (ms)".into(),
    ]];
    for (qi, (q, n)) in heavy.iter().enumerate() {
        let exact = respond_algo(&e, q, &cfg, AlgorithmChoice::LinearEnumTopK, None);
        let exact_keys: Vec<Vec<u32>> = exact.patterns.iter().map(|p| p.key()).collect();
        let pe = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnum, None);
        let pe_ms = pe.stats.elapsed.as_secs_f64() * 1e3;
        for rho in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let approx = respond_algo(
                &e,
                q,
                &cfg,
                AlgorithmChoice::LinearEnumTopK,
                Some(SamplingConfig::new(lambda, rho, 77)),
            );
            let ms = approx.stats.elapsed.as_secs_f64() * 1e3;
            rows.push(vec![
                format!("q{}", qi + 1),
                format!("{n}"),
                format!("{rho}"),
                format!("{ms:.2}"),
                format!("{:.3}", precision_against(&exact_keys, &approx)),
                format!("{pe_ms:.2}"),
            ]);
        }
    }
    report.table(&rows);
    report.line(
        "(expected: smaller rho → faster, lower precision; precision high already at moderate rho)",
    );
}

// ------------------------------------------------------------------
// Figure 13: individual trees vs tree patterns.
// ------------------------------------------------------------------
fn fig13(report: &mut Report, scale: Scale) {
    report.section("Figure 13: coverage of top-k individual subtrees in top-k patterns");
    let e = engine_for(wiki_graph(scale), 3);
    let queries = query_batch(&e, scale, 4, 61);
    let mut rows = vec![vec![
        "k".into(),
        "avg coverage %".into(),
        "avg new patterns %".into(),
        "queries".into(),
    ]];
    for k in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let cfg = SearchConfig::top(k);
        let mut cov = Vec::new();
        let mut new = Vec::new();
        for q in &queries {
            let patterns = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnum, None);
            if patterns.patterns.is_empty() {
                continue;
            }
            let keys: Vec<Vec<u32>> = patterns
                .patterns
                .iter()
                .filter_map(|p| {
                    let mut key = Vec::with_capacity(p.pattern.len());
                    for pat in &p.pattern {
                        key.push(e.index().patterns().get_key(&pat.encode())?.0);
                    }
                    Some(key)
                })
                .collect();
            let trees = e.top_individual(q, &cfg, k);
            if trees.is_empty() {
                continue;
            }
            let covered = trees
                .iter()
                .filter(|t| keys.contains(&t.pattern_key))
                .count();
            cov.push(covered as f64 / trees.len() as f64);
            let fresh = keys
                .iter()
                .filter(|key| trees.iter().all(|t| &t.pattern_key != *key))
                .count();
            new.push(fresh as f64 / keys.len().max(1) as f64);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        rows.push(vec![
            format!("{k}"),
            format!("{:.1}", avg(&cov) * 100.0),
            format!("{:.1}", avg(&new) * 100.0),
            format!("{}", cov.len()),
        ]);
    }
    report.table(&rows);
    report.line("(paper: coverage ~42-50%, new patterns ~30-70%)");
}

// ------------------------------------------------------------------
// Figure 16 (appendix): execution time vs number of keywords.
// ------------------------------------------------------------------
fn fig16(report: &mut Report, scale: Scale) {
    report.section("Figure 16: execution time vs number of keywords on Wiki (d = 3)");
    let e = engine_for(wiki_graph(scale), 3);
    let max_m = match scale {
        Scale::Small => 6,
        Scale::Full => 10,
    };
    let queries = query_batch(&e, scale, max_m, 67);
    let ms = sweep(&e, &queries, &SearchConfig::top(100));
    let mut by_m: BTreeMap<usize, Vec<&Measurement>> = BTreeMap::new();
    for m in &ms {
        by_m.entry(m.m).or_default().push(m);
    }
    let mut rows = vec![vec![
        "#keywords".into(),
        "queries".into(),
        "Baseline min/geo/max (ms)".into(),
        "LETopK min/geo/max (ms)".into(),
        "PETopK min/geo/max (ms)".into(),
    ]];
    for (m, group) in &by_m {
        let mut row = vec![format!("{m}"), format!("{}", group.len())];
        for (name, _) in ALGOS {
            let ds: Vec<Duration> = group.iter().map(|x| x.times[name]).collect();
            let eb = ErrorBar::of(&ds).unwrap();
            row.push(format!(
                "{:.2}/{:.2}/{:.2}",
                eb.min_ms, eb.geo_ms, eb.max_ms
            ));
        }
        rows.push(row);
    }
    report.table(&rows);
    report.line("(paper: performance does not deteriorate with more keywords)");
}

// ------------------------------------------------------------------
// Case study (Figures 14–15): individual subtrees vs the table answer.
// ------------------------------------------------------------------
fn case_study(report: &mut Report, scale: Scale) {
    report.section("Case study (Figures 14-15): top individual subtrees vs top-1 pattern");
    let e = engine_for(wiki_graph(scale), 3);
    let heavy = heavy_queries(&e, 1);
    let Some((q, _)) = heavy.into_iter().next() else {
        report.line("no suitable query found");
        return;
    };
    let words: Vec<&str> = q
        .keywords
        .iter()
        .map(|&w| e.text().vocab().resolve(w))
        .collect();
    report.line(&format!("query: {:?}", words.join(" ")));

    report.line("\nTop individual valid subtrees:");
    for (rank, t) in e
        .top_individual(&q, &SearchConfig::default(), 3)
        .iter()
        .enumerate()
    {
        let g = e.graph();
        let paths: Vec<String> = t
            .tree
            .paths
            .iter()
            .map(|p| {
                p.nodes
                    .iter()
                    .map(|&n| g.node_text(n).to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            })
            .collect();
        report.line(&format!(
            "  top-{} (score {:.4}): {}",
            rank + 1,
            t.tree.score,
            paths.join("  |  ")
        ));
    }

    let r = respond_algo(
        &e,
        &q,
        &SearchConfig::top(1),
        AlgorithmChoice::PatternEnum,
        None,
    );
    if let (Some(top), Some(table)) = (r.top(), r.top_table()) {
        report.line(&format!(
            "\nTop-1 tree pattern ({} rows): {}",
            top.num_trees,
            top.display(e.graph())
        ));
        report.line(&table.render());
    }
}

// ------------------------------------------------------------------
// Smoke: a fast per-algorithm sweep for CI's shards={1,4} matrix.
// ------------------------------------------------------------------
fn smoke(report: &mut Report, scale: Scale, timings: &mut Vec<JsonTiming>) {
    report.section("Smoke: per-algorithm timings (CI shard matrix)");
    let shards = SHARDS.load(std::sync::atomic::Ordering::Relaxed);
    let algos: [(&'static str, AlgorithmChoice); 5] = [
        ("Baseline", AlgorithmChoice::Baseline),
        ("PETopK", AlgorithmChoice::PatternEnum),
        ("PETopK-pruned", AlgorithmChoice::PatternEnumPruned),
        ("LinearEnum", AlgorithmChoice::LinearEnum),
        ("LETopK", AlgorithmChoice::LinearEnumTopK),
    ];
    for (dataset, g) in [
        ("zipf-wiki", wiki_graph(scale)),
        ("figure1", patternkb_datagen::figure1().0),
    ] {
        let e = engine_for(g, 3);
        let queries = query_batch(&e, scale, 3, 97);
        if queries.is_empty() {
            report.line(&format!("{dataset}: no queries generated, skipped"));
            continue;
        }
        report.line(&format!(
            "{dataset}: {} nodes, {} shard(s), {} queries",
            e.graph().num_nodes(),
            e.num_shards(),
            queries.len()
        ));
        let mut rows = vec![vec![
            "algorithm".into(),
            "queries".into(),
            "total (ms)".into(),
            "geo (ms)".into(),
        ]];
        for (name, algo) in algos {
            let mut durations = Vec::with_capacity(queries.len());
            for q in &queries {
                let r = respond_algo(&e, q, &SearchConfig::top(10), algo, None);
                durations.push(r.stats.elapsed);
            }
            let eb = ErrorBar::of(&durations).expect("non-empty");
            let total_ms: f64 = durations.iter().map(|d| d.as_secs_f64() * 1e3).sum();
            rows.push(vec![
                name.to_string(),
                format!("{}", queries.len()),
                format!("{total_ms:.2}"),
                format!("{:.3}", eb.geo_ms),
            ]);
            timings.push(JsonTiming {
                experiment: "smoke",
                dataset: dataset.to_string(),
                algorithm: name.to_string(),
                queries: queries.len(),
                total_ms,
                geo_ms: eb.geo_ms,
            });
        }
        report.table(&rows);
    }
    report.line(&format!(
        "(sharded answers are bit-identical to shards=1; this table tracks latency at shards={})",
        if shards == 0 {
            "auto".into()
        } else {
            shards.to_string()
        }
    ));
}

// ------------------------------------------------------------------
// Hotpath: the query data-plane kernels the regression gate tracks —
// sorted-list intersection, posting decode, and end-to-end
// pattern_enum_pruned on zipf-wiki. `--json` + `--check` turn this into
// the CI bench gate against the committed BENCH_hotpath.json.
// ------------------------------------------------------------------
fn hotpath(report: &mut Report, scale: Scale, timings: &mut Vec<JsonTiming>) {
    use patternkb_index::compress::CompressedPathIndexes;

    report.section("Hotpath: intersection / decode / pattern_enum_pruned (regression-gated)");
    let cal = calibrate();
    report.line(&format!("calibration workload: {cal:.1} ms"));

    let mut push = |report: &mut Report,
                    dataset: &str,
                    algorithm: &str,
                    durations: &[Duration],
                    queries: usize| {
        let eb = ErrorBar::of(durations).expect("non-empty");
        let total_ms: f64 = durations.iter().map(|d| d.as_secs_f64() * 1e3).sum();
        report.line(&format!(
            "{algorithm}: total {total_ms:.2} ms, geo {:.4} ms over {} obs",
            eb.geo_ms,
            durations.len()
        ));
        timings.push(JsonTiming {
            experiment: "hotpath",
            dataset: dataset.to_string(),
            algorithm: algorithm.to_string(),
            queries,
            total_ms,
            geo_ms: eb.geo_ms,
        });
    };

    // --- 1. Intersection kernel: the engine's sorted-list intersection
    //     primitive over synthetic posting-style root lists (skewed sizes,
    //     like zipf word frequencies). ---
    let mut rng = SmallRng::seed_from_u64(0xb10cf00d);
    let universe = 1u32 << 20;
    let mut make_list = |len: usize| -> Vec<u32> {
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let lists: Vec<Vec<u32>> = [80_000usize, 20_000, 4_000, 800]
        .iter()
        .map(|&n| make_list(n))
        .collect();
    let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
    let mut durations = Vec::new();
    let mut matched = 0usize;
    for _ in 0..60 {
        let t0 = Instant::now();
        let out = patternkb_search::common::intersect_sorted(&refs);
        durations.push(t0.elapsed());
        matched = out.len();
    }
    report.line(&format!(
        "intersect: {} lists (sizes {:?}), {} common",
        refs.len(),
        lists.iter().map(Vec::len).collect::<Vec<_>>(),
        matched
    ));
    push(report, "zipf-wiki", "intersect", &durations, 60);

    // --- 2. Posting decode: rebuild every word of the compressed tier.
    //     Pinned to one shard: every hotpath metric must be single-
    //     threaded so the single-core calibration workload normalizes it
    //     (the gate would otherwise under-read regressions on many-core
    //     runners). ---
    let g = wiki_graph(scale);
    let text = TextIndex::build(&g, SynonymTable::default_english());
    let idx = build_indexes(
        &g,
        &text,
        &BuildConfig {
            d: 3,
            threads: 0,
            shards: 1,
        },
    );
    let comp = CompressedPathIndexes::compress(&idx);
    let mut durations = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        let back = comp.decompress().expect("tier decodes");
        durations.push(t0.elapsed());
        assert_eq!(back.num_postings(), idx.num_postings());
    }
    push(report, "zipf-wiki", "decode", &durations, 5);
    match comp.encoding_mix() {
        Ok(mix) => report.line(&format!("encoding mix: {mix}")),
        Err(e) => report.line(&format!("encoding mix unavailable: {e}")),
    }

    // --- 2b. Per-codec decode microbench: identical root lists forced
    //     through each of the three v4 encodings, streamed back with
    //     `read_into` (the decoder the compressed tier actually uses).
    //     Shapes chosen so every codec can represent them (strictly
    //     ascending); the adaptive selector would pick differently per
    //     list — that is exactly what this row isolates. ---
    {
        use patternkb_index::{BlockList, Encoding};
        let mut rng = SmallRng::seed_from_u64(0xdec0de);
        // A mix of shapes: sparse random (delta territory), long runs
        // (rle territory) and dense ranges (bitmap territory).
        let mut lists: Vec<Vec<u32>> = Vec::new();
        for _ in 0..8 {
            let mut v: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..1u32 << 22)).collect();
            v.sort_unstable();
            v.dedup();
            lists.push(v);
        }
        for i in 0..8u32 {
            lists.push((i * 40_000..i * 40_000 + 20_000).collect());
        }
        for i in 0..8u32 {
            let base = i * 60_000;
            lists.push((base..base + 40_000).filter(|x| x % 3 != 0).collect());
        }
        for (enc, name) in [
            (Encoding::Delta, "decode_delta"),
            (Encoding::Rle, "decode_rle"),
            (Encoding::Bitmap, "decode_bitmap"),
        ] {
            let mut bytes = Vec::new();
            let mut total = 0usize;
            for l in &lists {
                BlockList::encode_as(l, enc)
                    .expect("strictly ascending input fits every codec")
                    .write(&mut bytes);
                total += l.len();
            }
            let mut durations = Vec::new();
            let mut scratch = Vec::new();
            let mut out = Vec::with_capacity(total);
            for _ in 0..20 {
                out.clear();
                let mut pos = 0usize;
                let t0 = Instant::now();
                for _ in 0..lists.len() {
                    BlockList::read_into(&bytes, &mut pos, &mut scratch, &mut out)
                        .expect("self-written stream decodes");
                }
                durations.push(t0.elapsed());
                assert_eq!(out.len(), total);
            }
            push(report, "codec-micro", name, &durations, 20);
        }
    }

    // --- 3. End-to-end: pattern_enum_pruned over a fixed query batch on
    //     zipf-wiki (the acceptance workload). One shard (see above): the
    //     single shard worker runs inline, so the metric tracks kernel
    //     speed, not the host's core count; `--shards` deliberately does
    //     not apply here. Per-query minimum over 3 passes to damp
    //     scheduler noise. ---
    let e = EngineBuilder::new()
        .graph(g)
        .synonyms(SynonymTable::default_english())
        .height(3)
        .shards(1)
        .build()
        .expect("d in range");
    let queries = query_batch(&e, scale, 4, 131);
    let cfg = SearchConfig::top(10);
    let mut best: Vec<Duration> = vec![Duration::MAX; queries.len()];
    for _ in 0..3 {
        for (q, slot) in queries.iter().zip(best.iter_mut()) {
            let r = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnumPruned, None);
            *slot = (*slot).min(r.stats.elapsed);
        }
    }
    push(
        report,
        "zipf-wiki",
        "pattern_enum_pruned",
        &best,
        queries.len(),
    );
}

// ------------------------------------------------------------------
// Cold boot: the same v5 zipf-wiki snapshot opened by full decode (what
// a heap boot pays) vs mapped in place (what `--storage mmap` pays).
// Run with `--json BENCH_coldboot.json`; the committed report backs the
// "mapped boot ≥ 5× faster" claim, and the resident-byte lines show the
// out-of-core point — mapped residency scales with what was touched,
// not with the index.
// ------------------------------------------------------------------
fn coldboot(report: &mut Report, scale: Scale, timings: &mut Vec<JsonTiming>) {
    report.section("Cold boot: v5 snapshot, full decode vs mmap open");
    if f64::from_bits(CALIBRATION_MS.load(std::sync::atomic::Ordering::Relaxed)) == 0.0 {
        let cal = calibrate();
        report.line(&format!("calibration workload: {cal:.1} ms"));
    }

    let g = wiki_graph(scale);
    let text = TextIndex::build(&g, SynonymTable::default_english());
    // One shard, like every hotpath metric: boot decode is single-
    // threaded, so the single-core calibration normalizes it.
    let idx = build_indexes(
        &g,
        &text,
        &BuildConfig {
            d: 3,
            threads: 0,
            shards: 1,
        },
    );
    let dir = std::env::temp_dir().join(format!("patternkb_coldboot_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("zipf-wiki.pkb5");
    patternkb_index::storage::save_v5(&idx, &path).expect("snapshot written");
    let file_len = std::fs::metadata(&path).expect("written").len();

    let mut push = |report: &mut Report, algorithm: &str, durations: &[Duration]| {
        let eb = ErrorBar::of(durations).expect("non-empty");
        let total_ms: f64 = durations.iter().map(|d| d.as_secs_f64() * 1e3).sum();
        report.line(&format!(
            "{algorithm}: geo {:.4} ms over {} boots",
            eb.geo_ms,
            durations.len()
        ));
        timings.push(JsonTiming {
            experiment: "coldboot",
            dataset: "zipf-wiki".to_string(),
            algorithm: algorithm.to_string(),
            queries: durations.len(),
            total_ms,
            geo_ms: eb.geo_ms,
        });
        eb.geo_ms
    };

    const BOOTS: usize = 7;
    let mut decode_ds = Vec::with_capacity(BOOTS);
    let mut decoded_resident = 0usize;
    for _ in 0..BOOTS {
        let t0 = Instant::now();
        let full = patternkb_index::snapshot::load(&path).expect("v5 decodes");
        decode_ds.push(t0.elapsed());
        decoded_resident = full.heap_bytes();
    }
    let mut map_ds = Vec::with_capacity(BOOTS);
    let mut mapped_resident = 0usize;
    for _ in 0..BOOTS {
        let t0 = Instant::now();
        let mapped = patternkb_index::storage::open_mapped(&path).expect("v5 maps");
        map_ds.push(t0.elapsed());
        mapped_resident = mapped.heap_bytes();
    }
    // The deferred work the mapped boot did NOT do: decoding every word
    // (queries pay it per touched word; this is the total).
    let mut touch_ds = Vec::with_capacity(3);
    for _ in 0..3 {
        let mapped = patternkb_index::storage::open_mapped(&path).expect("v5 maps");
        let words = mapped.word_ids();
        let t0 = Instant::now();
        mapped.prepare_words(&words).expect("streams decode");
        touch_ds.push(t0.elapsed());
    }

    let decode_geo = push(report, "boot_full_decode", &decode_ds);
    let mmap_geo = push(report, "boot_mmap_open", &map_ds);
    push(report, "mmap_decode_all_words", &touch_ds);
    report.line(&format!(
        "snapshot {file_len} bytes; resident after boot: decode {decoded_resident} B, mmap {mapped_resident} B ({:.1}% of decoded)",
        100.0 * mapped_resident as f64 / decoded_resident.max(1) as f64
    ));
    report.line(&format!(
        "cold-boot speedup (full decode / mmap open): {:.1}x",
        decode_geo / mmap_geo.max(f64::MIN_POSITIVE)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------------
// §4.1 worst case: PETopK's Θ(p²) empty joins vs LETopK.
// ------------------------------------------------------------------
fn worst_case(report: &mut Report) {
    report.section("Section 4.1 worst case: PETopK wastes p^2 empty pattern joins");
    let mut rows = vec![vec![
        "p".into(),
        "PETopK combos".into(),
        "PETopK (us)".into(),
        "LETopK (us)".into(),
    ]];
    for p in [8usize, 16, 32, 64, 128] {
        let g = patternkb_datagen::worstcase::worstcase(p);
        let e = EngineBuilder::new()
            .graph(g)
            .height(2)
            .threads(1)
            .build()
            .expect("d in range");
        let q = e
            .parse(&format!(
                "{} {}",
                patternkb_datagen::worstcase::W1,
                patternkb_datagen::worstcase::W2
            ))
            .unwrap();
        let cfg = SearchConfig::top(10);
        let pe = respond_algo(&e, &q, &cfg, AlgorithmChoice::PatternEnum, None);
        let pe_us = pe.stats.elapsed.as_micros();
        let le = respond_algo(&e, &q, &cfg, AlgorithmChoice::LinearEnumTopK, None);
        let le_us = le.stats.elapsed.as_micros();
        assert!(pe.patterns.is_empty() && le.patterns.is_empty());
        rows.push(vec![
            format!("{p}"),
            format!("{}", pe.stats.combos_tried),
            format!("{pe_us}"),
            format!("{le_us}"),
        ]);
    }
    report.table(&rows);
    report.line("(combos grow as p^2; LETopK sees zero candidate roots and exits immediately)");
}

// ------------------------------------------------------------------
// Ablations called out in DESIGN.md: aggregation functions, strict tree
// filtering, and d-sensitivity on a citation graph.
// ------------------------------------------------------------------
fn ablation(report: &mut Report, scale: Scale) {
    use patternkb_search::{Aggregation, ScoringConfig};

    report.section("Ablation A: pattern-aggregation functions (top-10 overlap vs Sum)");
    let e = engine_for(wiki_graph(scale), 3);
    let queries = query_batch(&e, scale, 3, 71);
    let aggs = [
        ("Sum", Aggregation::Sum),
        ("Avg", Aggregation::Avg),
        ("Max", Aggregation::Max),
        ("Count", Aggregation::Count),
    ];
    let mut rows = vec![vec![
        "aggregation".into(),
        "avg top-10 overlap with Sum".into(),
        "queries".into(),
    ]];
    for (name, agg) in aggs {
        let mut overlaps = Vec::new();
        for q in &queries {
            let base_cfg = SearchConfig::top(10);
            let base = respond_algo(&e, q, &base_cfg, AlgorithmChoice::PatternEnum, None);
            if base.patterns.is_empty() {
                continue;
            }
            let cfg = SearchConfig {
                scoring: ScoringConfig {
                    aggregation: agg,
                    ..ScoringConfig::default()
                },
                ..SearchConfig::top(10)
            };
            let alt = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnum, None);
            let base_keys: Vec<Vec<u32>> = base.patterns.iter().map(|p| p.key()).collect();
            let hits = alt
                .patterns
                .iter()
                .filter(|p| base_keys.contains(&p.key()))
                .count();
            overlaps.push(hits as f64 / base_keys.len() as f64);
        }
        let avg = overlaps.iter().sum::<f64>() / overlaps.len().max(1) as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", avg),
            format!("{}", overlaps.len()),
        ]);
    }
    report.table(&rows);
    report.line("(Sum vs Count agree when subtree scores are homogeneous; Avg/Max reorder toward singular patterns)");

    report.section("Ablation B: strict tree filtering (non-tree path tuples)");
    let mut rows = vec![vec![
        "mode".into(),
        "total subtrees".into(),
        "total patterns".into(),
        "geo time (ms)".into(),
    ]];
    for strict in [false, true] {
        let cfg = SearchConfig {
            strict_trees: strict,
            ..SearchConfig::top(100)
        };
        let mut subtrees = 0usize;
        let mut patterns = 0usize;
        let mut times = Vec::new();
        for q in &queries {
            let r = respond_algo(&e, q, &cfg, AlgorithmChoice::LinearEnum, None);
            times.push(r.stats.elapsed);
            subtrees += r.stats.subtrees;
            patterns += r.stats.patterns;
        }
        rows.push(vec![
            if strict { "strict" } else { "paper (lax)" }.to_string(),
            format!("{subtrees}"),
            format!("{patterns}"),
            format!("{:.2}", ErrorBar::of(&times).unwrap().geo_ms),
        ]);
    }
    report.table(&rows);
    report.line(
        "(strict mode drops tuples whose path union converges; the paper's products keep them)",
    );

    report.section("Ablation C: d-sensitivity on a citation graph (DBLP-like)");
    let g = patternkb_datagen::dblp::dblp(&patternkb_datagen::DblpConfig {
        papers: match scale {
            Scale::Small => 1_500,
            Scale::Full => 10_000,
        },
        avg_citations: 3.0,
        seed: 5,
    });
    let mut rows = vec![vec![
        "d".into(),
        "avg #patterns".into(),
        "avg #subtrees".into(),
        "PETopK geo (ms)".into(),
    ]];
    for d in [2usize, 3, 4] {
        let e = engine_for(g.clone(), d);
        let queries = query_batch(&e, scale, 2, 73);
        if queries.is_empty() {
            continue;
        }
        let mut pats = 0u64;
        let mut subs = 0u64;
        let mut times = Vec::new();
        for q in &queries {
            pats += e.count_patterns(q);
            subs += e.count_subtrees(q);
            let r = respond_algo(
                &e,
                q,
                &SearchConfig::top(100),
                AlgorithmChoice::PatternEnum,
                None,
            );
            times.push(r.stats.elapsed);
        }
        let n = queries.len() as u64;
        rows.push(vec![
            format!("{d}"),
            format!("{}", pats / n),
            format!("{}", subs / n),
            format!("{:.2}", ErrorBar::of(&times).unwrap().geo_ms),
        ]);
    }
    report.table(&rows);
    report.line("(citation chains keep adding interpretations with d, unlike the IMDB schema)");

    ablation_pruning(report, scale);
    ablation_incremental(report, scale);
    ablation_compression(report, scale);
    ablation_stemmer(report, scale);
}

/// Ablation G: stemmer choice (Lite vs full Porter vs none).
///
/// The synthetic KB vocabularies are uninflected base forms, so index
/// sizes barely move; what the stemmer determines is whether *inflected
/// queries* ("movies", "publishing") reach the index entries of their base
/// forms (§3: word, stemmed version and synonyms share entries). We
/// measure that directly: inflect the KB vocabulary with the common
/// English suffixes and count how many variant forms collapse onto an
/// existing canonical word under each stemmer.
fn ablation_stemmer(report: &mut Report, scale: Scale) {
    use patternkb_text::{Stemmer, Vocabulary};

    report.section("Ablation G: stemmer choice (inflected-query reachability)");
    let g = wiki_graph(scale);
    let base_text = TextIndex::build(&g, SynonymTable::new());
    let base_words: Vec<String> = base_text
        .vocab()
        .iter()
        .map(|(_, s)| s.to_string())
        .filter(|s| s.len() >= 4 && s.bytes().all(|b| b.is_ascii_lowercase()))
        .take(300)
        .collect();
    let inflect = |w: &str| -> Vec<String> {
        let mut v = vec![format!("{w}s")];
        if let Some(stem) = w.strip_suffix('e') {
            v.push(format!("{stem}ing"));
            v.push(format!("{w}d"));
        } else {
            v.push(format!("{w}ing"));
            v.push(format!("{w}ed"));
        }
        v
    };

    let mut rows = vec![vec![
        "stemmer".into(),
        "distinct canonicals".into(),
        "variants reaching base".into(),
        "variant forms".into(),
    ]];
    for (name, stemmer) in [
        ("none", Stemmer::None),
        ("lite (default)", Stemmer::Lite),
        ("porter", Stemmer::Porter),
    ] {
        let mut vocab = Vocabulary::with_stemmer(SynonymTable::new(), stemmer);
        for w in &base_words {
            vocab.intern(w);
        }
        let mut total = 0usize;
        let mut reached = 0usize;
        for w in &base_words {
            let base_id = vocab.lookup(w).expect("base interned");
            for form in inflect(w) {
                total += 1;
                if vocab.lookup(&form) == Some(base_id) {
                    reached += 1;
                }
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{}", vocab.len()),
            format!("{:.1}%", 100.0 * reached as f64 / total.max(1) as f64),
            format!("{total}"),
        ]);
    }
    report.table(&rows);
    report.line("(Porter reaches the most inflected variants; Lite trades some recall to keep entity nouns distinct; None requires exact surface forms)");
}

/// Ablation D: admissible upper-bound pruning for PATTERNENUM.
fn ablation_pruning(report: &mut Report, scale: Scale) {
    report.section("Ablation D: PATTERNENUM upper-bound pruning (identical answers)");
    let e = engine_for(wiki_graph(scale), 3);
    let queries = query_batch(&e, scale, 4, 79);
    let mut rows = vec![vec![
        "k".into(),
        "exact geo (ms)".into(),
        "pruned geo (ms)".into(),
        "combos tried".into(),
        "combos pruned".into(),
    ]];
    for k in [1usize, 10, 100] {
        let cfg = SearchConfig {
            max_rows: 4,
            ..SearchConfig::top(k)
        };
        let mut t_exact = Vec::new();
        let mut t_pruned = Vec::new();
        let mut tried = 0usize;
        let mut pruned = 0usize;
        for q in &queries {
            let r = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnum, None);
            t_exact.push(r.stats.elapsed);
            let r = respond_algo(&e, q, &cfg, AlgorithmChoice::PatternEnumPruned, None);
            t_pruned.push(r.stats.elapsed);
            tried += r.stats.combos_tried;
            pruned += r.stats.combos_pruned;
        }
        rows.push(vec![
            format!("{k}"),
            format!("{:.3}", ErrorBar::of(&t_exact).unwrap().geo_ms),
            format!("{:.3}", ErrorBar::of(&t_pruned).unwrap().geo_ms),
            format!("{tried}"),
            format!("{pruned}"),
        ]);
    }
    report.table(&rows);
    report.line(
        "(small k lets the threshold bite early; the pruner skips intersections, never answers)",
    );
}

/// Ablation E: incremental index refresh vs full rebuild.
fn ablation_incremental(report: &mut Report, scale: Scale) {
    use patternkb_graph::mutate::{GraphDelta, PagerankMode};
    use patternkb_index::refresh_indexes;

    report.section("Ablation E: incremental index refresh vs full rebuild");
    let cfg = BuildConfig {
        d: 3,
        threads: 0,
        shards: 1,
    };
    let g = wiki_graph(scale);
    let text = TextIndex::build(&g, SynonymTable::default_english());
    let idx = build_indexes(&g, &text, &cfg);
    let mut rows = vec![vec![
        "delta (entities)".into(),
        "affected roots".into(),
        "refresh (ms)".into(),
        "rebuild (ms)".into(),
        "speedup".into(),
    ]];
    for batch in [1usize, 16, 128] {
        let comp = g.types().iter().nth(1).map(|(t, _)| t).unwrap();
        let attr = g.attrs().iter().next().map(|(a, _)| a).unwrap();
        let mut delta = GraphDelta::new(&g);
        for i in 0..batch {
            let v = delta
                .add_node(comp, &format!("streamed entity number {i}"))
                .unwrap();
            let anchor = patternkb_graph::NodeId((i * 97 % g.num_nodes()) as u32);
            delta.add_edge(anchor, attr, v).unwrap();
        }
        let g2 = delta.apply(&g, PagerankMode::Frozen).unwrap();
        let text2 = TextIndex::build(&g2, SynonymTable::default_english());
        let dirty = delta.dirty_nodes();

        let t0 = Instant::now();
        let (_, stats) = refresh_indexes(&idx, &g, &g2, &text, &text2, &dirty, false);
        let t_refresh = t0.elapsed();
        let t0 = Instant::now();
        let _ = build_indexes(&g2, &text2, &cfg);
        let t_rebuild = t0.elapsed();
        rows.push(vec![
            format!("{batch}"),
            format!("{}", stats.affected_roots),
            format!("{:.2}", t_refresh.as_secs_f64() * 1e3),
            format!("{:.2}", t_rebuild.as_secs_f64() * 1e3),
            format!(
                "{:.1}x",
                t_rebuild.as_secs_f64() / t_refresh.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    report.table(&rows);
    report.line("(refresh cost tracks the delta's d-neighbourhood, not the KB size — Fig. 6's build cost amortizes away)");
}

/// Ablation F: compressed posting tier.
fn ablation_compression(report: &mut Report, scale: Scale) {
    use patternkb_index::compress::CompressedPathIndexes;

    report.section("Ablation F: compressed posting tier (delta+varint)");
    let g = wiki_graph(scale);
    let text = TextIndex::build(&g, SynonymTable::default_english());
    let mut rows = vec![vec![
        "d".into(),
        "postings".into(),
        "raw (MB)".into(),
        "compressed (MB)".into(),
        "ratio".into(),
        "decode-all (ms)".into(),
    ]];
    for d in [2usize, 3] {
        let idx = build_indexes(
            &g,
            &text,
            &BuildConfig {
                d,
                threads: 0,
                shards: 0,
            },
        );
        let comp = CompressedPathIndexes::compress(&idx);
        let t0 = Instant::now();
        let back = comp.decompress().expect("decodes");
        let decode = t0.elapsed();
        assert_eq!(back.num_postings(), idx.num_postings());
        rows.push(vec![
            format!("{d}"),
            format!("{}", idx.num_postings()),
            format!("{:.2}", idx.heap_bytes() as f64 / 1048576.0),
            format!("{:.2}", comp.heap_bytes() as f64 / 1048576.0),
            format!("{:.3}", comp.ratio_against(&idx)),
            format!("{:.2}", decode.as_secs_f64() * 1e3),
        ]);
    }
    report.table(&rows);
    report.line("(the cold tier trades one per-word decode for >2x memory headroom at the paper's d=3/4 blowup)");
}
