//! Write-ahead-log append microbenchmark: how much throughput each fsync
//! policy sustains, and how much group commit recovers of the gap between
//! `always` (one fsync per write) and `never` (no durability at all).
//!
//! ```text
//! walbench [--records N] [--payload BYTES] [--appenders "1,8"]
//!          [--json PATH] [--min-group-speedup F]
//! ```
//!
//! Every appender thread mirrors the engine's write path exactly: version
//! assignment and `Wal::append` are serialized under one mutex (file order
//! must equal version order), while `Wal::sync` waits overlap freely —
//! that overlap is what group commit batches into a single fsync. The
//! headline number is `group_vs_always_speedup` at the highest appender
//! count: concurrent durable writers amortizing fsyncs versus paying one
//! each. `--min-group-speedup` turns that into a CI-style gate.
//!
//! This measures the WAL in isolation on purpose. End-to-end ingest
//! throughput is apply-dominated (delta compile + incremental refresh);
//! see the `serve-durable` CI leg and `loadgen` for that picture.

use patternkb_wal::{FsyncPolicy, Wal, WalOptions};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

struct CaseResult {
    policy: String,
    appenders: usize,
    records: u64,
    elapsed: Duration,
    fsyncs: u64,
    fsync_mean_us: f64,
    log_bytes: u64,
}

impl CaseResult {
    fn appends_per_sec(&self) -> f64 {
        self.records as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn run_case(
    policy: FsyncPolicy,
    appenders: usize,
    records_per_appender: u64,
    payload: &[u8],
) -> CaseResult {
    let dir = std::env::temp_dir().join(format!(
        "patternkb_walbench_{}_{appenders}_{}",
        policy,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let (wal, _) = Wal::open(dir.join("wal.log"), WalOptions { fsync: policy }).expect("open wal");

    // Version assignment + append serialize (file order == version order),
    // sync waits overlap — the same locking shape as SharedEngine's
    // writer lock, so group commit sees realistic concurrency.
    let version = Mutex::new(0u64);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..appenders {
            scope.spawn(|| {
                for _ in 0..records_per_appender {
                    let ticket = {
                        let mut v = version.lock().unwrap();
                        *v += 1;
                        wal.append(*v, payload).expect("append")
                    };
                    wal.sync(ticket).expect("sync");
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let stats = wal.fsync_stats();
    let result = CaseResult {
        policy: policy.to_string(),
        appenders,
        records: appenders as u64 * records_per_appender,
        elapsed,
        fsyncs: stats.count,
        fsync_mean_us: if stats.count == 0 {
            0.0
        } else {
            stats.total_micros as f64 / stats.count as f64
        },
        log_bytes: wal.log_bytes(),
    };
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records: u64 = flag(&args, "--records").unwrap_or(400);
    let payload_len: usize = flag(&args, "--payload").unwrap_or(256);
    let appender_spec: String = flag(&args, "--appenders").unwrap_or_else(|| "1,8".to_string());
    let json_path: Option<String> = flag(&args, "--json");
    let min_speedup: Option<f64> = flag(&args, "--min-group-speedup");

    let appender_counts: Vec<usize> = appender_spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if appender_counts.is_empty() {
        eprintln!("--appenders must be a comma list of positive counts, got {appender_spec:?}");
        std::process::exit(2);
    }
    let payload = vec![0xA5u8; payload_len];

    let policies = [
        FsyncPolicy::Never,
        FsyncPolicy::Group(Duration::from_millis(5)),
        FsyncPolicy::Always,
    ];
    let mut results = Vec::new();
    for &appenders in &appender_counts {
        // Same total record count per case, split across the appenders,
        // so rows are comparable within one appender count.
        let per_appender = (records / appenders as u64).max(1);
        for policy in policies {
            let r = run_case(policy, appenders, per_appender, &payload);
            eprintln!(
                "[walbench] policy={:<10} appenders={} records={} {:>10.0} appends/s fsyncs={} (mean {:.0}us)",
                r.policy,
                r.appenders,
                r.records,
                r.appends_per_sec(),
                r.fsyncs,
                r.fsync_mean_us
            );
            results.push(r);
        }
    }

    // Headline: at the highest concurrency, group commit vs one-fsync-per-
    // append. >1 means batching recovered real throughput.
    let top = *appender_counts.iter().max().unwrap();
    let rate = |policy: &str| {
        results
            .iter()
            .find(|r| r.appenders == top && r.policy == policy)
            .map(|r| r.appends_per_sec())
            .unwrap_or(0.0)
    };
    let group_rate = rate("group(5ms)");
    let always_rate = rate("always");
    let speedup = if always_rate > 0.0 {
        group_rate / always_rate
    } else {
        0.0
    };

    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"policy\": \"{}\", \"appenders\": {}, \"records\": {}, \"elapsed_s\": {:.4}, \
             \"appends_per_sec\": {:.1}, \"fsyncs\": {}, \"fsync_mean_us\": {:.1}, \"log_bytes\": {}}}",
            r.policy,
            r.appenders,
            r.records,
            r.elapsed.as_secs_f64(),
            r.appends_per_sec(),
            r.fsyncs,
            r.fsync_mean_us,
            r.log_bytes
        ));
    }
    let report = format!(
        "{{\n  \"bench\": \"wal_append\",\n  \"payload_bytes\": {payload_len},\n  \
         \"group_vs_always_speedup\": {speedup:.2},\n  \"speedup_at_appenders\": {top},\n  \
         \"cases\": [\n{rows}\n  ]\n}}"
    );
    println!("{report}");
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!(
                "[walbench] GATE FAILED: group_vs_always_speedup {speedup:.2} < --min-group-speedup {min}"
            );
            std::process::exit(1);
        }
    }
}
