//! Plain-text experiment reports: paper-style tables written to stdout and
//! collected for `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// An accumulating report: titled sections of aligned tables.
#[derive(Clone, Debug, Default)]
pub struct Report {
    buf: String,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a titled section.
    pub fn section(&mut self, title: &str) {
        let _ = writeln!(self.buf, "\n== {title} ==");
    }

    /// Add a free-form line.
    pub fn line(&mut self, text: &str) {
        let _ = writeln!(self.buf, "{text}");
    }

    /// Add an aligned table; `rows` include the header as the first row.
    pub fn table(&mut self, rows: &[Vec<String>]) {
        if rows.is_empty() {
            return;
        }
        let ncols = rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        for (i, row) in rows.iter().enumerate() {
            let mut line = String::new();
            for c in 0..ncols {
                let cell = row.get(c).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<width$}  ", width = widths[c]);
            }
            let _ = writeln!(self.buf, "{}", line.trim_end());
            if i == 0 {
                let total: usize = widths.iter().map(|w| w + 2).sum();
                let _ = writeln!(self.buf, "{}", "-".repeat(total.saturating_sub(2)));
            }
        }
    }

    /// The accumulated text.
    pub fn text(&self) -> &str {
        &self.buf
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.buf);
    }

    /// Append to a file on disk.
    pub fn append_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(self.buf.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_and_tables() {
        let mut r = Report::new();
        r.section("Fig 6");
        r.table(&[
            vec!["d".into(), "time".into()],
            vec!["2".into(), "43".into()],
            vec!["3".into(), "502".into()],
        ]);
        let text = r.text();
        assert!(text.contains("== Fig 6 =="));
        assert!(text.contains("502"));
        // Header separator present.
        assert!(text.contains("---"));
    }

    #[test]
    fn empty_table_is_noop() {
        let mut r = Report::new();
        r.table(&[]);
        assert!(r.text().is_empty());
    }
}
