//! Bucketing queries by answer counts, as in Figures 7–9 ("group 10²
//! contains all queries with 10–99 tree patterns").

use std::collections::BTreeMap;

/// The paper's log₁₀ bucket of a count: `10^⌈log10(c+1)⌉`-style grouping —
/// bucket `10` holds counts 1–9, bucket `100` holds 10–99, etc. Zero counts
/// land in bucket 1.
pub fn bucket_of(count: u64) -> u64 {
    let mut bucket = 1u64;
    let mut c = count;
    while c > 0 {
        bucket = bucket.saturating_mul(10);
        c /= 10;
    }
    bucket.max(1)
}

/// Values grouped by bucket (ordered).
#[derive(Clone, Debug, Default)]
pub struct Bucketed<T> {
    groups: BTreeMap<u64, Vec<T>>,
}

impl<T> Bucketed<T> {
    /// Empty grouping.
    pub fn new() -> Self {
        Bucketed {
            groups: BTreeMap::new(),
        }
    }

    /// Insert `value` under the bucket of `count`.
    pub fn insert(&mut self, count: u64, value: T) {
        self.groups.entry(bucket_of(count)).or_default().push(value);
    }

    /// Iterate `(bucket, values)` in ascending bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[T])> {
        self.groups.iter().map(|(&b, v)| (b, v.as_slice()))
    }

    /// Number of non-empty buckets.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no values were inserted.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 1);
        assert_eq!(bucket_of(1), 10);
        assert_eq!(bucket_of(9), 10);
        assert_eq!(bucket_of(10), 100);
        assert_eq!(bucket_of(99), 100);
        assert_eq!(bucket_of(100), 1000);
        assert_eq!(bucket_of(123_456), 1_000_000);
    }

    #[test]
    fn grouping() {
        let mut b = Bucketed::new();
        b.insert(5, "a");
        b.insert(7, "b");
        b.insert(50, "c");
        assert_eq!(b.len(), 2);
        let groups: Vec<(u64, usize)> = b.iter().map(|(k, v)| (k, v.len())).collect();
        assert_eq!(groups, vec![(10, 2), (100, 1)]);
    }
}
