//! Shared dataset construction for benches and the experiments binary,
//! with on-disk snapshot caching so repeated runs skip regeneration.

use patternkb_datagen::{imdb, wiki, ImdbConfig, WikiConfig};
use patternkb_graph::{snapshot, KnowledgeGraph};
use std::path::PathBuf;

/// Experiment scale, selecting generator configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast graphs for Criterion benches and smoke runs.
    Small,
    /// The default experiment scale (minutes end-to-end).
    Full,
}

impl Scale {
    /// Parse from a CLI flag / env string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Wiki generator config for a scale.
pub fn wiki_config(scale: Scale) -> WikiConfig {
    match scale {
        Scale::Small => WikiConfig {
            entities: 3_000,
            types: 40,
            attrs_per_type: 4,
            attr_pool: 25,
            vocab: 400,
            avg_degree: 4.0,
            value_pool: 120,
            seed: 42,
            ..WikiConfig::default()
        },
        Scale::Full => WikiConfig::default(),
    }
}

/// IMDB generator config for a scale.
pub fn imdb_config(scale: Scale) -> ImdbConfig {
    match scale {
        Scale::Small => ImdbConfig {
            movies: 2_000,
            seed: 42,
        },
        Scale::Full => ImdbConfig::default(),
    }
}

fn cache_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("patternkb-datasets");
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn cached(name: &str, make: impl FnOnce() -> KnowledgeGraph) -> KnowledgeGraph {
    let path = cache_dir().join(format!("{name}.pkbg"));
    if let Ok(g) = snapshot::load(&path) {
        return g;
    }
    let g = make();
    snapshot::save(&g, &path).ok();
    g
}

/// The Wiki-like dataset at `scale` (cached under the system temp dir).
pub fn wiki_graph(scale: Scale) -> KnowledgeGraph {
    let cfg = wiki_config(scale);
    cached(&format!("wiki-{}-{}", cfg.entities, cfg.seed), || {
        wiki(&cfg)
    })
}

/// The IMDB-like dataset at `scale`.
pub fn imdb_graph(scale: Scale) -> KnowledgeGraph {
    let cfg = imdb_config(scale);
    cached(&format!("imdb-{}-{}", cfg.movies, cfg.seed), || imdb(&cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn small_graphs_build_and_cache() {
        let a = wiki_graph(Scale::Small);
        let b = wiki_graph(Scale::Small); // cache hit
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        let i = imdb_graph(Scale::Small);
        assert!(i.num_nodes() > 2_000);
    }
}
