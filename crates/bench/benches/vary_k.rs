//! Exp-IV: the result size k barely affects execution time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_index::BuildConfig;
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{Algorithm, Query, SearchConfig, SearchEngine};
use patternkb_text::SynonymTable;

fn bench_vary_k(c: &mut Criterion) {
    let e = SearchEngine::build(
        wiki_graph(Scale::Small),
        SynonymTable::default_english(),
        &BuildConfig { d: 3, threads: 0 },
    );
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 41);
    let queries: Vec<Query> = (0..8)
        .filter_map(|_| qg.anchored(3))
        .map(|s| Query::from_ids(s.keywords))
        .collect();
    let mut group = c.benchmark_group("expIV_vary_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [10usize, 50, 100] {
        let cfg = SearchConfig::top(k);
        group.bench_with_input(BenchmarkId::new("letopk", k), &k, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(e.search_with(
                        q,
                        &cfg,
                        Algorithm::LinearEnumTopK(SamplingConfig::exact()),
                    ));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("petopk", k), &k, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(e.search_with(q, &cfg, Algorithm::PatternEnum));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_k);
criterion_main!(benches);
