//! Exp-IV: the result size k barely affects execution time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_bench::harness::{engine, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_search::{AlgorithmChoice, Query};

fn bench_vary_k(c: &mut Criterion) {
    let e = engine(wiki_graph(Scale::Small), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 41);
    let queries: Vec<Query> = (0..8)
        .filter_map(|_| qg.anchored(3))
        .map(|s| Query::from_ids(s.keywords))
        .collect();
    let mut group = c.benchmark_group("expIV_vary_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("letopk", k), &k, |b, &k| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(
                        &e,
                        q,
                        k,
                        AlgorithmChoice::LinearEnumTopK,
                        None,
                    ));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("petopk", k), &k, |b, &k| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(
                        &e,
                        q,
                        k,
                        AlgorithmChoice::PatternEnum,
                        None,
                    ));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_k);
criterion_main!(benches);
