//! The §4.1 adversarial construction: PATTERNENUM's Θ(p²) empty joins vs
//! LINEARENUM's immediate exit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::harness::{engine_plain, respond_algo};
use patternkb_datagen::worstcase::{worstcase, W1, W2};
use patternkb_search::AlgorithmChoice;

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec41_worst_case");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for p in [16usize, 64, 256] {
        let e = engine_plain(worstcase(p), 2);
        let q = e.parse(&format!("{W1} {W2}")).unwrap();
        group.bench_with_input(BenchmarkId::new("petopk", p), &p, |b, _| {
            b.iter(|| {
                criterion::black_box(respond_algo(&e, &q, 10, AlgorithmChoice::PatternEnum, None))
            });
        });
        group.bench_with_input(BenchmarkId::new("letopk", p), &p, |b, _| {
            b.iter(|| {
                criterion::black_box(respond_algo(
                    &e,
                    &q,
                    10,
                    AlgorithmChoice::LinearEnumTopK,
                    None,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worst_case);
criterion_main!(benches);
