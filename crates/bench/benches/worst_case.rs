//! The §4.1 adversarial construction: PATTERNENUM's Θ(p²) empty joins vs
//! LINEARENUM's immediate exit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_datagen::worstcase::{worstcase, W1, W2};
use patternkb_index::BuildConfig;
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{Algorithm, SearchConfig, SearchEngine};
use patternkb_text::SynonymTable;

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec41_worst_case");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for p in [16usize, 64, 256] {
        let e = SearchEngine::build(
            worstcase(p),
            SynonymTable::new(),
            &BuildConfig { d: 2, threads: 1 },
        );
        let q = e.parse(&format!("{W1} {W2}")).unwrap();
        let cfg = SearchConfig::top(10);
        group.bench_with_input(BenchmarkId::new("petopk", p), &p, |b, _| {
            b.iter(|| criterion::black_box(e.search_with(&q, &cfg, Algorithm::PatternEnum)));
        });
        group.bench_with_input(BenchmarkId::new("letopk", p), &p, |b, _| {
            b.iter(|| {
                criterion::black_box(e.search_with(
                    &q,
                    &cfg,
                    Algorithm::LinearEnumTopK(SamplingConfig::exact()),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worst_case);
criterion_main!(benches);
