//! Service-level throughput: a repeated request workload through (a) the
//! engine directly, (b) the serving handle's built-in version-aware
//! cache, and (c) the parallel batch API. Keyword search is an online
//! service (§2.2.4 argues `d` exists for "in-time response"), so
//! requests/second matters as much as single-query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_search::{AlgorithmChoice, EngineBuilder, Query, SearchRequest};
use patternkb_text::SynonymTable;

fn bench_throughput(c: &mut Criterion) {
    let shared = EngineBuilder::new()
        .graph(wiki_graph(Scale::Small))
        .synonyms(SynonymTable::new())
        .height(3)
        .cache_capacity(32)
        .build_shared()
        .expect("bench engine builds");
    let snapshot = shared.snapshot();
    let mut qg = QueryGenerator::new(snapshot.graph(), snapshot.text(), 3, 53);
    // A workload with repetition (Zipf-ish): 8 distinct queries cycled.
    let distinct: Vec<Query> = (0..8)
        .filter_map(|i| qg.anchored(1 + (i % 3)))
        .map(|s| Query::from_ids(s.keywords))
        .collect();
    let workload: Vec<SearchRequest> = (0..64)
        .map(|i| {
            SearchRequest::query(distinct[i % distinct.len()].clone())
                .k(10)
                .max_rows(4)
                .algorithm(AlgorithmChoice::PatternEnumPruned)
        })
        .collect();

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(workload.len() as u64));

    group.bench_function("direct", |b| {
        b.iter(|| {
            for req in &workload {
                criterion::black_box(snapshot.respond(req).expect("pre-parsed"));
            }
        });
    });

    // Steady-state cached serving: after the first pass every distinct
    // request is a version-checked cache hit.
    group.bench_function("cached", |b| {
        b.iter(|| {
            for req in &workload {
                criterion::black_box(shared.respond(req).expect("pre-parsed"));
            }
        });
    });

    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| criterion::black_box(snapshot.respond_batch(&workload, threads)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
