//! Service-level throughput: a repeated query workload through (a) the
//! engine directly, (b) the version-aware result cache, and (c) the
//! parallel batch API. Keyword search is an online service (§2.2.4 argues
//! `d` exists for "in-time response"), so requests/second matters as much
//! as single-query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_index::BuildConfig;
use patternkb_search::cache::QueryCache;
use patternkb_search::{Algorithm, Query, SearchConfig, SearchEngine};
use patternkb_text::SynonymTable;

fn bench_throughput(c: &mut Criterion) {
    let e = SearchEngine::build(
        wiki_graph(Scale::Small),
        SynonymTable::new(),
        &BuildConfig { d: 3, threads: 0 },
    );
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 53);
    // A workload with repetition (Zipf-ish): 8 distinct queries cycled.
    let distinct: Vec<Query> = (0..8)
        .filter_map(|i| qg.anchored(1 + (i % 3)))
        .map(|s| Query::from_ids(s.keywords))
        .collect();
    let workload: Vec<Query> = (0..64)
        .map(|i| distinct[i % distinct.len()].clone())
        .collect();
    let cfg = SearchConfig {
        max_rows: 4,
        ..SearchConfig::top(10)
    };

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(workload.len() as u64));

    group.bench_function("direct", |b| {
        b.iter(|| {
            for q in &workload {
                criterion::black_box(e.search_with(q, &cfg, Algorithm::PatternEnumPruned));
            }
        });
    });

    group.bench_function("cached", |b| {
        b.iter(|| {
            let cache = QueryCache::new(32);
            for q in &workload {
                criterion::black_box(cache.get_or_compute(
                    &e,
                    q,
                    &cfg,
                    Algorithm::PatternEnumPruned,
                ));
            }
        });
    });

    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    criterion::black_box(e.search_batch(
                        &workload,
                        &cfg,
                        Algorithm::PatternEnumPruned,
                        threads,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
