//! Ablation: incremental index refresh vs full rebuild after a graph
//! mutation, across delta sizes. The refresh re-enumerates only roots
//! within reverse distance `d − 1` of the touched nodes, so its cost
//! tracks the delta's neighbourhood, not the knowledge-base size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_graph::mutate::{GraphDelta, PagerankMode};
use patternkb_graph::KnowledgeGraph;
use patternkb_index::{build_indexes, refresh_indexes, BuildConfig, PathIndexes};
use patternkb_text::{SynonymTable, TextIndex};

/// A delta adding `batch` entities, each linked to an existing node.
fn make_delta(g: &KnowledgeGraph, batch: usize) -> GraphDelta {
    let comp = g.types().iter().nth(1).map(|(t, _)| t).expect("a type");
    let attr = g.attrs().iter().next().map(|(a, _)| a).expect("an attr");
    let mut d = GraphDelta::new(g);
    for i in 0..batch {
        let v = d
            .add_node(comp, &format!("streamed entity number {i}"))
            .unwrap();
        let anchor = patternkb_graph::NodeId((i * 97 % g.num_nodes()) as u32);
        d.add_edge(anchor, attr, v).unwrap();
    }
    d
}

fn bench_incremental(c: &mut Criterion) {
    let cfg = BuildConfig {
        d: 3,
        threads: 1,
        shards: 1,
    };
    let g = wiki_graph(Scale::Small);
    let text = TextIndex::build(&g, SynonymTable::new());
    let idx = build_indexes(&g, &text, &cfg);

    let mut group = c.benchmark_group("incremental_vs_rebuild");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for batch in [1usize, 16, 128] {
        let delta = make_delta(&g, batch);
        let g2 = delta.apply(&g, PagerankMode::Frozen).unwrap();
        let text2 = TextIndex::build(&g2, SynonymTable::new());
        let dirty = delta.dirty_nodes();

        group.bench_with_input(BenchmarkId::new("refresh", batch), &batch, |b, _| {
            b.iter(|| {
                let (idx2, _): (PathIndexes, _) =
                    refresh_indexes(&idx, &g, &g2, &text, &text2, &dirty, false);
                criterion::black_box(idx2.num_postings())
            });
        });
        group.bench_with_input(BenchmarkId::new("rebuild", batch), &batch, |b, _| {
            b.iter(|| {
                let idx2 = build_indexes(&g2, &text2, &cfg);
                criterion::black_box(idx2.num_postings())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
