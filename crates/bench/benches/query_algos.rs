//! Figures 7–9: the three query algorithms on Wiki-like and IMDB-like KBs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{imdb_graph, wiki_graph, Scale};
use patternkb_bench::harness::{engine, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_search::{AlgorithmChoice, Query, SearchEngine};

fn queries_for(e: &SearchEngine, n: usize, seed: u64) -> Vec<Query> {
    let mut qg = QueryGenerator::new(e.graph(), e.text(), e.d(), seed);
    let mut out = Vec::new();
    for m in [2usize, 3, 4].iter().cycle() {
        if out.len() >= n {
            break;
        }
        if let Some(spec) = qg.anchored(*m) {
            out.push(Query::from_ids(spec.keywords));
        }
    }
    out
}

fn bench_dataset(c: &mut Criterion, name: &str, e: &SearchEngine) {
    let queries = queries_for(e, 12, 17);
    let algos: [(&str, AlgorithmChoice); 3] = [
        ("baseline", AlgorithmChoice::Baseline),
        ("letopk", AlgorithmChoice::LinearEnumTopK),
        ("petopk", AlgorithmChoice::PatternEnum),
    ];
    let mut group = c.benchmark_group(format!("query_algos_{name}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (aname, algo) in algos {
        group.bench_with_input(BenchmarkId::from_parameter(aname), &algo, |b, algo| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(e, q, 100, *algo, None));
                }
            });
        });
    }
    group.finish();
}

fn bench_query_algos(c: &mut Criterion) {
    let wiki = engine(wiki_graph(Scale::Small), 3);
    bench_dataset(c, "wiki", &wiki);
    let imdb = engine(imdb_graph(Scale::Small), 3);
    bench_dataset(c, "imdb", &imdb);
}

criterion_group!(benches, bench_query_algos);
criterion_main!(benches);
