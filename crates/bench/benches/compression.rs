//! Ablation: compressed posting tier — encode cost, per-word decode cost
//! (the unit touched by a query), and full decompression; space savings
//! are printed alongside (criterion measures time, the harness's
//! `experiments ablation` section reports the ratio table).

use criterion::{criterion_group, criterion_main, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_index::compress::CompressedPathIndexes;
use patternkb_index::{build_indexes, BuildConfig};
use patternkb_text::{SynonymTable, TextIndex};

fn bench_compression(c: &mut Criterion) {
    let g = wiki_graph(Scale::Small);
    let text = TextIndex::build(&g, SynonymTable::new());
    let idx = build_indexes(
        &g,
        &text,
        &BuildConfig {
            d: 3,
            threads: 1,
            shards: 1,
        },
    );
    let comp = CompressedPathIndexes::compress(&idx);
    eprintln!(
        "compression: {} postings, {} -> {} bytes (ratio {:.3})",
        idx.num_postings(),
        idx.heap_bytes(),
        comp.heap_bytes(),
        comp.ratio_against(&idx)
    );
    // The most common word = heaviest per-word decode.
    let (hot_word, _) = idx.shards()[0]
        .iter_words()
        .max_by_key(|(_, w)| w.len())
        .expect("non-empty index");

    let mut group = c.benchmark_group("compressed_tier");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("encode_all", |b| {
        b.iter(|| criterion::black_box(CompressedPathIndexes::compress(&idx).num_postings()));
    });
    group.bench_function("decode_hot_word", |b| {
        b.iter(|| {
            let w = comp.decompress_word(hot_word).unwrap().unwrap();
            criterion::black_box(w.len())
        });
    });
    group.bench_function("decode_all", |b| {
        b.iter(|| criterion::black_box(comp.decompress().unwrap().num_postings()));
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
