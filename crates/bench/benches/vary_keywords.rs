//! Figure 16 (appendix): execution time vs number of keywords.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_bench::harness::{engine, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_search::{AlgorithmChoice, Query};

fn bench_vary_keywords(c: &mut Criterion) {
    let e = engine(wiki_graph(Scale::Small), 3);
    let mut group = c.benchmark_group("fig16_vary_keywords");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for m in [1usize, 2, 4, 6] {
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 67);
        let queries: Vec<Query> = (0..6)
            .filter_map(|_| qg.anchored(m))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(
                        &e,
                        q,
                        100,
                        AlgorithmChoice::PatternEnum,
                        None,
                    ));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_keywords);
criterion_main!(benches);
