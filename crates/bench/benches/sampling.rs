//! Figures 11–12: LETopK sampling — threshold and rate sweeps on a heavy
//! query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_bench::harness::{engine, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{AlgorithmChoice, Query, SearchEngine};

fn heavy_query(e: &SearchEngine) -> Query {
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 53);
    let mut best: Option<(Query, u64)> = None;
    for _ in 0..200 {
        if let Some(spec) = qg.anchored(2) {
            let q = Query::from_ids(spec.keywords);
            let n = e.count_subtrees(&q);
            if best.as_ref().map(|(_, b)| n > *b).unwrap_or(true) {
                best = Some((q, n));
            }
        }
    }
    best.expect("heavy query").0
}

fn bench_sampling(c: &mut Criterion) {
    let e = engine(wiki_graph(Scale::Small), 3);
    let q = heavy_query(&e);

    let mut group = c.benchmark_group("fig12_sampling_rate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for rho in [0.05f64, 0.1, 0.2, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, &rho| {
            b.iter(|| {
                criterion::black_box(respond_algo(
                    &e,
                    &q,
                    100,
                    AlgorithmChoice::LinearEnumTopK,
                    Some(SamplingConfig::new(0, rho, 77)),
                ))
            });
        });
    }
    group.bench_function("petopk_reference", |b| {
        b.iter(|| {
            criterion::black_box(respond_algo(
                &e,
                &q,
                100,
                AlgorithmChoice::PatternEnum,
                None,
            ))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("fig11_sampling_threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for lambda in [100u64, 10_000, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(lambda),
            &lambda,
            |b, &lambda| {
                b.iter(|| {
                    criterion::black_box(respond_algo(
                        &e,
                        &q,
                        100,
                        AlgorithmChoice::LinearEnumTopK,
                        Some(SamplingConfig::new(lambda, 0.1, 77)),
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
