//! Figure 6: index construction time for height thresholds d = 2, 3, 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_index::{build_indexes, BuildConfig};
use patternkb_text::{SynonymTable, TextIndex};

fn bench_index_build(c: &mut Criterion) {
    let g = wiki_graph(Scale::Small);
    let text = TextIndex::build(&g, SynonymTable::default_english());
    let mut group = c.benchmark_group("fig6_index_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for d in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                build_indexes(
                    &g,
                    &text,
                    &BuildConfig {
                        d,
                        threads: 0,
                        shards: 0,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
