//! Figure 10: execution time on induced subgraphs (fractions of entities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_bench::harness::{engine, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_graph::subgraph;
use patternkb_search::{AlgorithmChoice, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_scalability(c: &mut Criterion) {
    let g = wiki_graph(Scale::Small);
    let mut group = c.benchmark_group("fig10_scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for pct in [25usize, 50, 75, 100] {
        let mut rng = SmallRng::seed_from_u64(31);
        let frac = pct as f64 / 100.0;
        let sub = subgraph::induced_by(&g, |_| rng.gen::<f64>() < frac);
        let e = engine(sub.graph, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 37);
        let queries: Vec<Query> = (0..8)
            .filter_map(|_| qg.anchored(3))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(
                        &e,
                        q,
                        100,
                        AlgorithmChoice::PatternEnum,
                        None,
                    ));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
