//! Figure 10: execution time on induced subgraphs (fractions of entities),
//! plus the shard-scaling sweep: query latency on the Zipf-skewed Wiki KB
//! as the index goes from one root-range shard to one per core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_bench::harness::{engine, engine_sharded, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_graph::subgraph;
use patternkb_search::{AlgorithmChoice, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_scalability(c: &mut Criterion) {
    let g = wiki_graph(Scale::Small);
    let mut group = c.benchmark_group("fig10_scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for pct in [25usize, 50, 75, 100] {
        let mut rng = SmallRng::seed_from_u64(31);
        let frac = pct as f64 / 100.0;
        let sub = subgraph::induced_by(&g, |_| rng.gen::<f64>() < frac);
        let e = engine(sub.graph, 3);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 37);
        let queries: Vec<Query> = (0..8)
            .filter_map(|_| qg.anchored(3))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(
                        &e,
                        q,
                        100,
                        AlgorithmChoice::PatternEnum,
                        None,
                    ));
                }
            });
        });
    }
    group.finish();
}

/// Shard scaling: the same Zipf workload at shards ∈ {1, 2, 4, …, cores}.
/// Answers are bit-identical across the sweep; the interesting quantity is
/// how latency moves as shard workers spread over the cores.
fn bench_shard_scaling(c: &mut Criterion) {
    let g = wiki_graph(Scale::Small);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut shard_counts = vec![1usize];
    let mut s = 2;
    while s <= cores {
        shard_counts.push(s);
        s *= 2;
    }
    if *shard_counts.last().unwrap() != cores {
        shard_counts.push(cores);
    }

    let mut group = c.benchmark_group("shard_scaling_zipf");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &shards in &shard_counts {
        let e = engine_sharded(g.clone(), 3, shards);
        let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 53);
        let queries: Vec<Query> = (0..8)
            .filter_map(|_| qg.anchored(3))
            .map(|s| Query::from_ids(s.keywords))
            .collect();
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(respond_algo(
                        &e,
                        q,
                        100,
                        AlgorithmChoice::LinearEnum,
                        None,
                    ));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability, bench_shard_scaling);
criterion_main!(benches);
