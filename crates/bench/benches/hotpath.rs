//! Microbenches for the flattened query data plane: `BlockCursor::seek`
//! vs full binary search over decoded slices, and gallop (leapfrog)
//! intersection vs the naive shortest-list × binary-search kernel the
//! engine used to ship.

use criterion::{criterion_group, criterion_main, Criterion};
use patternkb_index::cursor::{intersect_naive, intersect_sorted};
use patternkb_index::BlockList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sorted_list(rng: &mut SmallRng, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// `seek` through a block list vs binary searching the decoded slice —
/// the compressed tier's skip-ahead primitive.
fn bench_block_seek(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let values = sorted_list(&mut rng, 200_000, 1 << 22);
    let list = BlockList::encode(&values);
    // Dense probing touches most blocks; sparse probing is where the
    // max-root skip entries shine (whole blocks skipped undecoded).
    let dense: Vec<u32> = sorted_list(&mut rng, 2_000, 1 << 22);
    let sparse: Vec<u32> = sorted_list(&mut rng, 64, 1 << 22);

    let mut g = c.benchmark_group("block_seek");
    for (seek_name, decode_name, targets) in [
        ("cursor_seek_dense", "decode_then_binsearch_dense", &dense),
        (
            "cursor_seek_sparse",
            "decode_then_binsearch_sparse",
            &sparse,
        ),
    ] {
        // Seek straight over the compressed-at-rest list.
        g.bench_function(seek_name, |b| {
            b.iter(|| {
                let mut cur = list.cursor();
                let mut hits = 0u32;
                for &t in targets.iter() {
                    if cur.seek(t).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        // What the pre-block engine had to do: decode the whole list,
        // then binary search it.
        g.bench_function(decode_name, |b| {
            b.iter(|| {
                let decoded = list.decode_all();
                let mut hits = 0u32;
                for &t in targets.iter() {
                    if decoded.partition_point(|&v| v < t) < decoded.len() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    // Context: binary search over an already-resident slice, and the cost
    // of one full decode.
    g.bench_function("resident_binsearch_dense", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &t in &dense {
                if values.partition_point(|&v| v < t) < values.len() {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.bench_function("block_decode_all", |b| b.iter(|| list.decode_all().len()));
    g.finish();
}

/// Gallop intersection vs the naive kernel on skewed list sizes (the
/// realistic posting shape: one short list, several long ones).
fn bench_intersection(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let long1 = sorted_list(&mut rng, 100_000, 1 << 20);
    let long2 = sorted_list(&mut rng, 50_000, 1 << 20);
    let short = sorted_list(&mut rng, 1_000, 1 << 20);
    let lists: Vec<&[u32]> = vec![&long1, &long2, &short];

    let mut g = c.benchmark_group("intersection");
    g.bench_function("gallop", |b| b.iter(|| intersect_sorted(&lists).len()));
    g.bench_function("naive", |b| b.iter(|| intersect_naive(&lists).len()));
    g.finish();
}

criterion_group!(benches, bench_block_seek, bench_intersection);
criterion_main!(benches);
