//! Ablation: `PATTERNENUM` with vs without admissible upper-bound pruning
//! (`search::bound`), on a realistic workload and on the §4.1 adversarial
//! construction. Answers are identical (asserted in tests); the question
//! here is the wall-clock effect of skipping provably-unranked
//! combinations at small k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_bench::harness::{engine_plain, respond_algo};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_datagen::worstcase::{worstcase, W1, W2};
use patternkb_search::{AlgorithmChoice, Query, SearchRequest};

fn bench_pruning_wiki(c: &mut Criterion) {
    let e = engine_plain(wiki_graph(Scale::Small), 3);
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 41);
    let queries: Vec<Query> = (0..12)
        .filter_map(|i| qg.anchored(2 + (i % 3)))
        .map(|s| Query::from_ids(s.keywords))
        .collect();

    let mut group = c.benchmark_group("pruning_wiki");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for k in [1usize, 10, 100] {
        let run = |algo: AlgorithmChoice| {
            let e = &e;
            let queries = &queries;
            move || {
                for q in queries {
                    let req = SearchRequest::query(q.clone())
                        .k(k)
                        .max_rows(4)
                        .compose_tables(false)
                        .algorithm(algo);
                    criterion::black_box(e.respond(&req).expect("pre-parsed"));
                }
            }
        };
        group.bench_with_input(BenchmarkId::new("exact", k), &k, |b, _| {
            b.iter(run(AlgorithmChoice::PatternEnum));
        });
        group.bench_with_input(BenchmarkId::new("pruned", k), &k, |b, _| {
            b.iter(run(AlgorithmChoice::PatternEnumPruned));
        });
    }
    group.finish();
}

fn bench_pruning_worstcase(c: &mut Criterion) {
    // §4.1: all p² combinations are *empty*, so the bound (which only
    // prunes against found scores) cannot help — this guards against
    // regressions where "pruned" pays overhead without wins.
    let p = 64usize;
    let e = engine_plain(worstcase(p), 2);
    let q = e.parse(&format!("{W1} {W2}")).unwrap();

    let mut group = c.benchmark_group("pruning_worstcase");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("exact", |b| {
        b.iter(|| {
            criterion::black_box(respond_algo(&e, &q, 10, AlgorithmChoice::PatternEnum, None))
        });
    });
    group.bench_function("pruned", |b| {
        b.iter(|| {
            criterion::black_box(respond_algo(
                &e,
                &q,
                10,
                AlgorithmChoice::PatternEnumPruned,
                None,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pruning_wiki, bench_pruning_worstcase);
criterion_main!(benches);
