//! Ablation: `PATTERNENUM` with vs without admissible upper-bound pruning
//! (`search::bound`), on a realistic workload and on the §4.1 adversarial
//! construction. Answers are identical (asserted in tests); the question
//! here is the wall-clock effect of skipping provably-unranked
//! combinations at small k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patternkb_bench::datasets::{wiki_graph, Scale};
use patternkb_datagen::queries::QueryGenerator;
use patternkb_datagen::worstcase::{worstcase, W1, W2};
use patternkb_index::BuildConfig;
use patternkb_search::{Algorithm, Query, SearchConfig, SearchEngine};
use patternkb_text::SynonymTable;

fn bench_pruning_wiki(c: &mut Criterion) {
    let e = SearchEngine::build(
        wiki_graph(Scale::Small),
        SynonymTable::new(),
        &BuildConfig { d: 3, threads: 0 },
    );
    let mut qg = QueryGenerator::new(e.graph(), e.text(), 3, 41);
    let queries: Vec<Query> = (0..12)
        .filter_map(|i| qg.anchored(2 + (i % 3)))
        .map(|s| Query::from_ids(s.keywords))
        .collect();

    let mut group = c.benchmark_group("pruning_wiki");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for k in [1usize, 10, 100] {
        let cfg = SearchConfig {
            max_rows: 4,
            ..SearchConfig::top(k)
        };
        group.bench_with_input(BenchmarkId::new("exact", k), &k, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(e.search_with(q, &cfg, Algorithm::PatternEnum));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("pruned", k), &k, |b, _| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(e.search_with(q, &cfg, Algorithm::PatternEnumPruned));
                }
            });
        });
    }
    group.finish();
}

fn bench_pruning_worstcase(c: &mut Criterion) {
    // §4.1: all p² combinations are *empty*, so the bound (which only
    // prunes against found scores) cannot help — this guards against
    // regressions where "pruned" pays overhead without wins.
    let p = 64usize;
    let e = SearchEngine::build(
        worstcase(p),
        SynonymTable::new(),
        &BuildConfig { d: 2, threads: 1 },
    );
    let q = e.parse(&format!("{W1} {W2}")).unwrap();
    let cfg = SearchConfig::top(10);

    let mut group = c.benchmark_group("pruning_worstcase");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("exact", |b| {
        b.iter(|| criterion::black_box(e.search_with(&q, &cfg, Algorithm::PatternEnum)));
    });
    group.bench_function("pruned", |b| {
        b.iter(|| criterion::black_box(e.search_with(&q, &cfg, Algorithm::PatternEnumPruned)));
    });
    group.finish();
}

criterion_group!(benches, bench_pruning_wiki, bench_pruning_worstcase);
criterion_main!(benches);
