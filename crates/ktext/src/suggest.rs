//! "Did you mean …?" keyword suggestions.
//!
//! Query parsing rejects keywords absent from the knowledge base
//! ([`crate::vocab`]); a production search box should offer corrections.
//! Candidates are all vocabulary words within **edit distance 1** of the
//! (canonicalized) input — deletion, insertion, substitution, or adjacent
//! transposition over `[a-z0-9]` — computed by candidate generation plus
//! vocabulary lookup, which at keyword lengths (≤ ~15 chars) beats a scan
//! of the whole vocabulary.

use crate::vocab::Vocabulary;
use patternkb_graph::WordId;

const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

/// All vocabulary words within edit distance 1 of `input`, canonicalized,
/// deduplicated, sorted by canonical text. The input's own canonical form
/// is excluded (if it were in the vocabulary, no suggestion is needed).
pub fn suggest(vocab: &Vocabulary, input: &str) -> Vec<(WordId, String)> {
    let canon = vocab.canonical_form(input);
    let mut found: Vec<(WordId, String)> = Vec::new();
    let push = |vocab: &Vocabulary, candidate: &str, found: &mut Vec<(WordId, String)>| {
        // Candidates go through the same canonicalization as real queries.
        if let Some(id) = vocab.lookup(candidate) {
            let text = vocab.resolve(id).to_string();
            if text != canon && !found.iter().any(|(i, _)| *i == id) {
                found.push((id, text));
            }
        }
    };

    let bytes = canon.as_bytes();
    let n = bytes.len();
    let mut buf = String::with_capacity(n + 1);

    // Deletions.
    for i in 0..n {
        buf.clear();
        buf.push_str(&canon[..i]);
        buf.push_str(&canon[i + 1..]);
        if !buf.is_empty() {
            push(vocab, &buf, &mut found);
        }
    }
    // Transpositions.
    for i in 0..n.saturating_sub(1) {
        let mut b = bytes.to_vec();
        b.swap(i, i + 1);
        if let Ok(s) = std::str::from_utf8(&b) {
            push(vocab, s, &mut found);
        }
    }
    // Substitutions.
    for i in 0..n {
        for &c in ALPHABET {
            if c == bytes[i] {
                continue;
            }
            let mut b = bytes.to_vec();
            b[i] = c;
            if let Ok(s) = std::str::from_utf8(&b) {
                push(vocab, s, &mut found);
            }
        }
    }
    // Insertions.
    for i in 0..=n {
        for &c in ALPHABET {
            buf.clear();
            buf.push_str(&canon[..i]);
            buf.push(c as char);
            buf.push_str(&canon[i..]);
            push(vocab, &buf, &mut found);
        }
    }

    found.sort_by(|a, b| a.1.cmp(&b.1));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synonyms::SynonymTable;

    fn vocab_with(words: &[&str]) -> Vocabulary {
        let mut v = Vocabulary::new(SynonymTable::new());
        for w in words {
            v.intern(w);
        }
        v
    }

    #[test]
    fn substitution() {
        let v = vocab_with(&["database", "software"]);
        let s = suggest(&v, "databese");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, "database");
    }

    #[test]
    fn insertion_completes_a_truncated_word() {
        let v = vocab_with(&["oracle"]);
        let s = suggest(&v, "oracl");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, "oracle");
    }

    #[test]
    fn transposition() {
        let v = vocab_with(&["revenue"]);
        let s = suggest(&v, "reevnue");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, "revenue");
    }

    #[test]
    fn missing_letter() {
        let v = vocab_with(&["company"]);
        let s = suggest(&v, "compny");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, "company");
    }

    #[test]
    fn extra_letter() {
        let v = vocab_with(&["oracle"]);
        let s = suggest(&v, "oracble");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, "oracle");
    }

    #[test]
    fn exact_word_yields_nothing_of_itself() {
        let v = vocab_with(&["database"]);
        let s = suggest(&v, "database");
        assert!(s.iter().all(|(_, t)| t != "database"));
    }

    #[test]
    fn no_candidates_for_distant_words() {
        let v = vocab_with(&["database"]);
        assert!(suggest(&v, "zzzzzzz").is_empty());
    }

    #[test]
    fn multiple_candidates_sorted() {
        let v = vocab_with(&["cat", "car", "can", "cab"]);
        let s = suggest(&v, "caq");
        let texts: Vec<&str> = s.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["cab", "can", "car", "cat"]);
    }

    #[test]
    fn stemming_applies_before_matching() {
        // "databses" canonicalizes via stem("databses") = "databse"(s-strip),
        // one substitution-insertion away from "database": the pipeline runs
        // on canonical forms, so the suggestion still lands.
        let v = vocab_with(&["databases"]);
        let s = suggest(&v, "databse");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, "database");
    }
}
