//! The classic Porter stemming algorithm (M. F. Porter, *An algorithm for
//! suffix stripping*, 1980) — the standard alternative to the default
//! Porter-lite stemmer in [`crate::stem`].
//!
//! The paper's index shares entries between "every word, its stemmed
//! version and synonyms" (§3) without prescribing a stemmer, so the choice
//! is a deployment knob: the lite stemmer is conservative (keeps entity
//! nouns like "server" intact), Porter is aggressive (collapses more
//! variants, smaller vocabulary, more recall, less precision). Both are
//! selectable through [`crate::stem::Stemmer`].
//!
//! This is a faithful transcription of the five-step rule tables operating
//! on ASCII bytes. Non-ASCII or digit-bearing tokens are returned
//! unchanged, matching the tokenizer's contract.

/// Stem one lowercase token with the Porter algorithm.
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// Is `w[i]` a consonant under Porter's definition (`y` is a consonant
/// when at the start or after a vowel)?
fn cons(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !cons(w, i - 1),
        _ => true,
    }
}

/// Porter's measure `m` of `w[..len]`: the number of vowel→consonant
/// transitions `(VC)^m` in the form `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && cons(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !cons(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        m += 1;
        // Skip consonants.
        while i < len && cons(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
    }
}

/// `*v*` — the stem `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !cons(w, i))
}

/// `*d` — `w[..len]` ends with a double consonant.
fn double_cons(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && cons(w, len - 1)
}

/// `*o` — `w[..len]` ends consonant–vowel–consonant where the final
/// consonant is not `w`, `x` or `y`.
fn cvc(w: &[u8], len: usize) -> bool {
    len >= 3
        && cons(w, len - 3)
        && !cons(w, len - 2)
        && cons(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// Replace `suffix` (must be present) with `repl`.
fn set_suffix(w: &mut Vec<u8>, suffix: &str, repl: &str) {
    let stem_len = w.len() - suffix.len();
    w.truncate(stem_len);
    w.extend_from_slice(repl.as_bytes());
}

/// If `w` ends with `suffix` and the remaining stem has `measure > min_m`,
/// replace it with `repl` and report success.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, repl: &str, min_m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > min_m {
            set_suffix(w, suffix, repl);
        }
        true // suffix matched: stop scanning the rule table either way
    } else {
        false
    }
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        set_suffix(w, "sses", "ss");
    } else if ends_with(w, "ies") {
        set_suffix(w, "ies", "i");
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        set_suffix(w, "s", "");
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            set_suffix(w, "eed", "ee");
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        set_suffix(w, "ed", "");
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        set_suffix(w, "ing", "");
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if double_cons(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.pop();
        } else if measure(w, w.len()) == 1 && cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let last = w.len() - 1;
        w[last] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for &(suffix, repl) in RULES {
        if replace_if_m(w, suffix, repl, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for &(suffix, repl) in RULES {
        if replace_if_m(w, suffix, repl, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len >= 1 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in RULES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && double_cons(w, w.len()) && w[w.len() - 1] == b'l' {
        w.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical (input, output) pairs from Porter's 1980 paper.
    const VECTORS: &[(&str, &str)] = &[
        // step 1a
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("caress", "caress"),
        ("cats", "cat"),
        // step 1b
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        // step 1c
        ("happy", "happi"),
        ("sky", "sky"),
        // step 2
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("digitizer", "digit"),
        ("radically", "radic"),
        ("differently", "differ"),
        ("analogously", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formality", "formal"),
        ("sensitivity", "sensit"),
        ("sensibility", "sensibl"),
        // step 3
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electricity", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        // step 4
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angularity", "angular"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        // step 5
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controlling", "control"),
        ("rolling", "roll"),
        // the domain words the paper's examples revolve around
        ("databases", "databas"),
        ("database", "databas"),
        ("companies", "compani"),
        ("company", "compani"),
        ("movies", "movi"),
        ("movie", "movi"),
        ("revenues", "revenu"),
        ("revenue", "revenu"),
    ];

    #[test]
    fn canonical_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(porter_stem(input), *expected, "porter_stem({input:?})");
        }
    }

    #[test]
    fn variants_collapse_together() {
        for group in [
            &["database", "databases"][..],
            &["company", "companies"],
            &["movie", "movies"],
            &["publish", "published", "publishing"],
            &["relate", "related", "relating"],
        ] {
            let stems: Vec<String> = group.iter().map(|w| porter_stem(w)).collect();
            assert!(
                stems.windows(2).all(|p| p[0] == p[1]),
                "group {group:?} produced {stems:?}"
            );
        }
    }

    #[test]
    fn short_and_nonascii_untouched() {
        assert_eq!(porter_stem("db"), "db");
        assert_eq!(porter_stem("c"), "c");
        assert_eq!(porter_stem("db2"), "db2");
        assert_eq!(porter_stem("naïve"), "naïve");
        assert_eq!(porter_stem("US77"), "US77");
    }

    #[test]
    fn measure_examples() {
        // From the paper: tr=0, ee=0 ... tree m=0, trouble(s)…
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("ee"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("y"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("trees"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
        assert_eq!(m("oaten"), 2);
    }

    #[test]
    fn cvc_edge_cases() {
        assert!(cvc(b"hop", 3));
        assert!(!cvc(b"box", 3), "x excluded");
        assert!(!cvc(b"low", 3), "w excluded");
        assert!(!cvc(b"ee", 2));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn never_panics_and_never_grows(s in "[a-z]{0,24}") {
                let out = porter_stem(&s);
                prop_assert!(out.len() <= s.len());
                prop_assert!(out.is_ascii());
            }

            #[test]
            fn deterministic(s in "[a-z]{1,16}") {
                prop_assert_eq!(porter_stem(&s), porter_stem(&s));
            }
        }
    }
}
