//! Keyword match index over a knowledge graph.
//!
//! For every node, entity type and attribute type the index stores the
//! sorted set of canonical token ids of its text, plus inverted lists
//!
//! * `word → nodes` whose text **or** type text contains the word
//!   (condition ii of §2.2.1: a keyword may appear "in the text description
//!   of a node or node type"), and
//! * `word → attribute types` whose text contains the word.
//!
//! It also answers the Jaccard term `sim(w, f(w))` of Eq. (6). When a word
//! occurs both in a node's own text and in its type text the paper's `sim`
//! is ambiguous; we resolve it as the **maximum** over the matching sources
//! (see DESIGN.md §2 — the only reading consistent with Example 2.4).

use crate::synonyms::SynonymTable;
use crate::vocab::Vocabulary;
use patternkb_graph::ids::Id;
use patternkb_graph::{AttrId, FxHashMap, KnowledgeGraph, NodeId, TypeId, WordId};

/// Immutable keyword match index; build once per graph with
/// [`TextIndex::build`].
pub struct TextIndex {
    vocab: Vocabulary,
    /// CSR: distinct sorted token ids of each node's text.
    node_tok_offsets: Vec<u32>,
    node_toks: Vec<WordId>,
    /// Distinct sorted token ids of each entity type's text.
    type_toks: Vec<Vec<WordId>>,
    /// Distinct sorted token ids of each attribute type's text.
    attr_toks: Vec<Vec<WordId>>,
    /// word → sorted node ids matching via node text or type text.
    word_nodes: FxHashMap<WordId, Vec<NodeId>>,
    /// word → sorted attribute ids whose text contains the word.
    word_attrs: FxHashMap<WordId, Vec<AttrId>>,
    /// attr → sorted distinct source nodes having an out-edge of this attr
    /// (used by the baseline's backward search over edge matches).
    attr_sources: Vec<Vec<NodeId>>,
}

impl TextIndex {
    /// Build the index for `g`, canonicalizing through `synonyms` with the
    /// default ([`crate::stem::Stemmer::Lite`]) stemmer.
    pub fn build(g: &KnowledgeGraph, synonyms: SynonymTable) -> Self {
        Self::build_with(g, synonyms, crate::stem::Stemmer::Lite)
    }

    /// Build the index with an explicit stemmer (see
    /// [`crate::stem::Stemmer`] for the trade-offs).
    pub fn build_with(
        g: &KnowledgeGraph,
        synonyms: SynonymTable,
        stemmer: crate::stem::Stemmer,
    ) -> Self {
        let mut vocab = Vocabulary::with_stemmer(synonyms, stemmer);
        let n = g.num_nodes();

        let type_toks: Vec<Vec<WordId>> = (0..g.num_types())
            .map(|t| vocab.intern_token_set(g.type_text(TypeId(t as u32))))
            .collect();
        let attr_toks: Vec<Vec<WordId>> = (0..g.num_attrs())
            .map(|a| vocab.intern_token_set(g.attr_text(AttrId(a as u32))))
            .collect();

        let mut node_tok_offsets = Vec::with_capacity(n + 1);
        node_tok_offsets.push(0u32);
        let mut node_toks = Vec::new();
        for v in g.nodes() {
            let set = vocab.intern_token_set(g.node_text(v));
            node_toks.extend_from_slice(&set);
            node_tok_offsets.push(node_toks.len() as u32);
        }

        // Inverted word → nodes (text ∪ type text).
        let mut word_nodes: FxHashMap<WordId, Vec<NodeId>> = FxHashMap::default();
        let mut scratch: Vec<WordId> = Vec::new();
        for v in g.nodes() {
            let lo = node_tok_offsets[v.index()] as usize;
            let hi = node_tok_offsets[v.index() + 1] as usize;
            scratch.clear();
            scratch.extend_from_slice(&node_toks[lo..hi]);
            scratch.extend_from_slice(&type_toks[g.node_type(v).index()]);
            scratch.sort_unstable();
            scratch.dedup();
            for &w in &scratch {
                word_nodes.entry(w).or_default().push(v);
            }
        }
        // Node ids were visited in order, so the lists are already sorted.

        let mut word_attrs: FxHashMap<WordId, Vec<AttrId>> = FxHashMap::default();
        for (a, toks) in attr_toks.iter().enumerate() {
            for &w in toks {
                word_attrs.entry(w).or_default().push(AttrId(a as u32));
            }
        }
        for list in word_attrs.values_mut() {
            list.sort_unstable();
            list.dedup();
        }

        let mut attr_sources: Vec<Vec<NodeId>> = vec![Vec::new(); g.num_attrs()];
        for v in g.nodes() {
            for (a, _) in g.out_edges(v) {
                let list = &mut attr_sources[a.index()];
                if list.last() != Some(&v) {
                    list.push(v);
                }
            }
        }

        TextIndex {
            vocab,
            node_tok_offsets,
            node_toks,
            type_toks,
            attr_toks,
            word_nodes,
            word_attrs,
            attr_sources,
        }
    }

    /// The canonical vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Canonical id of a raw query token, if it occurs anywhere in the KB.
    pub fn lookup_word(&self, token: &str) -> Option<WordId> {
        self.vocab.lookup(token)
    }

    /// Distinct sorted canonical token ids of node `v`'s text.
    pub fn node_tokens(&self, v: NodeId) -> &[WordId] {
        let lo = self.node_tok_offsets[v.index()] as usize;
        let hi = self.node_tok_offsets[v.index() + 1] as usize;
        &self.node_toks[lo..hi]
    }

    /// Token set of a type's text (empty for the reserved text type).
    pub fn type_tokens(&self, t: TypeId) -> &[WordId] {
        &self.type_toks[t.index()]
    }

    /// Token set of an attribute type's text.
    pub fn attr_tokens(&self, a: AttrId) -> &[WordId] {
        &self.attr_toks[a.index()]
    }

    /// Sorted nodes whose text or type text contains `w`.
    pub fn nodes_matching(&self, w: WordId) -> &[NodeId] {
        self.word_nodes.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sorted attribute types whose text contains `w`.
    pub fn attrs_matching(&self, w: WordId) -> &[AttrId] {
        self.word_attrs.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether node `v` (text or type text) contains `w`.
    pub fn node_matches(&self, w: WordId, v: NodeId, node_type: TypeId) -> bool {
        self.node_tokens(v).binary_search(&w).is_ok()
            || self.type_toks[node_type.index()].binary_search(&w).is_ok()
    }

    /// Whether attribute `a` contains `w`.
    pub fn attr_matches(&self, w: WordId, a: AttrId) -> bool {
        self.attr_toks[a.index()].binary_search(&w).is_ok()
    }

    /// `sim(w, v)` per Eq. (6): max Jaccard over the node-text and type-text
    /// matching sources; 0 when `w` matches neither.
    pub fn sim_node(&self, w: WordId, v: NodeId, node_type: TypeId) -> f64 {
        let via_text = crate::jaccard::single_word_sim(w, self.node_tokens(v));
        let via_type = crate::jaccard::single_word_sim(w, &self.type_toks[node_type.index()]);
        via_text.max(via_type)
    }

    /// `sim(w, e)` for an edge match: Jaccard against the attribute text.
    pub fn sim_attr(&self, w: WordId, a: AttrId) -> f64 {
        crate::jaccard::single_word_sim(w, &self.attr_toks[a.index()])
    }

    /// Sorted distinct nodes that own at least one out-edge of attribute
    /// `a` (backward-search entry points for edge matches).
    pub fn attr_sources(&self, a: AttrId) -> &[NodeId] {
        &self.attr_sources[a.index()]
    }

    /// Approximate resident bytes (for Figure-6-style size accounting).
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.node_tok_offsets.len() * 4 + self.node_toks.len() * 4;
        total += self
            .type_toks
            .iter()
            .map(|v| v.len() * 4 + 24)
            .sum::<usize>();
        total += self
            .attr_toks
            .iter()
            .map(|v| v.len() * 4 + 24)
            .sum::<usize>();
        total += self
            .word_nodes
            .values()
            .map(|v| v.len() * 4 + 40)
            .sum::<usize>();
        total += self
            .word_attrs
            .values()
            .map(|v| v.len() * 4 + 40)
            .sum::<usize>();
        total += self
            .attr_sources
            .iter()
            .map(|v| v.len() * 4 + 24)
            .sum::<usize>();
        total
    }
}

impl std::fmt::Debug for TextIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TextIndex {{ words: {}, node_tokens: {} }}",
            self.vocab.len(),
            self.node_toks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::GraphBuilder;

    /// SQL Server --Developer--> Microsoft --Revenue--> "US$ 77 billion"
    fn sample() -> (KnowledgeGraph, TextIndex) {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let soft = b.add_type("Software");
        let comp = b.add_type("Company");
        let dev = b.add_attr("Developer");
        let rev = b.add_attr("Revenue");
        let sql = b.add_node(soft, "SQL Server");
        let ms = b.add_node(comp, "Microsoft");
        b.add_edge(sql, dev, ms);
        b.add_text_edge(ms, rev, "US$ 77 billion");
        let g = b.build();
        let idx = TextIndex::build(&g, SynonymTable::new());
        (g, idx)
    }

    #[test]
    fn node_match_via_text() {
        let (g, idx) = sample();
        let w = idx.lookup_word("sql").unwrap();
        assert_eq!(idx.nodes_matching(w), &[NodeId(0)]);
        assert!(idx.node_matches(w, NodeId(0), g.node_type(NodeId(0))));
    }

    #[test]
    fn node_match_via_type() {
        let (g, idx) = sample();
        let w = idx.lookup_word("company").unwrap();
        assert_eq!(idx.nodes_matching(w), &[NodeId(1)]);
        assert!(idx.node_matches(w, NodeId(1), g.node_type(NodeId(1))));
        // sim via type text (single token) = 1.0
        assert_eq!(idx.sim_node(w, NodeId(1), g.node_type(NodeId(1))), 1.0);
    }

    #[test]
    fn attr_match() {
        let (_, idx) = sample();
        let w = idx.lookup_word("revenue").unwrap();
        let rev = idx.attrs_matching(w);
        assert_eq!(rev.len(), 1);
        assert_eq!(idx.sim_attr(w, rev[0]), 1.0);
        assert_eq!(idx.attr_sources(rev[0]), &[NodeId(1)]);
    }

    #[test]
    fn sim_uses_max_of_sources() {
        // Node text "software tools" (2 tokens) and type "Software"
        // (1 token): sim("software") must be max(1/2, 1) = 1.
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("Software");
        let v = b.add_node(t, "software tools");
        let g = b.build();
        let idx = TextIndex::build(&g, SynonymTable::new());
        let w = idx.lookup_word("software").unwrap();
        assert_eq!(idx.sim_node(w, v, t), 1.0);
        let w2 = idx.lookup_word("tools").unwrap();
        assert_eq!(idx.sim_node(w2, v, t), 0.5);
    }

    #[test]
    fn text_nodes_match_their_text() {
        let (g, idx) = sample();
        let w = idx.lookup_word("billion").unwrap();
        let matches = idx.nodes_matching(w);
        assert_eq!(matches.len(), 1);
        assert!(g.is_text_node(matches[0]));
        // 3 tokens: us, 77, billion → sim 1/3.
        let sim = idx.sim_node(w, matches[0], g.node_type(matches[0]));
        assert!((sim - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_word() {
        let (_, idx) = sample();
        assert_eq!(idx.lookup_word("zzzz"), None);
    }

    #[test]
    fn stemmed_query_matches() {
        let (_, idx) = sample();
        // "servers" stems to "server".
        let w = idx.lookup_word("servers").unwrap();
        assert_eq!(idx.nodes_matching(w).len(), 1);
    }

    #[test]
    fn match_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("Thing");
        for i in 0..20 {
            b.add_node(t, &format!("item {i}"));
        }
        let g = b.build();
        let idx = TextIndex::build(&g, SynonymTable::new());
        let w = idx.lookup_word("item").unwrap();
        let nodes = idx.nodes_matching(w);
        assert_eq!(nodes.len(), 20);
        assert!(nodes.windows(2).all(|p| p[0] < p[1]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use patternkb_graph::GraphBuilder;
    use proptest::prelude::*;

    fn random_graph(labels: &[String], nedges: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t1 = b.add_type("Alpha Kind");
        let t2 = b.add_type("Beta Kind");
        let a1 = b.add_attr("First Link");
        let a2 = b.add_attr("Second Link");
        let nodes: Vec<_> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| b.add_node(if i % 2 == 0 { t1 } else { t2 }, l))
            .collect();
        for i in 0..nedges.min(labels.len().saturating_sub(1)) {
            let a = if i % 2 == 0 { a1 } else { a2 };
            b.add_edge(nodes[i], a, nodes[(i + 1) % nodes.len()]);
        }
        b.build()
    }

    proptest! {
        /// The inverted list and the membership predicate agree for every
        /// (word, node) pair, and sim is positive exactly on matches.
        #[test]
        fn inverted_list_matches_predicate(
            labels in proptest::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,2}", 1..12),
            nedges in 0usize..12,
        ) {
            let g = random_graph(&labels, nedges);
            let idx = TextIndex::build(&g, SynonymTable::new());
            let words: Vec<WordId> = idx.vocab().iter().map(|(w, _)| w).collect();
            for &w in &words {
                let listed: Vec<NodeId> = idx.nodes_matching(w).to_vec();
                for v in g.nodes() {
                    let t = g.node_type(v);
                    let member = listed.binary_search(&v).is_ok();
                    prop_assert_eq!(member, idx.node_matches(w, v, t));
                    let sim = idx.sim_node(w, v, t);
                    prop_assert_eq!(member, sim > 0.0);
                    prop_assert!((0.0..=1.0).contains(&sim));
                }
            }
        }

        /// attr_sources lists exactly the distinct sources of each attr.
        #[test]
        fn attr_sources_are_exact(
            labels in proptest::collection::vec("[a-z]{1,5}", 2..10),
            nedges in 1usize..10,
        ) {
            let g = random_graph(&labels, nedges);
            let idx = TextIndex::build(&g, SynonymTable::new());
            for a in 0..g.num_attrs() {
                let attr = patternkb_graph::AttrId(a as u32);
                let mut expected: Vec<NodeId> = g
                    .nodes()
                    .filter(|&v| g.out_edges(v).any(|(x, _)| x == attr))
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(idx.attr_sources(attr), expected.as_slice());
            }
        }
    }
}
