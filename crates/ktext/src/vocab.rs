//! The canonical word space.
//!
//! A [`Vocabulary`] interns canonical word forms (tokenize → stem →
//! synonym) into dense [`WordId`]s. All downstream structures — the keyword
//! match index and both path-pattern indexes — key on these ids, which is
//! exactly how the paper shares index entries between a word, its stemmed
//! version, and its synonyms (§3).

use crate::stem::Stemmer;
use crate::synonyms::SynonymTable;
use patternkb_graph::interner::Interner;
use patternkb_graph::WordId;

/// Canonical-word interner plus the normalization pipeline.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    words: Interner<WordId>,
    synonyms: SynonymTable,
    stemmer: Stemmer,
}

impl Default for Vocabulary {
    fn default() -> Self {
        Self::new(SynonymTable::new())
    }
}

impl Vocabulary {
    /// A vocabulary with the given synonym table and the default
    /// ([`Stemmer::Lite`]) stemmer.
    pub fn new(synonyms: SynonymTable) -> Self {
        Self::with_stemmer(synonyms, Stemmer::Lite)
    }

    /// A vocabulary normalizing through an explicit stemmer.
    pub fn with_stemmer(synonyms: SynonymTable, stemmer: Stemmer) -> Self {
        Vocabulary {
            words: Interner::new(),
            synonyms,
            stemmer,
        }
    }

    /// The stemmer this vocabulary normalizes through.
    pub fn stemmer(&self) -> Stemmer {
        self.stemmer
    }

    /// Normalize one raw token to its canonical string form.
    pub fn canonical_form(&self, token: &str) -> String {
        let lowered = token.to_ascii_lowercase();
        let stemmed = self.stemmer.apply(&lowered);
        self.synonyms.canonical(&stemmed).to_string()
    }

    /// Intern the canonical form of `token`, creating it if new.
    pub fn intern(&mut self, token: &str) -> WordId {
        let canon = self.canonical_form(token);
        self.words.get_or_intern(&canon)
    }

    /// Look up the canonical id of `token` without interning.
    pub fn lookup(&self, token: &str) -> Option<WordId> {
        let canon = self.canonical_form(token);
        self.words.get(&canon)
    }

    /// Look up an *already canonical* form (as returned by
    /// [`Self::resolve`]) without re-normalizing. Needed when remapping word
    /// ids between two vocabularies: stemming is not idempotent in general,
    /// so re-running the pipeline on a canonical form could miss.
    pub fn lookup_canonical(&self, canon: &str) -> Option<WordId> {
        self.words.get(canon)
    }

    /// The synonym table this vocabulary canonicalizes through.
    pub fn synonyms(&self) -> &SynonymTable {
        &self.synonyms
    }

    /// The canonical text behind a word id.
    pub fn resolve(&self, w: WordId) -> &str {
        self.words.resolve(w)
    }

    /// Number of canonical words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate `(id, canonical text)`.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words.iter()
    }

    /// Tokenize `text` and intern every token; returns the canonical ids in
    /// order (duplicates preserved).
    pub fn intern_text(&mut self, text: &str) -> Vec<WordId> {
        let mut out = Vec::new();
        crate::tokenize::for_each_token(text, |t| {
            let canon = {
                let lowered = t.to_ascii_lowercase();
                let stemmed = self.stemmer.apply(&lowered);
                self.synonyms.canonical(&stemmed).to_string()
            };
            out.push(self.words.get_or_intern(&canon));
        });
        out
    }

    /// Tokenize `text` into the *distinct, sorted* set of canonical ids —
    /// the token-set representation used for Jaccard similarity.
    pub fn intern_token_set(&mut self, text: &str) -> Vec<WordId> {
        let mut ids = self.intern_text(text);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Like [`Self::intern_token_set`] but read-only: tokens absent from the
    /// vocabulary are dropped.
    pub fn lookup_token_set(&self, text: &str) -> Vec<WordId> {
        let mut ids = Vec::new();
        crate::tokenize::for_each_token(text, |t| {
            if let Some(id) = self.lookup(t) {
                ids.push(id);
            }
        });
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_share_ids() {
        let mut v = Vocabulary::default();
        let a = v.intern("Databases");
        let b = v.intern("database");
        assert_eq!(a, b);
    }

    #[test]
    fn synonyms_share_ids() {
        let mut v = Vocabulary::new(SynonymTable::default_english());
        let a = v.intern("movie");
        let b = v.intern("films");
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut v = Vocabulary::default();
        assert_eq!(v.lookup("ghost"), None);
        let id = v.intern("ghost");
        assert_eq!(v.lookup("ghosts"), Some(id));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn token_sets_are_sorted_unique() {
        let mut v = Vocabulary::default();
        let set = v.intern_token_set("big data, big databases, DATA");
        // "big", "data", "database" — sorted, dedup'd ("data" twice).
        assert_eq!(set.len(), 3);
        assert!(set.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_token_set_drops_unknown() {
        let mut v = Vocabulary::default();
        v.intern("known");
        let set = v.lookup_token_set("known unknown");
        assert_eq!(set.len(), 1);
    }
}
