//! # patternkb-text
//!
//! Text substrate for keyword search over knowledge graphs: tokenization,
//! a lightweight suffix stemmer, synonym canonicalization, Jaccard
//! similarity (Eq. (6) of the VLDB'14 paper), and a per-graph
//! [`TextIndex`] that answers
//!
//! * which nodes/attribute-types contain a given keyword (the paper's
//!   "node, node type, or edge type" match, §2.2.1 condition ii), and
//! * the Jaccard similarity `sim(w, f(w))` between a keyword and the text
//!   description of a matched element.
//!
//! Stemming and synonyms implement the remark at the end of §3: *"to handle
//! synonyms, every word has its stemmed version and synonyms in our index
//! pointing to the same path-pattern entry"* — both map into one canonical
//! [`patternkb_graph::WordId`] space, so downstream indexes are shared.

#![warn(missing_docs)]

pub mod jaccard;
pub mod porter;
pub mod stem;
pub mod suggest;
pub mod synonyms;
pub mod text_index;
pub mod tokenize;
pub mod vocab;

pub use stem::Stemmer;
pub use synonyms::SynonymTable;
pub use text_index::TextIndex;
pub use vocab::Vocabulary;
