//! Jaccard similarity over sorted token-id sets (Eq. (6)).
//!
//! The paper scores `sim(w, f(w))` — the Jaccard similarity between a query
//! keyword and the text description of the matched element. A single-token
//! keyword `w` against an element with `t` distinct tokens containing `w`
//! yields `1/t` (cf. Example 2.4: "database" vs "Relational database" = 1/2;
//! vs a 6-token book title = 1/6). The general set-vs-set form is provided
//! for completeness and for multi-token similarity experiments.

use patternkb_graph::WordId;

/// Jaccard similarity `|a ∩ b| / |a ∪ b|` of two sorted, deduplicated id
/// slices. Returns 0 for two empty sets.
pub fn jaccard(a: &[WordId], b: &[WordId]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Similarity of one keyword against a token set: `1/|set|` when the word is
/// a member, else 0. Equivalent to `jaccard(&[w], set)` but O(log n).
pub fn single_word_sim(w: WordId, set: &[WordId]) -> f64 {
    if set.binary_search(&w).is_ok() {
        1.0 / set.len() as f64
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<WordId> {
        v.iter().map(|&i| WordId(i)).collect()
    }

    #[test]
    fn identical_sets() {
        let a = ids(&[1, 2, 3]);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard(&ids(&[1, 2]), &ids(&[3, 4])), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // {1,2} vs {2,3}: 1/3.
        assert!((jaccard(&ids(&[1, 2]), &ids(&[2, 3])) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_values() {
        // "database" vs 2-token description = 1/2 (Example 2.4).
        assert_eq!(single_word_sim(WordId(5), &ids(&[5, 9])), 0.5);
        // vs 6-token description = 1/6.
        let six = ids(&[1, 2, 3, 4, 5, 6]);
        assert!((single_word_sim(WordId(3), &six) - 1.0 / 6.0).abs() < 1e-12);
        // no match = 0.
        assert_eq!(single_word_sim(WordId(7), &ids(&[1, 2])), 0.0);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&ids(&[1]), &[]), 0.0);
        assert_eq!(single_word_sim(WordId(1), &[]), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_set(v: Vec<u32>) -> Vec<WordId> {
        let mut v: Vec<WordId> = v.into_iter().map(WordId).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    proptest! {
        /// single_word_sim agrees with the general jaccard.
        #[test]
        fn single_matches_general(w in 0u32..20, set in proptest::collection::vec(0u32..20, 0..15)) {
            let set = sorted_set(set);
            let fast = single_word_sim(WordId(w), &set);
            let general = jaccard(&[WordId(w)], &set);
            prop_assert!((fast - general).abs() < 1e-12);
        }

        /// Jaccard is symmetric and within [0, 1].
        #[test]
        fn symmetric_bounded(a in proptest::collection::vec(0u32..30, 0..15),
                             b in proptest::collection::vec(0u32..30, 0..15)) {
            let a = sorted_set(a);
            let b = sorted_set(b);
            let ab = jaccard(&a, &b);
            let ba = jaccard(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-15);
            prop_assert!((0.0..=1.0).contains(&ab));
        }
    }
}
