//! Synonym canonicalization.
//!
//! A [`SynonymTable`] maps surface forms to one canonical representative so
//! that, per §3 of the paper, synonyms "point to the same path-pattern
//! entry". Synonyms are applied *after* stemming, on stemmed forms.

use std::collections::BTreeMap;

/// Maps stemmed surface forms to canonical stemmed forms.
#[derive(Clone, Debug, Default)]
pub struct SynonymTable {
    /// surface (stemmed) -> canonical (stemmed). Absent = identity.
    map: BTreeMap<String, String>,
}

impl SynonymTable {
    /// An empty table (identity mapping).
    pub fn new() -> Self {
        Self::default()
    }

    /// A small default table suitable for the synthetic datasets: common
    /// knowledge-base aliases.
    pub fn default_english() -> Self {
        let mut t = Self::new();
        t.add_group(&["movie", "film"]);
        t.add_group(&["company", "corporation", "firm"]);
        t.add_group(&["car", "automobile"]);
        t.add_group(&["author", "writer"]);
        t.add_group(&["picture", "photo", "image"]);
        t
    }

    /// Declare that every word in `group` is equivalent; the first member
    /// (after stemming) becomes the canonical form. Words are stemmed before
    /// insertion so callers may pass surface forms.
    pub fn add_group(&mut self, group: &[&str]) {
        let Some(first) = group.first() else { return };
        let canon = crate::stem::stem(&first.to_ascii_lowercase());
        for w in group {
            let s = crate::stem::stem(&w.to_ascii_lowercase());
            if s != canon {
                self.map.insert(s, canon.clone());
            }
        }
    }

    /// Canonicalize a stemmed word: returns the canonical representative, or
    /// the input itself if it has no synonym group.
    pub fn canonical<'a>(&'a self, stemmed: &'a str) -> &'a str {
        self.map.get(stemmed).map(String::as_str).unwrap_or(stemmed)
    }

    /// Number of non-identity mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table holds no mappings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_default() {
        let t = SynonymTable::new();
        assert_eq!(t.canonical("database"), "database");
        assert!(t.is_empty());
    }

    #[test]
    fn group_collapses_to_first() {
        let mut t = SynonymTable::new();
        t.add_group(&["movie", "film"]);
        assert_eq!(t.canonical("film"), "movy"); // both stemmed; canon = stem("movie")
        assert_eq!(t.canonical(&crate::stem::stem("films")), "movy");
    }

    #[test]
    fn default_table_has_groups() {
        let t = SynonymTable::default_english();
        assert!(!t.is_empty());
        assert_eq!(
            t.canonical("film"),
            t.canonical(&crate::stem::stem("movies"))
        );
    }

    #[test]
    fn canonical_is_idempotent() {
        let t = SynonymTable::default_english();
        for w in ["film", "corporation", "automobile", "writer", "photo"] {
            let s = crate::stem::stem(w);
            let c1 = t.canonical(&s).to_string();
            let c2 = t.canonical(&c1).to_string();
            assert_eq!(c1, c2, "canonical must be idempotent for {w}");
        }
    }
}
