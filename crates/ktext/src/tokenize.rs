//! Unicode-unaware but fast tokenizer.
//!
//! Tokens are maximal runs of ASCII alphanumerics, lowercased. Everything
//! else (punctuation, whitespace, non-ASCII bytes) is a separator. This
//! matches how infobox-style knowledge-base text ("US$ 77 billion",
//! "O-R database") is usually broken into keywords.

/// Call `f` for each lowercased token of `text`, reusing one buffer.
pub fn for_each_token<F: FnMut(&str)>(text: &str, mut f: F) {
    let mut buf = String::with_capacity(16);
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            buf.push(ch.to_ascii_lowercase());
        } else if !buf.is_empty() {
            f(&buf);
            buf.clear();
        }
    }
    if !buf.is_empty() {
        f(&buf);
    }
}

/// Collect the tokens of `text` into owned strings, in order, with
/// duplicates preserved.
pub fn tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for_each_token(text, |t| out.push(t.to_string()));
    out
}

/// Number of tokens in `text`.
pub fn token_count(text: &str) -> usize {
    let mut n = 0;
    for_each_token(text, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_splitting() {
        assert_eq!(tokens("SQL Server"), vec!["sql", "server"]);
        assert_eq!(tokens("US$ 77 billion"), vec!["us", "77", "billion"]);
        assert_eq!(tokens("O-R database"), vec!["o", "r", "database"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokens("").is_empty());
        assert!(tokens("--- !!! ...").is_empty());
    }

    #[test]
    fn lowercasing() {
        assert_eq!(tokens("Bill GATES"), vec!["bill", "gates"]);
    }

    #[test]
    fn non_ascii_is_separator() {
        assert_eq!(tokens("café"), vec!["caf"]);
        assert_eq!(tokens("naïve user"), vec!["na", "ve", "user"]);
    }

    #[test]
    fn duplicates_preserved() {
        assert_eq!(
            tokens("to be or not to be"),
            vec!["to", "be", "or", "not", "to", "be"]
        );
        assert_eq!(token_count("a a a"), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every produced token is non-empty, lowercase alphanumeric.
        #[test]
        fn tokens_are_clean(s in ".{0,64}") {
            for t in tokens(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(|c| c.is_ascii_alphanumeric() && !c.is_ascii_uppercase()));
            }
        }

        /// Tokenization is idempotent: tokenizing the join of tokens yields
        /// the same tokens.
        #[test]
        fn idempotent(s in "[ a-zA-Z0-9.,;-]{0,64}") {
            let first = tokens(&s);
            let joined = first.join(" ");
            prop_assert_eq!(tokens(&joined), first);
        }
    }
}
