//! A small deterministic suffix stemmer (Porter-lite).
//!
//! The paper only requires that morphological variants ("movie"/"movies",
//! "publish"/"publisher"/"publishing") collapse into one index entry. A full
//! Porter implementation is overkill; this stemmer iterates a fixed rule
//! list to a fixpoint, so it is **idempotent by construction** — the
//! property the shared index entries rely on (§3 of the paper): any two
//! variants it maps together share all downstream index entries.
//!
//! The stemmer is applied to *both* the indexed text and the query
//! keywords, so linguistic perfection is unnecessary; determinism and
//! idempotence are what matter.

/// Which stemmer the normalization pipeline applies. The paper's index
/// shares entries between "every word, its stemmed version and synonyms"
/// (§3) without prescribing an algorithm, so this is a deployment knob:
/// `Lite` (default) is conservative and keeps entity nouns searchable by
/// surface form; `Porter` collapses more variants (smaller vocabulary,
/// more recall); `None` indexes exact surface forms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stemmer {
    /// The conservative Porter-lite fixpoint stemmer in this module.
    #[default]
    Lite,
    /// The classic Porter (1980) algorithm ([`crate::porter`]).
    Porter,
    /// No stemming.
    None,
}

impl Stemmer {
    /// Apply this stemmer to one lowercase token.
    pub fn apply(&self, word: &str) -> String {
        match self {
            Stemmer::Lite => stem(word),
            Stemmer::Porter => crate::porter::porter_stem(word),
            Stemmer::None => word.to_string(),
        }
    }
}

/// Stem one lowercase token. Input is assumed to be a tokenizer output
/// (lowercase ASCII alphanumeric); other input is returned unchanged.
pub fn stem(word: &str) -> String {
    let mut cur = word.to_string();
    // Each productive rule strictly shrinks the word, so this terminates in
    // at most `word.len()` steps.
    loop {
        let next = stem_step(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// One rewrite pass: apply the first matching rule, or return the input.
fn stem_step(w: &str) -> String {
    // Numbers and very short words are left alone.
    if w.len() <= 3 || w.chars().any(|c| c.is_ascii_digit()) {
        return w.to_string();
    }

    // Words that must never be stripped further (identity classes).
    // "-ss" guards "class", "business"; "-er" keeps entity nouns like
    // "server"/"developer" searchable by surface form.
    if w.ends_with("ss") || w.ends_with("er") {
        return w.to_string();
    }

    // Ordered rewrite rules; first applicable wins.
    // (suffix, replacement, min chars that must precede the suffix)
    const RULES: &[(&str, &str, usize)] = &[
        ("sses", "ss", 1),
        ("ies", "y", 2),
        ("ie", "y", 2),
        ("ives", "ive", 1),
        ("ations", "ate", 2),
        ("ation", "ate", 2),
        ("ingly", "", 3),
        ("edly", "", 3),
        ("fully", "ful", 2),
        ("ness", "", 3),
        ("ments", "ment", 2),
        ("ing", "", 3),
        ("ed", "", 3),
        ("ly", "", 3),
        ("s", "", 3),
    ];

    for &(suffix, replacement, min_stem) in RULES {
        if let Some(stripped) = w.strip_suffix(suffix) {
            if stripped.len() >= min_stem && stripped.len() + replacement.len() >= 3 {
                let mut out = String::with_capacity(stripped.len() + replacement.len());
                out.push_str(stripped);
                out.push_str(replacement);
                // Undouble trailing consonant after -ing/-ed stripping
                // ("running" -> "runn" -> "run").
                if (suffix == "ing" || suffix == "ed") && has_double_consonant_tail(&out) {
                    out.pop();
                }
                return out;
            }
        }
    }
    w.to_string()
}

fn has_double_consonant_tail(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() < 2 {
        return false;
    }
    let (a, z) = (b[b.len() - 2], b[b.len() - 1]);
    a == z && !matches!(z, b'a' | b'e' | b'i' | b'o' | b'u' | b'l' | b's' | b'z')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals() {
        assert_eq!(stem("movies"), "movy");
        assert_eq!(stem("cities"), "city");
        assert_eq!(stem("databases"), "database");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("games"), "game");
    }

    #[test]
    fn verb_forms() {
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("publishing"), "publish");
        assert_eq!(stem("directed"), "direct");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("sql"), "sql");
        assert_eq!(stem("db"), "db");
        assert_eq!(stem("as"), "as");
    }

    #[test]
    fn numbers_untouched() {
        assert_eq!(stem("77"), "77");
        assert_eq!(stem("b2b"), "b2b");
        assert_eq!(stem("2014s"), "2014s");
    }

    #[test]
    fn variants_collapse() {
        // The property the index relies on: variants share a stem.
        assert_eq!(stem("movie"), stem("movies"));
        assert_eq!(stem("revenues"), stem("revenue"));
        assert_eq!(stem("films"), stem("film"));
        assert_eq!(stem("buildings"), stem("building"));
    }

    #[test]
    fn er_and_ss_words_preserved() {
        assert_eq!(stem("server"), "server");
        assert_eq!(stem("developer"), "developer");
        assert_eq!(stem("class"), "class");
        assert_eq!(stem("business"), "business");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Stemming is idempotent: stem(stem(w)) == stem(w).
        #[test]
        fn idempotent(w in "[a-z]{1,12}") {
            let once = stem(&w);
            prop_assert_eq!(stem(&once), once.clone());
        }

        /// Stems are never empty and never grow.
        #[test]
        fn bounded(w in "[a-z0-9]{1,12}") {
            let s = stem(&w);
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= w.len());
        }
    }
}
