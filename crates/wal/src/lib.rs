//! # patternkb-wal
//!
//! The durability subsystem: a write-ahead log of serialized
//! [`patternkb_graph::mutate::GraphDelta`] payloads plus the checkpoint
//! files that bound its replay cost. Together they make the online write
//! path crash-safe — an acked ingest survives `SIGKILL`, and boot cost is
//! `O(checkpoint + tail)`, not `O(history)`.
//!
//! ## The log ([`Wal`])
//!
//! One append-only file of length-prefixed, CRC-checksummed,
//! monotonically versioned records (format details on [`Wal`]). Appends
//! go through a configurable [`FsyncPolicy`]:
//!
//! * `always` — every append performs its own `fsync` before acking;
//!   strongest latency-per-record guarantee, lowest throughput.
//! * `group(ms)` — **group commit**: appends buffer into the OS file and
//!   a dedicated flusher thread fsyncs as soon as it can; every record
//!   that accumulated while the previous fsync was in flight is made
//!   durable by the next one, and all its waiting callers are woken by
//!   that single shared fsync. `ms` bounds the flusher's idle poll.
//! * `never` — leave durability to the OS page cache (benchmarks, bulk
//!   loads).
//!
//! ## Recovery ([`replay`])
//!
//! Replay walks the log and stops cleanly at the first torn or corrupt
//! tail record — a crash mid-append loses at most the unacked suffix,
//! and [`Wal::open`] truncates it so the next append continues from the
//! last good record. A damaged log never refuses to boot.
//!
//! ## Checkpoints ([`checkpoint`])
//!
//! A checkpoint file freezes the engine's graph + index snapshot at one
//! version; [`Wal::rotate`] then atomically truncates the log (write a
//! fresh log holding only the newer tail, `rename` over the old one), so
//! the log never grows without bound.
//!
//! The crate stores opaque payload bytes — `patternkb-search` owns the
//! mapping between payloads and engine deltas, and `patternkb-serve`
//! exposes the log's counters under `/metrics`.

#![warn(missing_docs)]

pub mod checkpoint;
mod crc;
pub mod log;

pub use crc::crc32;
pub use log::{
    replay, FsyncPolicy, FsyncStats, Record, ReplaySummary, Ticket, Wal, WalOptions, FSYNC_BOUNDS,
};
