//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding every log
//! record. Table-driven, computed once at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `chunks` concatenated (IEEE polynomial, the zlib/`cksum -o 3`
/// variant). Taking chunks avoids materializing `header ++ payload` just
/// to checksum it.
pub fn crc32(chunks: &[&[u8]]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
        // Chunking does not change the digest.
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn detects_any_single_byte_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(&[data]);
        for i in 0..data.len() {
            let mut copy = data.to_vec();
            copy[i] ^= 0x40;
            assert_ne!(crc32(&[&copy]), base, "flip at {i} undetected");
        }
    }
}
