//! The write-ahead log file: record format, append path with fsync
//! policies (including group commit), and torn-tail replay.
//!
//! File layout (little endian):
//!
//! ```text
//! header: magic "PKBW" | u32 format_version (1)
//! record: u64 version | u32 len | u32 crc | len × payload byte
//! ```
//!
//! `version` is the engine version the record produces and must increase
//! strictly within one log; `crc` is the CRC-32 of `version || payload`.
//! A record is *durable* once an `fsync` covering it has returned; the
//! append path acks according to the configured [`FsyncPolicy`].

use crate::crc::crc32;
use patternkb_graph::snapshot::{invalid_data, SnapshotError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const MAGIC: &[u8; 4] = b"PKBW";
const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
const RECORD_HEADER_LEN: u64 = 16;

/// When an append is acknowledged as durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every append performs its own write + `fsync` before returning.
    Always,
    /// Group commit: appends buffer into the OS file immediately and a
    /// dedicated flusher thread fsyncs as soon as it can; all records
    /// that accumulated while the previous fsync was in flight share the
    /// next one, and their callers are woken together. The duration
    /// bounds the flusher's idle poll (a lost wakeup still flushes
    /// within it).
    Group(Duration),
    /// Appends return as soon as the OS accepted the write; durability
    /// is left to the page cache. For benchmarks and bulk loads.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group(d) => write!(f, "group({}ms)", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    /// Accepts `always`, `never`, `group` (5 ms default), `group(5ms)`,
    /// or `group(5)`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => return Ok(FsyncPolicy::Always),
            "never" => return Ok(FsyncPolicy::Never),
            "group" => return Ok(FsyncPolicy::Group(Duration::from_millis(5))),
            _ => {}
        }
        if let Some(arg) = s
            .strip_prefix("group(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            let ms: u64 = arg
                .trim_end_matches("ms")
                .parse()
                .map_err(|_| format!("bad group interval {arg:?} (want e.g. group(5ms))"))?;
            return Ok(FsyncPolicy::Group(Duration::from_millis(ms.max(1))));
        }
        Err(format!(
            "unknown fsync policy {s:?} (want always | group(<ms>ms) | never)"
        ))
    }
}

/// One decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Engine version this record produces (strictly increasing).
    pub version: u64,
    /// Opaque payload (a serialized delta, as far as this crate cares).
    pub payload: Vec<u8>,
    /// Byte offset of the record header within the log file.
    pub offset: u64,
}

/// What [`replay`] found in a log file.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Every intact record, in file (= version) order.
    pub records: Vec<Record>,
    /// Bytes of valid prefix (header + intact records). Anything past it
    /// is a torn or corrupt tail.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` existed (a torn append or
    /// corruption; [`Wal::open`] truncates them).
    pub torn: bool,
}

/// Walk the log at `path`, collecting intact records and stopping cleanly
/// at the first torn or corrupt tail record. A missing file is an empty
/// log. Only a *well-formed but alien* header (wrong magic, unknown
/// format version) is an error: that is not our log, and truncating it
/// would destroy someone else's data.
pub fn replay(path: &Path) -> std::io::Result<ReplaySummary> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplaySummary::default()),
        Err(e) => return Err(e),
    };
    if (data.len() as u64) < HEADER_LEN {
        // A crash while creating the file can leave a short header; treat
        // the whole file as a torn tail.
        return Ok(ReplaySummary {
            records: Vec::new(),
            valid_len: 0,
            torn: !data.is_empty(),
        });
    }
    if &data[0..4] != MAGIC {
        return Err(invalid_data(path, SnapshotError::BadMagic));
    }
    let format = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if format != FORMAT_VERSION {
        return Err(invalid_data(path, SnapshotError::BadVersion(format)));
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let len = data.len() as u64;
    loop {
        if pos + RECORD_HEADER_LEN > len {
            break;
        }
        let p = pos as usize;
        let version = u64::from_le_bytes(data[p..p + 8].try_into().expect("8 bytes"));
        let payload_len = u32::from_le_bytes(data[p + 8..p + 12].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[p + 12..p + 16].try_into().expect("4 bytes"));
        let end = pos + RECORD_HEADER_LEN + payload_len as u64;
        if end > len {
            break;
        }
        let payload = &data[p + 16..end as usize];
        if crc32(&[&data[p..p + 8], payload]) != crc {
            break;
        }
        if records
            .last()
            .is_some_and(|r: &Record| version <= r.version)
        {
            // Versions must increase strictly; a repeat means the tail
            // was scrambled, not appended.
            break;
        }
        records.push(Record {
            version,
            payload: payload.to_vec(),
            offset: pos,
        });
        pos = end;
    }
    Ok(ReplaySummary {
        records,
        valid_len: pos,
        torn: pos < len,
    })
}

/// Opaque receipt for one append; pass it to [`Wal::sync`] to block until
/// the record is durable under the configured policy.
#[derive(Clone, Copy, Debug)]
pub struct Ticket(u64);

/// Histogram bucket upper bounds (seconds) for [`FsyncStats::buckets`].
pub const FSYNC_BOUNDS: [f64; 10] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 1.0,
];

/// Cumulative fsync timings, bucketed for Prometheus exposition.
#[derive(Clone, Debug, Default)]
pub struct FsyncStats {
    /// Number of fsync calls issued.
    pub count: u64,
    /// Total time spent in fsync, microseconds.
    pub total_micros: u64,
    /// Observations at or under each [`FSYNC_BOUNDS`] bound (cumulative,
    /// Prometheus `le` semantics; `count` is the implicit `+Inf`).
    pub buckets: [u64; FSYNC_BOUNDS.len()],
}

/// Configuration for [`Wal::open`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// When appends are acknowledged as durable.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::Group(Duration::from_millis(5)),
        }
    }
}

struct SyncState {
    /// Sequence number of the last record written to the OS file.
    appended: u64,
    /// Sequence number of the last record covered by a completed fsync.
    durable: u64,
    /// Set on the first I/O failure; the log refuses all further appends
    /// (a half-synced file has unknown durable state).
    failed: Option<String>,
    shutdown: bool,
}

struct Inner {
    path: PathBuf,
    policy: FsyncPolicy,
    /// Append handle. Lock order: `file` may be held while taking
    /// `sync`, never the other way around.
    file: Mutex<File>,
    sync: Mutex<SyncState>,
    /// Wakes callers blocked in [`Wal::sync`] (group policy).
    durable_cv: Condvar,
    /// Wakes the flusher thread when there is something to fsync.
    flush_cv: Condvar,
    log_bytes: AtomicU64,
    log_records: AtomicU64,
    appended_total: AtomicU64,
    fsync_count: AtomicU64,
    fsync_micros: AtomicU64,
    fsync_buckets: [AtomicU64; FSYNC_BOUNDS.len()],
}

impl Inner {
    fn observe_fsync(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.fsync_count.fetch_add(1, Ordering::Relaxed);
        self.fsync_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        for (i, &bound) in FSYNC_BOUNDS.iter().enumerate() {
            if secs <= bound {
                self.fsync_buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Mark the log failed and wake everyone.
    fn poison_locked(&self, state: &mut SyncState, reason: String) {
        if state.failed.is_none() {
            state.failed = Some(reason);
        }
        self.durable_cv.notify_all();
        self.flush_cv.notify_all();
    }

    fn failed_error(reason: &str) -> std::io::Error {
        std::io::Error::other(format!("write-ahead log failed: {reason}"))
    }
}

/// The append side of one write-ahead log file. See the crate docs for
/// the durability model and [`replay`] for recovery.
pub struct Wal {
    inner: Arc<Inner>,
    flusher: Option<JoinHandle<()>>,
}

fn open_append(path: &Path) -> std::io::Result<File> {
    OpenOptions::new().append(true).open(path)
}

fn fsync_dir(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

impl Wal {
    /// Open (or create) the log at `path`, truncating any torn tail so
    /// appends continue from the last intact record. Returns the log
    /// handle plus what [`replay`] found — the caller replays those
    /// records before appending new ones.
    pub fn open(
        path: impl Into<PathBuf>,
        options: WalOptions,
    ) -> std::io::Result<(Wal, ReplaySummary)> {
        let path = path.into();
        let summary = replay(&path)?;
        let exists = path.exists();
        if !exists || summary.valid_len < HEADER_LEN {
            // Fresh log (or one whose header itself was torn mid-create).
            let mut f = File::create(&path)?;
            f.write_all(MAGIC)?;
            f.write_all(&FORMAT_VERSION.to_le_bytes())?;
            f.sync_all()?;
            fsync_dir(&path)?;
        } else if summary.torn {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(summary.valid_len)?;
            f.sync_all()?;
        }
        let valid_len = summary.valid_len.max(HEADER_LEN);

        let inner = Arc::new(Inner {
            file: Mutex::new(open_append(&path)?),
            path,
            policy: options.fsync,
            sync: Mutex::new(SyncState {
                appended: 0,
                durable: 0,
                failed: None,
                shutdown: false,
            }),
            durable_cv: Condvar::new(),
            flush_cv: Condvar::new(),
            log_bytes: AtomicU64::new(valid_len),
            log_records: AtomicU64::new(summary.records.len() as u64),
            appended_total: AtomicU64::new(0),
            fsync_count: AtomicU64::new(0),
            fsync_micros: AtomicU64::new(0),
            fsync_buckets: Default::default(),
        });

        let flusher = if let FsyncPolicy::Group(interval) = options.fsync {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("wal-flusher".into())
                    .spawn(move || flusher_loop(&inner, interval))?,
            )
        } else {
            None
        };

        Ok((Wal { inner, flusher }, summary))
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.inner.policy
    }

    /// Append one record (buffered into the OS file, not yet necessarily
    /// durable) and return the ticket to [`Wal::sync`] on. `version` must
    /// exceed every previously appended version.
    pub fn append(&self, version: u64, payload: &[u8]) -> std::io::Result<Ticket> {
        let inner = &*self.inner;
        let mut buf = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&[&version.to_le_bytes(), payload]).to_le_bytes());
        buf.extend_from_slice(payload);

        let mut file = inner.file.lock().expect("wal file lock");
        {
            let state = inner.sync.lock().expect("wal sync lock");
            if let Some(reason) = &state.failed {
                return Err(Inner::failed_error(reason));
            }
            if state.shutdown {
                return Err(std::io::Error::other("write-ahead log is shut down"));
            }
        }
        if let Err(e) = file.write_all(&buf) {
            let mut state = inner.sync.lock().expect("wal sync lock");
            inner.poison_locked(&mut state, format!("append write failed: {e}"));
            return Err(e);
        }
        inner
            .log_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        inner.log_records.fetch_add(1, Ordering::Relaxed);
        inner.appended_total.fetch_add(1, Ordering::Relaxed);
        let seq = {
            // Still holding the file lock: sequence order = file order.
            let mut state = inner.sync.lock().expect("wal sync lock");
            state.appended += 1;
            state.appended
        };
        drop(file);
        if matches!(inner.policy, FsyncPolicy::Group(_)) {
            inner.flush_cv.notify_one();
        }
        Ok(Ticket(seq))
    }

    /// Block until the appended record behind `ticket` is durable under
    /// the configured policy (a no-op for `never`). For `group`, many
    /// concurrent callers are typically released by one shared fsync.
    pub fn sync(&self, ticket: Ticket) -> std::io::Result<()> {
        let inner = &*self.inner;
        match inner.policy {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::Always => {
                let file = inner.file.lock().expect("wal file lock");
                let target = {
                    let state = inner.sync.lock().expect("wal sync lock");
                    if let Some(reason) = &state.failed {
                        return Err(Inner::failed_error(reason));
                    }
                    if state.durable >= ticket.0 {
                        return Ok(());
                    }
                    state.appended
                };
                let t0 = Instant::now();
                let res = file.sync_data();
                drop(file);
                inner.observe_fsync(t0.elapsed());
                let mut state = inner.sync.lock().expect("wal sync lock");
                match res {
                    Ok(()) => {
                        state.durable = state.durable.max(target);
                        Ok(())
                    }
                    Err(e) => {
                        inner.poison_locked(&mut state, format!("fsync failed: {e}"));
                        Err(e)
                    }
                }
            }
            FsyncPolicy::Group(_) => {
                let mut state = inner.sync.lock().expect("wal sync lock");
                loop {
                    if let Some(reason) = &state.failed {
                        return Err(Inner::failed_error(reason));
                    }
                    if state.durable >= ticket.0 {
                        return Ok(());
                    }
                    if state.shutdown {
                        return Err(std::io::Error::other(
                            "write-ahead log shut down before the record became durable",
                        ));
                    }
                    state = inner
                        .durable_cv
                        .wait(state)
                        .expect("wal sync lock poisoned");
                }
            }
        }
    }

    /// [`Wal::append`] + [`Wal::sync`] in one call.
    pub fn append_durable(&self, version: u64, payload: &[u8]) -> std::io::Result<()> {
        let ticket = self.append(version, payload)?;
        self.sync(ticket)
    }

    /// Force the log into the failed state, as after an I/O error: every
    /// subsequent append (and every waiter) gets an error naming
    /// `reason`. Used by tests injecting durability failures and as an
    /// emergency read-only switch.
    pub fn poison(&self, reason: &str) {
        let mut state = self.inner.sync.lock().expect("wal sync lock");
        self.inner.poison_locked(&mut state, reason.to_string());
    }

    /// Atomically truncate the log to the records with `version >
    /// keep_after` (those not covered by the checkpoint at `keep_after`):
    /// writes a fresh log holding only that tail, fsyncs it, and renames
    /// it over the live one. Appends block for the duration.
    pub fn rotate(&self, keep_after: u64) -> std::io::Result<()> {
        let inner = &*self.inner;
        let mut file = inner.file.lock().expect("wal file lock");
        // Make everything durable first: after the rename there is only
        // the new file, which must already hold every acked record.
        file.sync_data()?;
        {
            let mut state = inner.sync.lock().expect("wal sync lock");
            if let Some(reason) = &state.failed {
                return Err(Inner::failed_error(reason));
            }
            state.durable = state.appended;
            inner.durable_cv.notify_all();
        }

        let summary = replay(&inner.path)?;
        let tmp = inner.path.with_extension("log.tmp");
        {
            let mut out = File::create(&tmp)?;
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(MAGIC);
            buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            for r in summary.records.iter().filter(|r| r.version > keep_after) {
                buf.extend_from_slice(&r.version.to_le_bytes());
                buf.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(
                    &crc32(&[&r.version.to_le_bytes(), &r.payload]).to_le_bytes(),
                );
                buf.extend_from_slice(&r.payload);
            }
            out.write_all(&buf)?;
            out.sync_all()?;
            inner.log_bytes.store(buf.len() as u64, Ordering::Relaxed);
        }
        inner.log_records.store(
            summary
                .records
                .iter()
                .filter(|r| r.version > keep_after)
                .count() as u64,
            Ordering::Relaxed,
        );
        std::fs::rename(&tmp, &inner.path)?;
        fsync_dir(&inner.path)?;
        *file = open_append(&inner.path)?;
        Ok(())
    }

    /// Truncate the log file to `offset` bytes (used at boot when a
    /// CRC-valid record still fails to replay — drop it and everything
    /// after it rather than refuse to start).
    pub fn truncate_to(&self, offset: u64) -> std::io::Result<()> {
        let inner = &*self.inner;
        let mut file = inner.file.lock().expect("wal file lock");
        let offset = offset.max(HEADER_LEN);
        {
            let f = OpenOptions::new().write(true).open(&inner.path)?;
            f.set_len(offset)?;
            f.sync_all()?;
        }
        *file = open_append(&inner.path)?;
        let summary = replay(&inner.path)?;
        inner.log_bytes.store(summary.valid_len, Ordering::Relaxed);
        inner
            .log_records
            .store(summary.records.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Current log size in bytes (header included).
    pub fn log_bytes(&self) -> u64 {
        self.inner.log_bytes.load(Ordering::Relaxed)
    }

    /// Records currently in the log (checkpointed ones are rotated out).
    pub fn log_records(&self) -> u64 {
        self.inner.log_records.load(Ordering::Relaxed)
    }

    /// Lifetime appends through this handle (monotonic; survives
    /// rotation).
    pub fn appended_total(&self) -> u64 {
        self.inner.appended_total.load(Ordering::Relaxed)
    }

    /// Cumulative fsync timing histogram.
    pub fn fsync_stats(&self) -> FsyncStats {
        let inner = &*self.inner;
        let mut buckets = [0u64; FSYNC_BOUNDS.len()];
        for (out, b) in buckets.iter_mut().zip(&inner.fsync_buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        FsyncStats {
            count: inner.fsync_count.load(Ordering::Relaxed),
            total_micros: inner.fsync_micros.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut state = self.inner.sync.lock().expect("wal sync lock");
            state.shutdown = true;
            self.inner.flush_cv.notify_all();
            self.inner.durable_cv.notify_all();
        }
        if let Some(h) = self.flusher.take() {
            h.join().ok();
        }
        // Best-effort final flush for the policies without a flusher.
        if let Ok(file) = self.inner.file.lock() {
            file.sync_data().ok();
        }
    }
}

fn flusher_loop(inner: &Inner, interval: Duration) {
    loop {
        let target = {
            let mut state = inner.sync.lock().expect("wal sync lock");
            loop {
                if state.failed.is_some() {
                    return;
                }
                if state.appended > state.durable {
                    break state.appended;
                }
                if state.shutdown {
                    return;
                }
                let (next, _) = inner
                    .flush_cv
                    .wait_timeout(state, interval)
                    .expect("wal sync lock poisoned");
                state = next;
            }
        };
        let file = inner.file.lock().expect("wal file lock");
        let t0 = Instant::now();
        let res = file.sync_data();
        drop(file);
        inner.observe_fsync(t0.elapsed());
        let mut state = inner.sync.lock().expect("wal sync lock");
        match res {
            Ok(()) => {
                state.durable = state.durable.max(target);
                inner.durable_cv.notify_all();
            }
            Err(e) => {
                inner.poison_locked(&mut state, format!("fsync failed: {e}"));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("patternkb_wal_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts(policy: FsyncPolicy) -> WalOptions {
        WalOptions { fsync: policy }
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!(
            "group".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Group(Duration::from_millis(5))
        );
        assert_eq!(
            "group(12ms)".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Group(Duration::from_millis(12))
        );
        assert_eq!(
            "group(3)".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Group(Duration::from_millis(3))
        );
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(
            "group(7ms)".parse::<FsyncPolicy>().unwrap().to_string(),
            "group(7ms)"
        );
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        {
            let (wal, summary) = Wal::open(&path, opts(FsyncPolicy::Always)).unwrap();
            assert!(summary.records.is_empty());
            for v in 1..=5u64 {
                wal.append_durable(v, format!("payload {v}").as_bytes())
                    .unwrap();
            }
            assert_eq!(wal.log_records(), 5);
            assert_eq!(wal.appended_total(), 5);
            assert!(wal.fsync_stats().count >= 5);
        }
        let summary = replay(&path).unwrap();
        assert!(!summary.torn);
        assert_eq!(summary.records.len(), 5);
        for (i, r) in summary.records.iter().enumerate() {
            assert_eq!(r.version, i as u64 + 1);
            assert_eq!(r.payload, format!("payload {}", i + 1).into_bytes());
        }
        // Reopen appends after the existing tail.
        let (wal, summary) = Wal::open(&path, opts(FsyncPolicy::Never)).unwrap();
        assert_eq!(summary.records.len(), 5);
        wal.append_durable(6, b"six").unwrap();
        drop(wal);
        assert_eq!(replay(&path).unwrap().records.len(), 6);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let (wal, _) = Wal::open(&path, opts(FsyncPolicy::Always)).unwrap();
            wal.append_durable(1, b"first record payload").unwrap();
            wal.append_durable(2, b"second record payload").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the second record: replay keeps only the
        // first, and open truncates the file to it.
        let cut = full.len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let summary = replay(&path).unwrap();
        assert!(summary.torn);
        assert_eq!(summary.records.len(), 1);

        let (wal, summary) = Wal::open(&path, opts(FsyncPolicy::Always)).unwrap();
        assert_eq!(summary.records.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), summary.valid_len);
        // The log keeps working: version continues after the survivor.
        wal.append_durable(2, b"second, take two").unwrap();
        drop(wal);
        let after = replay(&path).unwrap();
        assert!(!after.torn);
        assert_eq!(after.records.len(), 2);
        assert_eq!(after.records[1].payload, b"second, take two");
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_damage() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        {
            let (wal, _) = Wal::open(&path, opts(FsyncPolicy::Always)).unwrap();
            for v in 1..=3u64 {
                wal.append_durable(v, &[v as u8; 32]).unwrap();
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record.
        let second_payload = (HEADER_LEN + (RECORD_HEADER_LEN + 32) + RECORD_HEADER_LEN) as usize;
        data[second_payload] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let summary = replay(&path).unwrap();
        assert!(summary.torn);
        assert_eq!(summary.records.len(), 1, "CRC catches the flip");
    }

    #[test]
    fn alien_file_is_an_error_not_a_truncation() {
        let dir = tmpdir("alien");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"PKBG this is some other file").unwrap();
        let err = replay(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(Wal::open(&path, opts(FsyncPolicy::Never)).is_err());
        // The file is untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"PKBG this is some other file"
        );
    }

    #[test]
    fn group_commit_wakes_concurrent_appenders() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let (wal, _) =
            Wal::open(&path, opts(FsyncPolicy::Group(Duration::from_millis(2)))).unwrap();
        let wal = std::sync::Arc::new(wal);
        // Versions must be strictly increasing in file order, so the
        // counter bump and the append are serialized together (as the
        // engine's writer lock does); the durability waits below still
        // overlap, which is what group commit batches.
        let version = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let wal = &wal;
                let version = &version;
                scope.spawn(move || {
                    for _ in 0..25 {
                        let ticket = {
                            let mut v = version.lock().unwrap();
                            *v += 1;
                            wal.append(*v, format!("record {v}").as_bytes()).unwrap()
                        };
                        wal.sync(ticket).unwrap();
                    }
                });
            }
        });
        assert_eq!(wal.appended_total(), 200);
        let stats = wal.fsync_stats();
        assert!(stats.count >= 1);
        drop(wal);
        let summary = replay(&path).unwrap();
        assert_eq!(summary.records.len(), 200);
        assert!(!summary.torn);
    }

    #[test]
    fn rotate_keeps_only_the_tail() {
        let dir = tmpdir("rotate");
        let path = dir.join("wal.log");
        let (wal, _) = Wal::open(&path, opts(FsyncPolicy::Always)).unwrap();
        for v in 1..=10u64 {
            wal.append_durable(v, &[0u8; 64]).unwrap();
        }
        let before = wal.log_bytes();
        wal.rotate(7).unwrap();
        assert_eq!(wal.log_records(), 3);
        assert!(wal.log_bytes() < before);
        // Appends continue after rotation.
        wal.append_durable(11, b"post-rotate").unwrap();
        drop(wal);
        let summary = replay(&path).unwrap();
        let versions: Vec<u64> = summary.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![8, 9, 10, 11]);
    }

    #[test]
    fn poison_fails_appends_with_the_reason() {
        let dir = tmpdir("poison");
        let path = dir.join("wal.log");
        let (wal, _) =
            Wal::open(&path, opts(FsyncPolicy::Group(Duration::from_millis(2)))).unwrap();
        wal.append_durable(1, b"fine").unwrap();
        wal.poison("injected by test");
        let err = wal.append(2, b"doomed").unwrap_err();
        assert!(err.to_string().contains("injected by test"), "{err}");
        // Already-durable data is intact.
        drop(wal);
        assert_eq!(replay(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn truncate_to_drops_a_record_and_its_suffix() {
        let dir = tmpdir("trunc");
        let path = dir.join("wal.log");
        let (wal, _) = Wal::open(&path, opts(FsyncPolicy::Always)).unwrap();
        for v in 1..=3u64 {
            wal.append_durable(v, &[v as u8; 16]).unwrap();
        }
        let summary = replay(&path).unwrap();
        wal.truncate_to(summary.records[1].offset).unwrap();
        assert_eq!(wal.log_records(), 1);
        drop(wal);
        let after = replay(&path).unwrap();
        assert_eq!(after.records.len(), 1);
        assert!(!after.torn);
    }
}
