//! Checkpoint files: a frozen graph + index snapshot at one engine
//! version, written beside the log so boot replays only the tail.
//!
//! File layout (little endian):
//!
//! ```text
//! magic "PKBK" | u32 format_version (1)
//! u64 engine_version
//! u64 graph_len  | graph_len bytes  (kgraph snapshot encoding)
//! u64 index_len  | index_len bytes  (pathindex snapshot encoding)
//! u32 crc        (CRC-32 of everything between the header and the crc)
//! ```
//!
//! Historical note: checkpoints originally opened with `PKBC`, the
//! same magic as the compressed path-index image — the collision
//! docs/FORMATS.md warns about. The writer now emits `PKBK`; the
//! decoder accepts both forever, so existing checkpoint files keep
//! loading unchanged.
//!
//! Writes go through a temp file + `fsync` + `rename` + directory
//! `fsync`, so a crash leaves either the old set of checkpoints or the
//! old set plus one complete new file — never a half-written one that
//! parses. [`load_latest`] additionally falls back to older checkpoints
//! if the newest fails its CRC (e.g. disk corruption after the fact).

use crate::crc::crc32;
use patternkb_graph::snapshot::{invalid_data, Reader, SnapshotError};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"PKBK";
/// The pre-0.3 checkpoint magic, shared with the compressed index image
/// by historical accident. Read support is permanent; never written.
const LEGACY_MAGIC: &[u8; 4] = b"PKBC";
const FORMAT_VERSION: u32 = 1;
const SUFFIX: &str = ".pkbc";

/// One materialized engine state: the serialized graph and index at
/// `version`. The payload encodings belong to `patternkb-graph` /
/// `patternkb-pathindex`; this module only frames and checksums them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Engine version the snapshot was taken at. Log records with
    /// versions at or below it are covered and can be rotated away.
    pub version: u64,
    /// `patternkb_graph::snapshot::encode` bytes.
    pub graph: Vec<u8>,
    /// `patternkb_pathindex::snapshot::encode` bytes.
    pub index: Vec<u8>,
}

impl Checkpoint {
    /// Serialize to the on-disk framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 8 + 16 + self.graph.len() + self.index.len() + 4);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&(self.graph.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.graph);
        buf.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.index);
        let crc = crc32(&[&buf[8..]]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decode and verify one checkpoint file's bytes.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, SnapshotError> {
        let mut r = Reader::new(data);
        let mut magic = [0u8; 4];
        r.take(&mut magic)?;
        if &magic != MAGIC && &magic != LEGACY_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let format = r.u32()?;
        if format != FORMAT_VERSION {
            return Err(SnapshotError::BadVersion(format));
        }
        if data.len() < 12 {
            // Header but no room for even the trailing crc.
            return Err(SnapshotError::Truncated { offset: data.len() });
        }
        let body = &data[8..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
        if crc32(&[body]) != stored {
            return Err(SnapshotError::BadReference {
                offset: data.len() - 4,
            });
        }
        let version = r.u64()?;
        let graph = read_blob(&mut r)?;
        let index = read_blob(&mut r)?;
        if r.remaining() != 4 {
            // Trailing bytes between the index and the crc: not ours.
            return Err(r.bad_reference());
        }
        Ok(Checkpoint {
            version,
            graph,
            index,
        })
    }
}

fn read_blob(r: &mut Reader) -> Result<Vec<u8>, SnapshotError> {
    let len = r.u64()? as usize;
    r.need(len.saturating_add(4))?; // blob + at least the trailing crc
    let mut buf = vec![0u8; len];
    r.take(&mut buf)?;
    Ok(buf)
}

fn file_name(version: u64) -> String {
    format!("checkpoint-{version:020}{SUFFIX}")
}

fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(SUFFIX)?
        .parse()
        .ok()
}

/// Write `checkpoint` into `dir` as `checkpoint-<version>.pkbc`,
/// crash-safely (temp file, `fsync`, `rename`, directory `fsync`).
/// Returns the final path.
pub fn write(dir: &Path, checkpoint: &Checkpoint) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let final_path = dir.join(file_name(checkpoint.version));
    let tmp = dir.join(format!("{}.tmp", file_name(checkpoint.version)));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&checkpoint.encode())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &final_path)?;
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Checkpoint files in `dir`, sorted by version ascending. Files that
/// merely *look* like checkpoints but have unparseable names are ignored.
pub fn list(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(version) = entry.file_name().to_str().and_then(parse_file_name) {
            out.push((version, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Load the newest checkpoint that decodes cleanly, falling back to older
/// ones if the newest is damaged (and leaving the damaged file in place
/// for inspection). `Ok(None)` when the directory holds no usable
/// checkpoint.
pub fn load_latest(dir: &Path) -> std::io::Result<Option<(Checkpoint, PathBuf)>> {
    for (_, path) in list(dir)?.into_iter().rev() {
        let data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        match Checkpoint::decode(&data) {
            Ok(cp) => return Ok(Some((cp, path))),
            Err(_) => continue,
        }
    }
    Ok(None)
}

/// Delete all but the newest `keep` checkpoint files; returns how many
/// were removed. Keeping more than one means a corrupt newest checkpoint
/// still leaves a fallback.
pub fn prune(dir: &Path, keep: usize) -> std::io::Result<usize> {
    let files = list(dir)?;
    let mut removed = 0;
    if files.len() > keep {
        for (_, path) in &files[..files.len() - keep] {
            std::fs::remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Decode the checkpoint at `path`, mapping decode errors to positional
/// `io::Error`s naming the file.
pub fn load(path: &Path) -> std::io::Result<Checkpoint> {
    let data = std::fs::read(path)?;
    Checkpoint::decode(&data).map_err(|e| invalid_data(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("patternkb_ckpt_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(version: u64) -> Checkpoint {
        Checkpoint {
            version,
            graph: format!("graph bytes at v{version}").into_bytes(),
            index: format!("index bytes at v{version}").into_bytes(),
        }
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = tmpdir("roundtrip");
        let cp = sample(42);
        let path = write(&dir, &cp).unwrap();
        assert!(path.ends_with("checkpoint-00000000000000000042.pkbc"));
        assert_eq!(load(&path).unwrap(), cp);
        let (latest, latest_path) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(latest, cp);
        assert_eq!(latest_path, path);
    }

    #[test]
    fn load_latest_prefers_newest_and_falls_back_past_corruption() {
        let dir = tmpdir("fallback");
        write(&dir, &sample(5)).unwrap();
        write(&dir, &sample(9)).unwrap();
        let newest = write(&dir, &sample(12)).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().0.version, 12);

        // Damage the newest: fall back to v9.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (cp, _) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(cp.version, 9);
        // The damaged file is left in place for inspection.
        assert!(newest.exists());
    }

    #[test]
    fn decode_rejects_garbage_with_positions() {
        assert_eq!(
            Checkpoint::decode(b"PK"),
            Err(SnapshotError::Truncated { offset: 0 })
        );
        assert_eq!(
            Checkpoint::decode(b"NOPE\0\0\0\0"),
            Err(SnapshotError::BadMagic)
        );
        let good = sample(7).encode();
        for cut in 0..good.len() {
            assert!(
                Checkpoint::decode(&good[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Any single-byte flip in the body fails the CRC.
        let mut flipped = good.clone();
        flipped[10] ^= 0x01;
        assert!(matches!(
            Checkpoint::decode(&flipped),
            Err(SnapshotError::BadReference { .. })
        ));
    }

    #[test]
    fn legacy_pkbc_magic_still_decodes() {
        // Checkpoints written before the PKBK magic switch open with
        // "PKBC"; they must load forever. Rewrite the magic in place —
        // it sits outside the CRC-covered body, so nothing else moves.
        let cp = sample(33);
        let mut old = cp.encode();
        assert_eq!(&old[..4], b"PKBK", "writer emits the fresh magic");
        old[..4].copy_from_slice(b"PKBC");
        assert_eq!(Checkpoint::decode(&old).unwrap(), cp);
        // Anything else is still rejected.
        old[..4].copy_from_slice(b"PKBX");
        assert_eq!(Checkpoint::decode(&old), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = tmpdir("prune");
        for v in [3u64, 8, 15, 21] {
            write(&dir, &sample(v)).unwrap();
        }
        assert_eq!(prune(&dir, 2).unwrap(), 2);
        let left: Vec<u64> = list(&dir).unwrap().into_iter().map(|(v, _)| v).collect();
        assert_eq!(left, vec![15, 21]);
        // Pruning below the current count is a no-op.
        assert_eq!(prune(&dir, 5).unwrap(), 0);
    }

    #[test]
    fn missing_dir_is_empty_not_an_error() {
        let dir = tmpdir("missing").join("nope");
        assert!(list(&dir).unwrap().is_empty());
        assert!(load_latest(&dir).unwrap().is_none());
        assert_eq!(prune(&dir, 1).unwrap(), 0);
    }
}
