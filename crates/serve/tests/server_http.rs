//! End-to-end server tests over real TCP sockets: boot [`Server`] on an
//! ephemeral port with the Figure-1 engine and drive it with raw HTTP —
//! happy paths, malformed input, backpressure shedding, hot reload under
//! concurrent load, and graceful shutdown.

use patternkb_search::{EngineBuilder, Error, SearchEngine, SearchRequest, SharedEngine};
use patternkb_serve::{Json, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn figure1_engine() -> SearchEngine {
    let (g, _) = patternkb_datagen::figure1();
    EngineBuilder::new().graph(g).threads(1).build().unwrap()
}

fn shared_engine() -> Arc<SharedEngine> {
    let (g, _) = patternkb_datagen::figure1();
    Arc::new(
        EngineBuilder::new()
            .graph(g)
            .threads(1)
            .build_shared()
            .unwrap(),
    )
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    }
}

/// One-shot HTTP exchange (`Connection: close`); returns (status, head,
/// body).
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((text.clone(), String::new()));
    (status, head, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn search(addr: SocketAddr, body: &str) -> (u16, String, String) {
    post(addr, "/search", body)
}

#[test]
fn search_healthz_metrics_happy_path() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let addr = server.local_addr();

    let (status, _, body) = search(
        addr,
        r#"{"q": "database software company revenue", "k": 5}"#,
    );
    assert_eq!(status, 200, "body: {body}");
    let json = Json::parse(&body).unwrap();
    assert_eq!(json.get("cache").unwrap().as_str(), Some("miss"));
    let patterns = json.get("patterns").unwrap().as_arr().unwrap();
    assert!(!patterns.is_empty());
    let top = &patterns[0];
    assert_eq!(top.get("num_trees").unwrap().as_u64(), Some(2));
    assert!(top.get("columns").is_some() && top.get("rows").is_some());
    let stats = json.get("stats").unwrap();
    assert!(stats.get("shards").unwrap().as_u64().unwrap() >= 1);

    // Same request again: served from the shared result cache.
    let (_, _, body2) = search(
        addr,
        r#"{"q": "database software company revenue", "k": 5}"#,
    );
    let json2 = Json::parse(&body2).unwrap();
    assert_eq!(json2.get("cache").unwrap().as_str(), Some("hit"));

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(health.get("epoch").unwrap().as_u64(), Some(0));

    let (status, head, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain"));
    for family in [
        "patternkb_requests_total{route=\"search\",code=\"200\"} 2",
        "patternkb_search_latency_seconds_bucket",
        "patternkb_search_latency_seconds_count 2",
        "patternkb_queue_depth",
        "patternkb_shed_total{reason=\"queue_full\"} 0",
        "patternkb_shed_total{reason=\"deadline\"} 0",
        "patternkb_cache_hits_total 1",
        "patternkb_cache_misses_total 1",
        "patternkb_engine_epoch 0",
        "patternkb_batches_total",
        "patternkb_shard_subtrees_total",
        "patternkb_connections_active",
        "patternkb_storage_backend{backend=\"heap\"} 1",
        "patternkb_storage_backend{backend=\"mmap\"} 0",
    ] {
        assert!(
            metrics.contains(family),
            "missing {family:?} in:\n{metrics}"
        );
    }

    server.trigger_shutdown();
    server.join();
}

/// Booting from a v5 snapshot on the mapped tier flips the
/// `patternkb_storage_backend` gauge and exposes the load time.
#[test]
fn metrics_report_mmap_backend_and_snapshot_load_time() {
    use patternkb_search::StorageBackend;

    let dir = std::env::temp_dir().join(format!("patternkb_serve_mmap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1.pkb5");
    let engine = figure1_engine();
    patternkb_index::storage::save_v5(engine.index(), &path).unwrap();

    let (g, _) = patternkb_datagen::figure1();
    let shared = Arc::new(
        EngineBuilder::new()
            .graph(g)
            .threads(1)
            .index_snapshot(&path)
            .storage(StorageBackend::Mmap)
            .build_shared()
            .unwrap(),
    );
    let server = Server::start(shared, None, test_config()).unwrap();
    let addr = server.local_addr();

    let (status, _, body) = search(
        addr,
        r#"{"q": "database software company revenue", "k": 5}"#,
    );
    assert_eq!(status, 200, "body: {body}");

    let (_, _, metrics) = get(addr, "/metrics");
    for family in [
        "patternkb_storage_backend{backend=\"mmap\"} 1",
        "patternkb_storage_backend{backend=\"heap\"} 0",
        "patternkb_snapshot_load_seconds",
    ] {
        assert!(
            metrics.contains(family),
            "missing {family:?} in:\n{metrics}"
        );
    }

    server.trigger_shutdown();
    server.join();
    std::fs::remove_file(&path).ok();
}

#[test]
fn query_errors_are_4xx_json() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let addr = server.local_addr();

    // Unknown keywords: 400 listing the words.
    let (status, _, body) = search(addr, r#"{"q": "qqqqzzzz"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown_words") && body.contains("qqqqzzzz"));

    // Empty query: 400.
    let (status, _, body) = search(addr, r#"{"q": ""}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("empty_query"));

    // Strict schema: typo'd field named in the error.
    let (status, _, body) = search(addr, r#"{"q": "a", "kk": 3}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown_field") && body.contains("kk"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn malformed_http_and_oversized_bodies_do_not_kill_the_server() {
    let cfg = ServeConfig {
        max_body_bytes: 64,
        ..test_config()
    };
    let server = Server::start(shared_engine(), None, cfg).unwrap();
    let addr = server.local_addr();

    // Garbage request line → 400.
    let (status, _, _) = exchange(addr, "complete nonsense\r\n\r\n");
    assert_eq!(status, 400);

    // Bad JSON body → 400.
    let (status, _, body) = search(addr, "{not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad_json"));

    // Oversized body → 413 before buffering it.
    let big = format!(r#"{{"q": "{}"}}"#, "x".repeat(500));
    let (status, _, _) = search(addr, &big);
    assert_eq!(status, 413);

    // Chunked transfer → 411.
    let (status, _, _) = exchange(
        addr,
        "POST /search HTTP/1.1\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 411);

    // Unknown path → 404; wrong method → 405.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(post(addr, "/healthz", "").0, 405);

    // After all that abuse the server still answers normally.
    let (status, _, _) = search(addr, r#"{"q": "company revenue"}"#);
    assert_eq!(status, 200);

    server.trigger_shutdown();
    server.join();
}

#[test]
fn full_queue_sheds_429_with_retry_after() {
    // Capacity 0: every admission sheds — the deterministic overload.
    let cfg = ServeConfig {
        queue_capacity: 0,
        ..test_config()
    };
    let server = Server::start(shared_engine(), None, cfg).unwrap();
    let addr = server.local_addr();

    let (status, head, body) = search(addr, r#"{"q": "company revenue"}"#);
    assert_eq!(status, 429);
    assert!(head.to_lowercase().contains("retry-after: 1"));
    assert!(body.contains("overloaded"));
    assert_eq!(
        server
            .metrics()
            .shed_queue_full
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("patternkb_shed_total{reason=\"queue_full\"} 1"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn expired_deadline_sheds_503_without_searching() {
    let cfg = ServeConfig {
        deadline: Duration::ZERO,
        ..test_config()
    };
    let server = Server::start(shared_engine(), None, cfg).unwrap();
    let addr = server.local_addr();

    let (status, _, body) = search(addr, r#"{"q": "company revenue"}"#);
    assert_eq!(status, 503);
    assert!(body.contains("deadline"));
    assert_eq!(
        server
            .metrics()
            .shed_deadline
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The search never ran: no latency observations.
    assert_eq!(server.metrics().latency.count(), 0);

    server.trigger_shutdown();
    server.join();
}

#[test]
fn reload_swaps_epochs_under_concurrent_load() {
    let reload: Box<patternkb_serve::ReloadFn> = Box::new(|| Ok(figure1_engine()));
    let server = Server::start(shared_engine(), Some(reload), test_config()).unwrap();
    let addr = server.local_addr();

    let errors = std::sync::atomic::AtomicUsize::new(0);
    let stop_flag = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop_flag;
        let errors = &errors;
        let mut clients = Vec::new();
        for _ in 0..3 {
            clients.push(scope.spawn(move || {
                let mut counts = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, _, body) = search(
                        addr,
                        r#"{"q": "database software company revenue", "k": 9}"#,
                    );
                    if status != 200 {
                        errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        continue;
                    }
                    let json = Json::parse(&body).unwrap();
                    // Exactly one epoch answered: the response is
                    // internally consistent (all fields from one state).
                    let n = json.get("patterns").unwrap().as_arr().unwrap().len();
                    let v = json.get("engine_version").unwrap().as_u64().unwrap();
                    counts.push((n, v));
                }
                counts
            }));
        }
        // Three hot swaps while the clients hammer.
        for i in 0..3 {
            let (status, _, body) = post(addr, "/admin/reload", "");
            assert_eq!(status, 200, "reload {i}: {body}");
            let json = Json::parse(&body).unwrap();
            assert_eq!(json.get("epoch").unwrap().as_u64(), Some(i + 1));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for c in clients {
            let counts = c.join().unwrap();
            // Both datasets are Figure-1: answers must be identical across
            // epochs (same patterns), while versions step on each swap.
            assert!(counts.iter().all(|&(n, _)| n == counts[0].0));
        }
    });
    assert_eq!(errors.load(std::sync::atomic::Ordering::Relaxed), 0);

    let (_, _, body) = get(addr, "/healthz");
    assert_eq!(
        Json::parse(&body).unwrap().get("epoch").unwrap().as_u64(),
        Some(3)
    );
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("patternkb_reloads_total 3"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn reload_without_source_is_501() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let (status, _, body) = post(server.local_addr(), "/admin/reload", "");
    assert_eq!(status, 501);
    assert!(body.contains("not_implemented"));
    server.trigger_shutdown();
    server.join();
}

#[test]
fn admin_shutdown_drains_gracefully() {
    let engine = shared_engine();
    let server = Server::start(Arc::clone(&engine), None, test_config()).unwrap();
    let addr = server.local_addr();

    // Serve something first.
    assert_eq!(search(addr, r#"{"q": "company revenue"}"#).0, 200);

    // The shutdown ack arrives before the server stops.
    let (status, _, body) = post(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"));

    // join() returns: workers drained and joined, engine closed.
    server.join();
    assert!(engine.is_closed());
    assert!(matches!(
        engine.respond(&SearchRequest::text("company revenue")),
        Err(Error::Closed)
    ));

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn ingest_applies_online_while_reads_flow() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let addr = server.local_addr();

    // Readers hammer a query whose answer the ingest will change; every
    // response must come from exactly one consistent snapshot.
    let errors = std::sync::atomic::AtomicUsize::new(0);
    let stop_flag = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop_flag;
        let errors = &errors;
        for _ in 0..2 {
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, _, body) = search(
                        addr,
                        r#"{"q": "database software company revenue", "k": 9}"#,
                    );
                    if status != 200 {
                        errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        continue;
                    }
                    let json = Json::parse(&body).unwrap();
                    let top = &json.get("patterns").unwrap().as_arr().unwrap()[0];
                    let rows = top.get("num_trees").unwrap().as_u64().unwrap();
                    // 2 rows before the ingest lands, 3 after — never
                    // anything else (no torn state).
                    assert!(rows == 2 || rows == 3, "inconsistent row count {rows}");
                }
            });
        }

        // The DB2/IBM ingest from the paper's running example, by name.
        let (status, _, body) = post(
            addr,
            "/admin/ingest",
            r#"{"mutations":[
                {"op":"add_node","type":"Software","name":"DB2"},
                {"op":"add_node","type":"Company","name":"IBM"},
                {"op":"add_edge","source":"DB2","attr":"Developer","target":"IBM"},
                {"op":"add_edge","source":"DB2","attr":"Genre","target":"Relational database"},
                {"op":"add_text_edge","source":"IBM","attr":"Revenue","value":"US$ 57 billion"}
            ],"pagerank":"recompute"}"#,
        );
        assert_eq!(status, 200, "{body}");
        let json = Json::parse(&body).unwrap();
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(json.get("version").unwrap().as_u64(), Some(1));
        assert!(json.get("affected_roots").unwrap().as_u64().unwrap() > 0);
        let stats = json.get("stats").unwrap();
        assert!(stats.get("postings_added").unwrap().as_u64().unwrap() > 0);

        // The new facts are queryable immediately after the 200.
        let (status, _, body) = search(
            addr,
            r#"{"q": "database software company revenue", "k": 9}"#,
        );
        assert_eq!(status, 200);
        let json = Json::parse(&body).unwrap();
        let top = &json.get("patterns").unwrap().as_arr().unwrap()[0];
        assert_eq!(top.get("num_trees").unwrap().as_u64(), Some(3));
        assert_eq!(json.get("engine_version").unwrap().as_u64(), Some(1));

        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(errors.load(std::sync::atomic::Ordering::Relaxed), 0);

    let (_, _, metrics) = get(addr, "/metrics");
    for family in [
        "patternkb_ingests_total 1",
        "patternkb_ingest_failures_total 0",
        "patternkb_ingest_refresh_seconds_count 1",
        "patternkb_engine_version 1",
    ] {
        assert!(
            metrics.contains(family),
            "missing {family:?} in:\n{metrics}"
        );
    }

    server.trigger_shutdown();
    server.join();
}

#[test]
fn racing_ingests_both_succeed_serialized() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let addr = server.local_addr();

    // Two connection threads fire ingest batches concurrently with no
    // retry logic: the writer lock serializes them, so both must land
    // (never a BaseMismatch rejection).
    std::thread::scope(|scope| {
        for t in 0..2 {
            scope.spawn(move || {
                for i in 0..3 {
                    let body = format!(
                        r#"{{"mutations":[
                            {{"op":"add_node","type":"Company","name":"racer {t} entity {i}"}},
                            {{"op":"add_text_edge","source":"racer {t} entity {i}","attr":"Revenue","value":"US$ {t}{i} million"}}
                        ]}}"#
                    );
                    let (status, _, reply) = post(addr, "/admin/ingest", &body);
                    assert_eq!(status, 200, "racer {t} batch {i}: {reply}");
                }
            });
        }
    });
    assert_eq!(server.engine().version(), 6);

    // All six entities are queryable.
    let (status, _, body) = search(addr, r#"{"q": "racer entity", "k": 100}"#);
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).unwrap();
    let top = &json.get("patterns").unwrap().as_arr().unwrap()[0];
    assert_eq!(top.get("num_trees").unwrap().as_u64(), Some(6));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn ingest_errors_are_typed_400_409_501() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let addr = server.local_addr();

    // Unknown field: 400 naming it.
    let (status, _, body) = post(addr, "/admin/ingest", r#"{"mutation":[]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown_field") && body.contains("mutation"));

    // Unresolvable name: 400 naming the mutation.
    let (status, _, body) = post(
        addr,
        "/admin/ingest",
        r#"{"mutations":[{"op":"add_text_edge","source":"Hooli","attr":"Revenue","value":"x"}]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unresolved_node") && body.contains("Hooli"));

    // Removing a non-existent edge: validation conflict → 409.
    let (status, _, body) = post(
        addr,
        "/admin/ingest",
        r#"{"mutations":[{"op":"remove_edge","source":"Microsoft","attr":"Developer","target":"SQL Server"}]}"#,
    );
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("conflict"));

    // Nothing landed.
    assert_eq!(server.engine().version(), 0);
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("patternkb_ingests_total 0"));
    assert!(metrics.contains("patternkb_ingest_failures_total 3"));
    server.trigger_shutdown();
    server.join();

    // A server booted without the write path answers 501.
    let cfg = ServeConfig {
        enable_ingest: false,
        ..test_config()
    };
    let server = Server::start(shared_engine(), None, cfg).unwrap();
    let (status, _, body) = post(server.local_addr(), "/admin/ingest", r#"{"mutations":[]}"#);
    assert_eq!(status, 501, "{body}");
    server.trigger_shutdown();
    server.join();
}

#[test]
fn closed_engine_maps_to_503_for_queries_and_ingests() {
    // An embedder can close the shared engine while the HTTP front-end is
    // still up (e.g. a shutdown race): both routes must answer with the
    // typed 503, not a fall-through 500.
    let engine = shared_engine();
    let server = Server::start(Arc::clone(&engine), None, test_config()).unwrap();
    let addr = server.local_addr();
    engine.close();

    let (status, _, body) = search(addr, r#"{"q": "company revenue"}"#);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"closed\""), "{body}");

    let (status, _, body) = post(
        addr,
        "/admin/ingest",
        r#"{"mutations":[{"op":"add_node","type":"Company","name":"latecomer"}]}"#,
    );
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"closed\""), "{body}");

    server.trigger_shutdown();
    server.join();
}

#[test]
fn retry_after_is_a_single_derived_value() {
    // All shedding sites emit the same derived header; with an idle
    // queue the estimate is the 1s floor.
    let cfg = ServeConfig {
        queue_capacity: 0,
        ..test_config()
    };
    let server = Server::start(shared_engine(), None, cfg).unwrap();
    let addr = server.local_addr();
    let (status, head, _) = search(addr, r#"{"q": "company revenue"}"#);
    assert_eq!(status, 429);
    let retry: u64 = head
        .to_lowercase()
        .lines()
        .find_map(|l| l.strip_prefix("retry-after: ").map(str::to_string))
        .expect("retry-after header present")
        .trim()
        .parse()
        .expect("integer seconds");
    assert!((1..=30).contains(&retry));
    server.trigger_shutdown();
    server.join();
}

#[test]
fn per_request_timeout_is_clamped_and_applied() {
    // A generous server deadline, but the request asks for 1ms and the
    // queue is pre-expired by the zero-capacity... instead: use a normal
    // queue and rely on the clamp path being exercised by a healthy
    // request (the timeout only tightens; the request still succeeds).
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let addr = server.local_addr();
    let (status, _, _) = search(addr, r#"{"q": "company revenue", "timeout_ms": 30000}"#);
    assert_eq!(status, 200);
    let (status, _, body) = search(addr, r#"{"q": "company revenue", "timeout_ms": 0}"#);
    assert_eq!(status, 400, "{body}");
    server.trigger_shutdown();
    server.join();
}

/// Fresh scratch directory for a durable-server test; removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("patternkb_serve_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_engine(dir: &std::path::Path) -> Arc<SharedEngine> {
    let (g, _) = patternkb_datagen::figure1();
    Arc::new(
        EngineBuilder::new()
            .graph(g)
            .threads(1)
            .data_dir(dir)
            .build_shared()
            .unwrap(),
    )
}

const DB2_BATCH: &str = r#"{"mutations":[
    {"op":"add_node","type":"Software","name":"DB2"},
    {"op":"add_node","type":"Company","name":"IBM"},
    {"op":"add_edge","source":"DB2","attr":"Developer","target":"IBM"},
    {"op":"add_edge","source":"DB2","attr":"Genre","target":"Relational database"},
    {"op":"add_text_edge","source":"IBM","attr":"Revenue","value":"US$ 57 billion"}
],"pagerank":"recompute"}"#;

#[test]
fn durable_server_acks_survive_reboot() {
    let scratch = ScratchDir::new("reboot");
    let server = Server::start(durable_engine(&scratch.0), None, test_config()).unwrap();
    let addr = server.local_addr();

    let (status, _, body) = post(addr, "/admin/ingest", DB2_BATCH);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Json::parse(&body).unwrap().get("version").unwrap().as_u64(),
        Some(1)
    );

    // The WAL families show up on /metrics once a durable write landed.
    let (_, _, metrics) = get(addr, "/metrics");
    for family in [
        "patternkb_wal_appended_total 1",
        "patternkb_wal_records 1",
        "patternkb_wal_fsync_seconds_count",
        "patternkb_checkpoints_total 0",
    ] {
        assert!(
            metrics.contains(family),
            "missing {family:?} in:\n{metrics}"
        );
    }

    // Reload would fork the log's history: refused while durable.
    let (status, _, body) = post(addr, "/admin/reload", "");
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("conflict"), "{body}");

    // Capture the answer the live server gives, to compare after reboot.
    let (status, _, before) = search(
        addr,
        r#"{"q": "database software company revenue", "k": 9}"#,
    );
    assert_eq!(status, 200, "{before}");

    server.trigger_shutdown();
    server.join();

    // Reboot from the same directory: the acked version and its facts
    // come back from checkpoint + log replay, not from the dataset spec.
    let server = Server::start(durable_engine(&scratch.0), None, test_config()).unwrap();
    let addr = server.local_addr();
    assert_eq!(server.engine().version(), 1);
    let (status, _, body) = search(
        addr,
        r#"{"q": "database software company revenue", "k": 9}"#,
    );
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).unwrap();
    let top = &json.get("patterns").unwrap().as_arr().unwrap()[0];
    assert_eq!(top.get("num_trees").unwrap().as_u64(), Some(3));
    // The replayed engine answers exactly what the live one did (modulo
    // the per-response cache marker and wall-clock timing).
    let strip = |s: &str| -> String {
        let s = s
            .replace("\"cache\":\"miss\"", "")
            .replace("\"cache\":\"hit\"", "");
        match s.split_once("\"elapsed_us\":") {
            Some((head, tail)) => {
                let rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
                format!("{head}{rest}")
            }
            None => s,
        }
    };
    assert_eq!(strip(&body), strip(&before));
    server.trigger_shutdown();
    server.join();
}

#[test]
fn admin_checkpoint_truncates_log_and_counts() {
    let scratch = ScratchDir::new("checkpoint");
    let server = Server::start(durable_engine(&scratch.0), None, test_config()).unwrap();
    let addr = server.local_addr();

    let (status, _, body) = post(addr, "/admin/ingest", DB2_BATCH);
    assert_eq!(status, 200, "{body}");

    let (status, _, body) = post(addr, "/admin/checkpoint", "");
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).unwrap();
    assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(json.get("version").unwrap().as_u64(), Some(1));
    let path = json.get("path").unwrap().as_str().unwrap().to_string();
    assert!(std::path::Path::new(&path).exists(), "{path}");

    // The log was rotated behind the checkpoint and the age gauge ticks.
    let (_, _, metrics) = get(addr, "/metrics");
    for family in [
        "patternkb_checkpoints_total 1",
        "patternkb_checkpoint_failures_total 0",
        "patternkb_wal_records 0",
        "patternkb_checkpoint_age_seconds",
    ] {
        assert!(
            metrics.contains(family),
            "missing {family:?} in:\n{metrics}"
        );
    }

    server.trigger_shutdown();
    server.join();

    // Reboot answers from the checkpoint alone (empty tail).
    let server = Server::start(durable_engine(&scratch.0), None, test_config()).unwrap();
    assert_eq!(server.engine().version(), 1);
    server.trigger_shutdown();
    server.join();
}

#[test]
fn checkpoint_without_data_dir_is_501() {
    let server = Server::start(shared_engine(), None, test_config()).unwrap();
    let (status, _, body) = post(server.local_addr(), "/admin/checkpoint", "");
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("not_implemented"), "{body}");
    server.trigger_shutdown();
    server.join();
}

#[test]
fn wal_failure_maps_to_distinct_503_and_is_never_visible() {
    let scratch = ScratchDir::new("poison");
    let server = Server::start(durable_engine(&scratch.0), None, test_config()).unwrap();
    let addr = server.local_addr();

    // Simulate the disk dying under the log: every later append must be
    // refused, and a refused write must never become visible to reads.
    let durability = server.engine().durability().expect("durable boot").clone();
    durability.wal().poison("injected: disk gone");

    let (status, _, body) = post(addr, "/admin/ingest", DB2_BATCH);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"durability\""), "{body}");
    assert!(body.contains("injected: disk gone"), "{body}");

    // Not applied: version unmoved, the fact is not queryable.
    assert_eq!(server.engine().version(), 0);
    let (status, _, body) = search(
        addr,
        r#"{"q": "database software company revenue", "k": 9}"#,
    );
    assert_eq!(status, 200, "{body}");
    let json = Json::parse(&body).unwrap();
    let top = &json.get("patterns").unwrap().as_arr().unwrap()[0];
    assert_eq!(top.get("num_trees").unwrap().as_u64(), Some(2));

    // The failure is visible on /metrics as an ingest failure.
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("patternkb_ingest_failures_total 1"),
        "{metrics}"
    );

    server.trigger_shutdown();
    server.join();
}
