//! The server proper: acceptor, connection threads, the fixed worker
//! pool, and the serving lifecycle (reload, drain, shutdown).
//!
//! ## Thread model
//!
//! ```text
//! acceptor ──▶ connection threads (blocking IO, one per open conn)
//!                   │  admission: BoundedQueue::try_push  ── full ──▶ 429
//!                   ▼
//!           bounded admission queue
//!                   │  pop_batch (micro-batches)
//!                   ▼
//!          worker pool (fixed N) ──▶ SharedEngine::respond_on(snapshot, …)
//! ```
//!
//! Connection threads do only IO and parsing; every search runs on the
//! **fixed** worker pool, so engine concurrency is bounded by `workers`
//! no matter how many connections are open. Workers pop *batches*: one
//! [`SharedEngine::snapshot`] per batch answers every request in it —
//! the swap-pointer read, admission bookkeeping, and reload interleaving
//! are paid per batch, not per request, and a batch is guaranteed one
//! consistent engine state.
//!
//! ## Backpressure
//!
//! Admission is never blocking: a full queue sheds immediately with
//! `429` + `Retry-After`, and every admitted request carries a deadline
//! (`ServeConfig::deadline`, tightened per request via `timeout_ms`) —
//! a worker popping an expired request sheds it with `503` without
//! running the search. Under overload the queue length, not the latency
//! tail, absorbs the excess.
//!
//! ## Writes
//!
//! `POST /admin/ingest` is the **online write path**: a JSON mutation
//! batch is compiled into a [`patternkb_graph::mutate::GraphDelta`] and
//! applied through [`SharedEngine::ingest_with`] — the delta is built
//! against the snapshot pinned under the writer lock, refreshed
//! incrementally (never a full rebuild), and swapped in while reads keep
//! serving the old snapshot. Racing ingests serialize on the writer lock;
//! racing reads never stall beyond the pointer swap. Runs on the
//! connection thread (like reload), so the worker pool keeps answering
//! queries throughout.
//!
//! ## Lifecycle
//!
//! `POST /admin/reload` rebuilds the engine through the caller-provided
//! [`ReloadFn`] and hot-swaps it ([`SharedEngine::replace`]) — in-flight
//! queries finish on the old epoch. Shutdown (`POST /admin/shutdown` or
//! [`Server::trigger_shutdown`]) stops admission, drains the queue,
//! joins the workers, then closes the engine ([`SharedEngine::close`]).

use crate::api;
use crate::http::{write_response, HttpError, HttpLimits, HttpReader, Request};
use crate::json::{count, Json};
use crate::metrics::{Route, ServerMetrics};
use crate::queue::BoundedQueue;
use patternkb_search::{IngestError, SearchEngine, SearchRequest, SharedEngine};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads/pops wake to check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(200);

/// Everything tunable about a server. `Default` is a sane laptop/CI
/// profile; production deployments should size `workers`,
/// `queue_capacity`, and `deadline` to their latency budget.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 = ephemeral).
    pub addr: String,
    /// Search worker threads; 0 = available parallelism.
    pub workers: usize,
    /// Admission queue slots. 0 means *always shed* (drain/test mode).
    pub queue_capacity: usize,
    /// Max requests a worker takes per batch pop.
    pub batch_max: usize,
    /// Per-request budget from admission to answer; expired requests are
    /// shed with 503. Request `timeout_ms` can tighten but not extend it.
    pub deadline: Duration,
    /// Request body cap (413 beyond it).
    pub max_body_bytes: usize,
    /// Open-connection cap (503 at accept beyond it).
    pub max_connections: usize,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Whether `POST /admin/ingest` (the online write path) is served.
    /// Disabled servers answer it with 501.
    pub enable_ingest: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            queue_capacity: 1024,
            batch_max: 16,
            deadline: Duration::from_secs(2),
            max_body_bytes: 1024 * 1024,
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
            enable_ingest: true,
        }
    }
}

/// Rebuilds the engine for a hot snapshot swap (`POST /admin/reload`).
/// Runs on the connection thread that received the reload, serialized
/// with other reloads; queries keep flowing on the old state meanwhile.
pub type ReloadFn = dyn Fn() -> Result<SearchEngine, String> + Send + Sync;

/// One admitted search.
struct Job {
    request: SearchRequest,
    admitted: Instant,
    deadline: Instant,
    reply: mpsc::SyncSender<JobReply>,
}

enum JobReply {
    /// 200 with the rendered body.
    Ok(String),
    /// Engine-level failure: status + rendered body.
    Err(u16, String),
    /// Deadline expired in the queue.
    Deadline,
}

struct Shared {
    engine: Arc<SharedEngine>,
    cfg: ServeConfig,
    metrics: ServerMetrics,
    queue: BoundedQueue<Job>,
    reload: Option<Box<ReloadFn>>,
    /// Serializes /admin/reload calls.
    reload_lock: Mutex<()>,
    shutdown: AtomicBool,
    /// Signalled when shutdown is triggered ([`Server::join`] waits here).
    shutdown_signal: (Mutex<bool>, Condvar),
    addr: SocketAddr,
}

/// A running server. Construct with [`Server::start`]; stop with
/// [`Server::trigger_shutdown`] + [`Server::join`] (or let
/// `POST /admin/shutdown` trigger it remotely and just `join`).
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. `reload` powers `POST /admin/reload`
    /// (pass `None` to answer it with 501).
    pub fn start(
        engine: Arc<SharedEngine>,
        reload: Option<Box<ReloadFn>>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let worker_count = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let queue = BoundedQueue::new(cfg.queue_capacity);
        let shared = Arc::new(Shared {
            engine,
            cfg,
            metrics: ServerMetrics::default(),
            queue,
            reload,
            reload_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            addr,
        });

        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("patternkb-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("patternkb-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, listener))?
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The serving handle (shared with the caller).
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.shared.engine
    }

    /// Live server counters (tests and embedders).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Begin graceful shutdown: stop admitting, let the queue drain.
    /// Idempotent; returns immediately — pair with [`Server::join`].
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Whether shutdown has been triggered (locally or via the admin
    /// endpoint).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until shutdown is triggered, then finish it: drain and join
    /// the workers, join the acceptor, close the engine (draining any
    /// direct responders), and give open connections a grace period.
    pub fn join(mut self) {
        {
            let (lock, cv) = &self.shared.shutdown_signal;
            let mut triggered = lock.lock().unwrap();
            while !*triggered {
                triggered = cv.wait(triggered).unwrap();
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().ok();
        }
        for w in self.workers.drain(..) {
            w.join().ok();
        }
        // Workers are gone; now refuse/drain everything still holding the
        // engine handle (idempotent if the embedder closed it already).
        self.shared.engine.close();
        // Connection threads notice the flag within one poll tick; give
        // them a bounded grace period rather than joining each.
        let patience = Instant::now() + POLL_TICK * 10;
        while self
            .shared
            .metrics
            .connections_active
            .load(Ordering::SeqCst)
            > 0
            && Instant::now() < patience
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// The one `Retry-After` header every shedding site emits: derived from
/// the live queue (depth ÷ recent drain rate, clamped to `[1, 30]`) so
/// the three 429/503 paths cannot drift apart.
fn retry_after(shared: &Shared) -> (&'static str, String) {
    ("retry-after", shared.metrics.retry_after_secs().to_string())
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already triggered
    }
    shared.queue.close();
    // Wake the acceptor out of its blocking accept.
    let _ = TcpStream::connect(shared.addr);
    let (lock, cv) = &shared.shutdown_signal;
    *lock.lock().unwrap() = true;
    cv.notify_all();
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        let active = shared.metrics.connections_active.load(Ordering::SeqCst);
        if active >= shared.cfg.max_connections as u64 {
            shared
                .metrics
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let body = api::error_json("overloaded", "connection limit reached", vec![]).render();
            let _ = write_response(
                &mut stream,
                503,
                "application/json",
                &[retry_after(shared)],
                body.as_bytes(),
                false,
            );
            continue;
        }
        shared
            .metrics
            .connections_active
            .fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("patternkb-conn".to_string())
            .spawn(move || {
                let shared = conn_shared;
                // Decrement on every exit path, panics included.
                struct Active<'a>(&'a ServerMetrics);
                impl Drop for Active<'_> {
                    fn drop(&mut self) {
                        self.0.connections_active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _active = Active(&shared.metrics);
                handle_connection(&shared, stream);
            });
        if spawned.is_err() {
            shared
                .metrics
                .connections_active
                .fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = shared.queue.pop_batch(shared.cfg.batch_max, POLL_TICK);
        shared
            .metrics
            .queue_depth
            .store(shared.queue.len() as u64, Ordering::Relaxed);
        if batch.is_empty() {
            if shared.queue.is_closed() {
                break;
            }
            continue;
        }
        // One snapshot answers the whole batch: every request in it sees
        // exactly one engine state, even across a concurrent reload.
        let snapshot = shared.engine.snapshot();
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared.metrics.note_drained(batch.len() as u64);
        for job in batch {
            if Instant::now() >= job.deadline {
                shared.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
                job.reply.send(JobReply::Deadline).ok();
                continue;
            }
            match shared.engine.respond_on(&snapshot, &job.request) {
                Ok(resp) => {
                    shared.metrics.latency.observe(job.admitted.elapsed());
                    shared.metrics.record_shards(&resp.stats);
                    let body = api::render_response(&snapshot, &resp).render();
                    job.reply.send(JobReply::Ok(body)).ok();
                }
                Err(e) => {
                    let (status, body) = api::engine_error(&e);
                    job.reply.send(JobReply::Err(status, body.render())).ok();
                }
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    read_half.set_read_timeout(Some(POLL_TICK)).ok();
    write_half.set_nodelay(true).ok();
    let mut reader = HttpReader::new(read_half);
    let limits = HttpLimits {
        max_body_bytes: shared.cfg.max_body_bytes,
        ..HttpLimits::default()
    };
    let mut last_activity = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_request(&limits) {
            Ok(request) => {
                last_activity = Instant::now();
                if !dispatch(shared, &request, &mut write_half) {
                    break;
                }
            }
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let stalled = last_activity.elapsed();
                if reader.has_partial() {
                    // Mid-request stall: cut slow-loris senders loose.
                    if stalled > shared.cfg.idle_timeout {
                        respond_error(
                            shared,
                            &mut write_half,
                            Route::Other,
                            408,
                            "request timeout",
                        );
                        break;
                    }
                } else if stalled > shared.cfg.idle_timeout {
                    break; // idle keep-alive connection
                }
            }
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
            Err(e) => {
                if let Some((status, message)) = e.status() {
                    respond_error(shared, &mut write_half, Route::Other, status, message);
                }
                break; // framing is unreliable after an error: close
            }
        }
    }
}

/// Write an error response (connection closes after it).
fn respond_error(shared: &Shared, w: &mut TcpStream, route: Route, status: u16, message: &str) {
    shared.metrics.record(route, status);
    let body = api::error_json(kind_of(status), message, vec![]).render();
    let _ = write_response(w, status, "application/json", &[], body.as_bytes(), false);
}

fn kind_of(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "timeout",
        409 => "conflict",
        411 => "length_required",
        413 => "body_too_large",
        429 => "overloaded",
        431 => "head_too_large",
        501 => "not_implemented",
        503 => "unavailable",
        505 => "http_version",
        _ => "internal",
    }
}

/// Handle one request; returns whether to keep the connection open.
fn dispatch(shared: &Shared, request: &Request, w: &mut TcpStream) -> bool {
    let path = request.target.split('?').next().unwrap_or("");
    let keep = request.keep_alive;
    let send = |shared: &Shared,
                w: &mut TcpStream,
                route: Route,
                status: u16,
                extra: &[(&str, String)],
                body: &str,
                keep: bool|
     -> bool {
        shared.metrics.record(route, status);
        write_response(w, status, "application/json", extra, body.as_bytes(), keep).is_ok() && keep
    };

    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            if shared.shutdown.load(Ordering::SeqCst) {
                let body = api::error_json("unavailable", "draining", vec![]).render();
                send(shared, w, Route::Healthz, 503, &[], &body, false)
            } else {
                let body = Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("epoch".to_string(), count(shared.engine.epoch())),
                    ("version".to_string(), count(shared.engine.version())),
                ])
                .render();
                send(shared, w, Route::Healthz, 200, &[], &body, keep)
            }
        }
        ("GET", "/metrics") => {
            let text = shared.metrics.render(&shared.engine);
            shared.metrics.record(Route::Metrics, 200);
            write_response(
                w,
                200,
                "text/plain; version=0.0.4",
                &[],
                text.as_bytes(),
                keep,
            )
            .is_ok()
                && keep
        }
        ("POST", "/search") => handle_search(shared, request, w),
        ("POST", "/admin/ingest") => handle_ingest(shared, request, w),
        ("POST", "/admin/reload") => handle_reload(shared, w, keep),
        ("POST", "/admin/checkpoint") => handle_checkpoint(shared, w, keep),
        ("POST", "/admin/shutdown") => {
            let body = Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("draining".to_string(), Json::Bool(true)),
            ])
            .render();
            // Respond first, then trip the flag: the client sees the ack.
            send(shared, w, Route::AdminShutdown, 200, &[], &body, false);
            trigger_shutdown(shared);
            false
        }
        (
            _,
            "/healthz" | "/metrics" | "/search" | "/admin/ingest" | "/admin/reload"
            | "/admin/checkpoint" | "/admin/shutdown",
        ) => {
            respond_error(
                shared,
                w,
                Route::Other,
                405,
                "method not allowed for this path",
            );
            false
        }
        _ => {
            respond_error(shared, w, Route::Other, 404, "unknown path");
            false
        }
    }
}

fn handle_search(shared: &Shared, request: &Request, w: &mut TcpStream) -> bool {
    let keep = request.keep_alive;
    let parsed = match api::parse_search(&request.body) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.record(Route::Search, 400);
            let body = api::error_json(e.kind, &e.message, vec![]).render();
            return write_response(w, 400, "application/json", &[], body.as_bytes(), keep).is_ok()
                && keep;
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.metrics.record(Route::Search, 503);
        let body = api::error_json("closed", "server is draining", vec![]).render();
        let _ = write_response(w, 503, "application/json", &[], body.as_bytes(), false);
        return false;
    }

    let budget = parsed
        .timeout
        .map(|t| t.min(shared.cfg.deadline))
        .unwrap_or(shared.cfg.deadline);
    let now = Instant::now();
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        request: parsed.request,
        admitted: now,
        deadline: now + budget,
        reply: tx,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared
                .metrics
                .queue_depth
                .store(depth as u64, Ordering::Relaxed);
        }
        Err(_refused) => {
            shared
                .metrics
                .shed_queue_full
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.record(Route::Search, 429);
            let body = api::error_json(
                "overloaded",
                "admission queue is full; retry shortly",
                vec![],
            )
            .render();
            let ok = write_response(
                w,
                429,
                "application/json",
                &[retry_after(shared)],
                body.as_bytes(),
                keep,
            )
            .is_ok();
            return ok && keep;
        }
    }

    // The worker always replies (answer, engine error, or deadline shed);
    // the timeout is a belt-and-braces bound for a worker lost to a panic.
    let (status, body, extra): (u16, String, Vec<(&str, String)>) = match rx
        .recv_timeout(budget + Duration::from_secs(5))
    {
        Ok(JobReply::Ok(body)) => (200, body, vec![]),
        Ok(JobReply::Err(status, body)) => (status, body, vec![]),
        Ok(JobReply::Deadline) => (
            503,
            api::error_json("deadline", "request expired in the admission queue", vec![]).render(),
            vec![retry_after(shared)],
        ),
        Err(_) => (
            500,
            api::error_json("internal", "worker did not answer", vec![]).render(),
            vec![],
        ),
    };
    shared.metrics.record(Route::Search, status);
    write_response(w, status, "application/json", &extra, body.as_bytes(), keep).is_ok() && keep
}

/// `POST /admin/ingest`: compile the mutation batch into a delta against
/// the snapshot pinned by [`SharedEngine::ingest_with`]'s writer lock and
/// apply it through the incremental refresh. Runs on the connection
/// thread; racing ingests serialize on the writer lock, and reads keep
/// serving the old snapshot until the pointer swap.
fn handle_ingest(shared: &Shared, request: &Request, w: &mut TcpStream) -> bool {
    let keep = request.keep_alive;
    if !shared.cfg.enable_ingest {
        respond_error(
            shared,
            w,
            Route::AdminIngest,
            501,
            "server booted without the ingest write path",
        );
        return false;
    }
    let batch = match api::parse_ingest(&request.body) {
        Ok(batch) => batch,
        Err(e) => {
            shared
                .metrics
                .ingest_failures
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.record(Route::AdminIngest, 400);
            let body = api::error_json(e.kind, &e.message, vec![]).render();
            return write_response(w, 400, "application/json", &[], body.as_bytes(), keep).is_ok()
                && keep;
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        shared
            .metrics
            .ingest_failures
            .fetch_add(1, Ordering::Relaxed);
        shared.metrics.record(Route::AdminIngest, 503);
        let body = api::error_json("closed", "server is draining", vec![]).render();
        let _ = write_response(w, 503, "application/json", &[], body.as_bytes(), false);
        return false;
    }

    let t0 = Instant::now();
    let applied = shared.engine.ingest_with(batch.mode, |snapshot| {
        api::compile_delta(snapshot.graph(), &batch)
    });
    match applied {
        Ok(outcome) => {
            let elapsed = t0.elapsed();
            shared.metrics.ingests.fetch_add(1, Ordering::Relaxed);
            shared.metrics.ingest_refresh.observe(elapsed);
            shared.metrics.record(Route::AdminIngest, 200);
            let body = api::render_ingest(&outcome, elapsed).render();
            write_response(w, 200, "application/json", &[], body.as_bytes(), keep).is_ok() && keep
        }
        Err(e) => {
            shared
                .metrics
                .ingest_failures
                .fetch_add(1, Ordering::Relaxed);
            // 400: the batch itself is invalid (unresolvable name, bad
            // reference). 409: shape was fine but the graph disagrees
            // (duplicate edge, removal of a missing edge) — retryable
            // after re-reading state, so keep-alive survives like every
            // other 4xx on this route. 503 `closed`: racing shutdown.
            // 503 `durability`: the WAL could not make the write durable;
            // the delta was NOT applied and the log refuses further
            // appends until the operator intervenes (restart). Both 503s
            // drop the connection.
            let (status, body) = match &e {
                IngestError::Build(api_err) => {
                    (400, api::error_json(api_err.kind, &api_err.message, vec![]))
                }
                IngestError::Delta(delta_err) => (
                    409,
                    api::error_json("conflict", &delta_err.to_string(), vec![]),
                ),
                IngestError::Closed => (503, api::error_json("closed", &e.to_string(), vec![])),
                IngestError::Durability(_) => {
                    (503, api::error_json("durability", &e.to_string(), vec![]))
                }
            };
            shared.metrics.record(Route::AdminIngest, status);
            let body = body.render();
            let keep = keep && status != 503;
            write_response(w, status, "application/json", &[], body.as_bytes(), keep).is_ok()
                && keep
        }
    }
}

/// `POST /admin/checkpoint`: synchronously write a graph+index snapshot
/// and truncate the write-ahead log behind it. Runs on the connection
/// thread (like reload); racing ingests keep flowing — the checkpoint
/// captures whichever published snapshot it pins.
fn handle_checkpoint(shared: &Shared, w: &mut TcpStream, keep: bool) -> bool {
    let Some(durability) = shared.engine.durability().cloned() else {
        respond_error(
            shared,
            w,
            Route::AdminCheckpoint,
            501,
            "server booted without a data dir; nothing to checkpoint",
        );
        return false;
    };
    let snapshot = shared.engine.snapshot();
    match durability.checkpoint_now(&snapshot) {
        Ok(path) => {
            shared.metrics.record(Route::AdminCheckpoint, 200);
            let body = Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("version".to_string(), count(snapshot.version())),
                ("path".to_string(), Json::Str(path.display().to_string())),
            ])
            .render();
            write_response(w, 200, "application/json", &[], body.as_bytes(), keep).is_ok() && keep
        }
        Err(e) => {
            shared.metrics.record(Route::AdminCheckpoint, 500);
            let body = api::error_json(
                "checkpoint_failed",
                &format!("checkpoint failed: {e}"),
                vec![],
            )
            .render();
            let _ = write_response(w, 500, "application/json", &[], body.as_bytes(), false);
            false
        }
    }
}

fn handle_reload(shared: &Shared, w: &mut TcpStream, keep: bool) -> bool {
    // A durable server's history lives in the write-ahead log; swapping in
    // an engine built outside the log would fork that history (the next
    // appended version could collide with one already on disk under a
    // different delta). Restart-from-the-data-dir is the durable reload.
    if shared.engine.durability().is_some() {
        shared
            .metrics
            .reload_failures
            .fetch_add(1, Ordering::Relaxed);
        respond_error(
            shared,
            w,
            Route::AdminReload,
            409,
            "reload would fork the write-ahead log; restart from the data dir instead",
        );
        return false;
    }
    let Some(reload) = shared.reload.as_deref() else {
        respond_error(
            shared,
            w,
            Route::AdminReload,
            501,
            "server booted without a reload source",
        );
        return false;
    };
    // Serialize reloads; queries keep flowing on the current state.
    let _serialized = shared.reload_lock.lock().unwrap();
    match reload() {
        Ok(next) => {
            let epoch = shared.engine.replace(next);
            shared.metrics.reloads.fetch_add(1, Ordering::Relaxed);
            shared.metrics.record(Route::AdminReload, 200);
            let body = Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("epoch".to_string(), count(epoch)),
                ("version".to_string(), count(shared.engine.version())),
            ])
            .render();
            write_response(w, 200, "application/json", &[], body.as_bytes(), keep).is_ok() && keep
        }
        Err(message) => {
            shared
                .metrics
                .reload_failures
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.record(Route::AdminReload, 500);
            let body = api::error_json("reload_failed", &message, vec![]).render();
            let _ = write_response(w, 500, "application/json", &[], body.as_bytes(), false);
            false
        }
    }
}
