//! Minimal HTTP/1.1 framing (std-only): request reading with hard limits,
//! keep-alive, and response writing.
//!
//! This is deliberately *not* a general web server: it parses exactly the
//! subset the serving API uses (request line, headers, `Content-Length`
//! bodies) and turns everything else into typed errors the connection
//! loop maps to 4xx responses. Every limit is enforced before buffering —
//! an oversized or malformed request can never balloon memory or kill a
//! worker thread.

use std::io::{Read, Write};

/// Framing limits. Exceeding them yields [`HttpError::HeadTooLarge`] /
/// [`HttpError::BodyTooLarge`] (431 / 413), never a panic.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Request line + headers cap in bytes.
    pub max_head_bytes: usize,
    /// Body cap in bytes (checked against `Content-Length` *before*
    /// reading the body).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercase as sent).
    pub method: String,
    /// The request target, e.g. `/search` (query strings are kept as-is).
    pub target: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header by lowercased name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be framed. `status()` maps each variant to the
/// response code the connection loop should emit.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end of stream between requests (not an error: close quietly).
    Closed,
    /// Transport error, including read timeouts (the caller distinguishes
    /// timeouts via `io::ErrorKind::{WouldBlock, TimedOut}`).
    Io(std::io::Error),
    /// Malformed request line / headers / length.
    BadRequest(&'static str),
    /// Head grew past [`HttpLimits::max_head_bytes`].
    HeadTooLarge,
    /// `Content-Length` exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge,
    /// `Transfer-Encoding` bodies are not supported; clients must send
    /// `Content-Length`.
    LengthRequired,
    /// Unsupported HTTP version (only 1.0 / 1.1).
    Version,
}

impl HttpError {
    /// The status code to answer with (`None`: close without responding).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed => None,
            HttpError::Io(_) => None,
            HttpError::BadRequest(msg) => Some((400, msg)),
            HttpError::HeadTooLarge => Some((431, "request head too large")),
            HttpError::BodyTooLarge => Some((413, "request body too large")),
            HttpError::LengthRequired => Some((411, "Content-Length required")),
            HttpError::Version => Some((505, "HTTP version not supported")),
        }
    }
}

/// Buffered request reader over one connection. Keeps bytes read past the
/// current request (pipelined or next keep-alive request) for the next
/// [`Self::read_request`] call.
pub struct HttpReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> HttpReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R) -> Self {
        HttpReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// Whether a partially read request sits in the buffer (used by the
    /// connection loop to tell idle timeouts from mid-request stalls).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        let n = self.inner.read(&mut chunk).map_err(HttpError::Io)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Read and parse the next request. Blocks (subject to the stream's
    /// read timeout) until a full head is buffered.
    pub fn read_request(&mut self, limits: &HttpLimits) -> Result<Request, HttpError> {
        // Accumulate until the blank line ends the head.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            let n = self.fill()?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::BadRequest("truncated request head"))
                };
            }
        };
        if head_end > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::BadRequest("head is not UTF-8"))?
            .to_string();
        let body_start = head_end + 4; // past \r\n\r\n

        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => return Err(HttpError::BadRequest("malformed request line")),
        };
        if !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::BadRequest("malformed method"));
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            v if v.starts_with("HTTP/") => return Err(HttpError::Version),
            _ => return Err(HttpError::BadRequest("malformed HTTP version")),
        };

        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("malformed header line"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        // Framing: Content-Length only; reject Transfer-Encoding outright
        // (a smuggling-prone path we don't need).
        if headers.iter().any(|(k, _)| k == "transfer-encoding") {
            return Err(HttpError::LengthRequired);
        }
        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            None => 0usize,
            Some((_, v)) => v
                .parse::<u64>()
                .ok()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or(HttpError::BadRequest("malformed Content-Length"))?,
        };
        if content_length > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }

        // Read the body (what's already buffered plus the rest).
        while self.buf.len() < body_start + content_length {
            let n = self.fill()?;
            if n == 0 {
                return Err(HttpError::BadRequest("truncated request body"));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);

        let connection = headers
            .iter()
            .find(|(k, _)| k == "connection")
            .map(|(_, v)| v.to_ascii_lowercase());
        let keep_alive = match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => http11,
        };

        Ok(Request {
            method,
            target,
            headers,
            body,
            keep_alive,
        })
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write one response; `extra` headers are emitted verbatim.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(raw: &[u8]) -> Result<Request, HttpError> {
        HttpReader::new(raw).read_request(&HttpLimits::default())
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_one(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/search");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
    }

    #[test]
    fn keep_alive_pipelining() {
        let raw =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = HttpReader::new(&raw[..]);
        let a = r.read_request(&HttpLimits::default()).unwrap();
        assert_eq!(a.target, "/healthz");
        assert!(a.keep_alive);
        let b = r.read_request(&HttpLimits::default()).unwrap();
        assert_eq!(b.target, "/metrics");
        assert!(!b.keep_alive);
        assert!(matches!(
            r.read_request(&HttpLimits::default()),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = read_one(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_heads_are_4xx_not_panics() {
        for raw in [
            &b"garbage\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\n\r\n"[..],
            &b"get / HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/9.9\r\n\r\n"[..],
            &b"GET / FTP/1.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"[..],
        ] {
            let err = read_one(raw).unwrap_err();
            assert!(err.status().is_some(), "{err:?} should map to a status");
        }
    }

    #[test]
    fn truncated_requests_fail_cleanly() {
        assert!(matches!(
            read_one(b"GET / HTTP/1.1\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read_one(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(read_one(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn limits_are_enforced() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        assert!(matches!(
            HttpReader::new(long_head.as_bytes()).read_request(&limits),
            Err(HttpError::HeadTooLarge)
        ));
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(
            HttpReader::new(&big_body[..]).read_request(&limits),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(read_one(raw), Err(HttpError::LengthRequired)));
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("retry-after", "1".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
