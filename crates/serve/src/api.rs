//! The wire schema: JSON bodies mapping 1:1 onto [`SearchRequest`] /
//! [`SearchResponse`], plus the `/admin/ingest` mutation-batch format.
//!
//! Requests are parsed *strictly*: unknown fields, wrong types, and
//! out-of-range knobs are 400s naming the offending field — a typo'd knob
//! must fail loudly, not silently run with defaults. The response schema
//! mirrors [`SearchResponse`] minus the engine-internal types (patterns
//! render through their table answers and display strings).
//!
//! Ingest bodies are a batch of mutations addressing nodes by stable
//! name or id; [`parse_ingest`] checks the shape (graph-free, so parse
//! errors never hold the writer lock) and [`compile_delta`] resolves the
//! references against one pinned snapshot into a
//! [`patternkb_graph::mutate::GraphDelta`].
//!
//! See the README "Serving" and "Writes" sections for the full field
//! reference.

use crate::json::{count, num, s, Json};
use patternkb_graph::mutate::{GraphDelta, PagerankMode};
use patternkb_graph::{KnowledgeGraph, NameResolver, NodeId};
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{
    AlgorithmChoice, CacheOutcome, Error, IngestOutcome, SearchEngine, SearchRequest,
    SearchResponse,
};
use std::time::Duration;

/// A parse/validation failure on the request body. Always a 400.
#[derive(Debug)]
pub struct ApiError {
    /// Machine-readable error class.
    pub kind: &'static str,
    /// Human-readable description naming the offending field.
    pub message: String,
}

impl ApiError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ApiError {}

/// A decoded `/search` body: the engine request plus the request-level
/// deadline override (`timeout_ms`), which the server clamps to its own
/// configured deadline.
#[derive(Debug)]
pub struct ParsedSearch {
    /// The engine request.
    pub request: SearchRequest,
    /// Per-request deadline override.
    pub timeout: Option<Duration>,
}

const FIELDS: [&str; 11] = [
    "q",
    "k",
    "algorithm",
    "max_rows",
    "compose_tables",
    "diversify",
    "relax",
    "explain",
    "strict_trees",
    "sampling",
    "timeout_ms",
];

/// Parse a `/search` body.
pub fn parse_search(body: &[u8]) -> Result<ParsedSearch, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new("bad_body", "request body is not UTF-8"))?;
    let json =
        Json::parse(text).map_err(|e| ApiError::new("bad_json", format!("malformed JSON: {e}")))?;
    let Json::Obj(fields) = &json else {
        return Err(ApiError::new(
            "bad_body",
            "request body must be a JSON object",
        ));
    };
    for (key, _) in fields {
        if !FIELDS.contains(&key.as_str()) {
            return Err(ApiError::new(
                "unknown_field",
                format!("unknown field {key:?}; accepted: {}", FIELDS.join(", ")),
            ));
        }
    }

    let q = json
        .get("q")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new("missing_field", "field \"q\" (string) is required"))?;
    let mut request = SearchRequest::text(q);

    if let Some(v) = json.get("k") {
        let k = v
            .as_u64()
            .filter(|&k| k >= 1)
            .ok_or_else(|| ApiError::new("bad_field", "\"k\" must be a positive integer"))?;
        request = request.k(k as usize);
    }
    if let Some(v) = json.get("algorithm") {
        let name = v
            .as_str()
            .ok_or_else(|| ApiError::new("bad_field", "\"algorithm\" must be a string"))?;
        let choice = match name {
            "auto" => AlgorithmChoice::Auto,
            "baseline" => AlgorithmChoice::Baseline,
            "pattern_enum" => AlgorithmChoice::PatternEnum,
            "pattern_enum_pruned" => AlgorithmChoice::PatternEnumPruned,
            "linear_enum" => AlgorithmChoice::LinearEnum,
            "linear_enum_topk" => AlgorithmChoice::LinearEnumTopK,
            other => {
                return Err(ApiError::new(
                    "bad_field",
                    format!(
                        "unknown algorithm {other:?}; one of auto, baseline, pattern_enum, \
                         pattern_enum_pruned, linear_enum, linear_enum_topk"
                    ),
                ))
            }
        };
        request = request.algorithm(choice);
    }
    if let Some(v) = json.get("max_rows") {
        let rows = v
            .as_u64()
            .ok_or_else(|| ApiError::new("bad_field", "\"max_rows\" must be an integer"))?;
        request = request.max_rows(rows as usize);
    }
    if let Some(v) = json.get("compose_tables") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"compose_tables\" must be a bool"))?;
        request = request.compose_tables(on);
    }
    if let Some(v) = json.get("diversify") {
        if !v.is_null() {
            let lambda = v
                .as_f64()
                .filter(|l| (0.0..=1.0).contains(l))
                .ok_or_else(|| {
                    ApiError::new(
                        "bad_field",
                        "\"diversify\" must be a number in [0, 1] or null",
                    )
                })?;
            request = request.diversify(lambda);
        }
    }
    if let Some(v) = json.get("relax") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"relax\" must be a bool"))?;
        request = request.relax(on);
    }
    if let Some(v) = json.get("explain") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"explain\" must be a bool"))?;
        request = request.explain(on);
    }
    if let Some(v) = json.get("strict_trees") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"strict_trees\" must be a bool"))?;
        request = request.strict_trees(on);
    }
    if let Some(v) = json.get("sampling") {
        if let Json::Obj(sub) = v {
            for (key, _) in sub {
                if !matches!(key.as_str(), "lambda" | "rho" | "seed") {
                    return Err(ApiError::new(
                        "unknown_field",
                        format!("unknown field \"sampling.{key}\"; accepted: lambda, rho, seed"),
                    ));
                }
            }
        } else {
            return Err(ApiError::new("bad_field", "\"sampling\" must be an object"));
        }
        let lambda = v
            .get("lambda")
            .and_then(Json::as_u64)
            .ok_or_else(|| ApiError::new("bad_field", "\"sampling.lambda\" must be an integer"))?;
        let rho = v
            .get("rho")
            .and_then(Json::as_f64)
            .filter(|r| *r > 0.0 && *r <= 1.0)
            .ok_or_else(|| {
                ApiError::new("bad_field", "\"sampling.rho\" must be a number in (0, 1]")
            })?;
        let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(42);
        request = request.sampling(SamplingConfig::new(lambda, rho, seed));
    }
    let timeout = match json.get("timeout_ms") {
        None => None,
        Some(v) => Some(Duration::from_millis(
            v.as_u64().filter(|&t| t >= 1).ok_or_else(|| {
                ApiError::new("bad_field", "\"timeout_ms\" must be a positive integer")
            })?,
        )),
    };

    Ok(ParsedSearch { request, timeout })
}

// ---------------------------------------------------------------------
// The ingest wire format (`POST /admin/ingest`).
// ---------------------------------------------------------------------

/// A wire-level node reference: a JSON string is a node *name* (resolved
/// against the pinned snapshot, batch-added names first), a JSON integer
/// is a raw [`NodeId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// Address by node id (always unambiguous).
    Id(u32),
    /// Address by node text; must resolve to exactly one node.
    Name(String),
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeRef::Id(id) => write!(f, "#{id}"),
            NodeRef::Name(name) => write!(f, "{name:?}"),
        }
    }
}

/// One mutation of an ingest batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Add an entity (`type` is interned if new); its `name` becomes
    /// referenceable by later mutations of the same batch.
    AddNode {
        /// Entity type text.
        type_name: String,
        /// Node text (the batch-local reference name).
        name: String,
    },
    /// Add an attribute edge between two existing-or-batch-added nodes.
    AddEdge {
        /// Edge source.
        source: NodeRef,
        /// Attribute type text (interned if new).
        attr: String,
        /// Edge target.
        target: NodeRef,
    },
    /// Add an attribute whose value is plain text (creates/reuses the
    /// dummy text node).
    AddTextEdge {
        /// Edge source.
        source: NodeRef,
        /// Attribute type text (interned if new).
        attr: String,
        /// The plain-text value.
        value: String,
    },
    /// Remove an existing base-graph edge.
    RemoveEdge {
        /// Edge source.
        source: NodeRef,
        /// Attribute type text.
        attr: String,
        /// Edge target (plain-text values are addressed by their text).
        target: NodeRef,
    },
}

/// A decoded `/admin/ingest` body.
#[derive(Clone, Debug)]
pub struct IngestBatch {
    /// The mutations, in order.
    pub mutations: Vec<Mutation>,
    /// How to refresh PageRank (`"frozen"` default, or `"recompute"`).
    pub mode: PagerankMode,
}

const INGEST_FIELDS: [&str; 2] = ["mutations", "pagerank"];

fn ref_field(v: &Json, path: &str) -> Result<NodeRef, ApiError> {
    match v {
        Json::Str(name) => Ok(NodeRef::Name(name.clone())),
        Json::Num(_) => {
            let id = v
                .as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .ok_or_else(|| {
                    ApiError::new("bad_field", format!("{path:?} must be a node id (u32)"))
                })?;
            Ok(NodeRef::Id(id as u32))
        }
        _ => Err(ApiError::new(
            "bad_field",
            format!("{path:?} must be a node name (string) or id (integer)"),
        )),
    }
}

fn str_field(m: &Json, path: &str, key: &str) -> Result<String, ApiError> {
    m.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            ApiError::new(
                "missing_field",
                format!("field \"{path}.{key}\" (string) is required"),
            )
        })
}

fn node_ref_field(m: &Json, path: &str, key: &str) -> Result<NodeRef, ApiError> {
    let v = m.get(key).ok_or_else(|| {
        ApiError::new(
            "missing_field",
            format!("field \"{path}.{key}\" (name or id) is required"),
        )
    })?;
    ref_field(v, &format!("{path}.{key}"))
}

fn check_fields(m: &[(String, Json)], path: &str, accepted: &[&str]) -> Result<(), ApiError> {
    for (key, _) in m {
        if !accepted.contains(&key.as_str()) {
            return Err(ApiError::new(
                "unknown_field",
                format!(
                    "unknown field \"{path}.{key}\"; accepted: {}",
                    accepted.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Parse a `/admin/ingest` body (shape only — node references are
/// resolved later by [`compile_delta`] against the pinned snapshot).
pub fn parse_ingest(body: &[u8]) -> Result<IngestBatch, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new("bad_body", "request body is not UTF-8"))?;
    let json =
        Json::parse(text).map_err(|e| ApiError::new("bad_json", format!("malformed JSON: {e}")))?;
    let Json::Obj(fields) = &json else {
        return Err(ApiError::new(
            "bad_body",
            "request body must be a JSON object",
        ));
    };
    for (key, _) in fields {
        if !INGEST_FIELDS.contains(&key.as_str()) {
            return Err(ApiError::new(
                "unknown_field",
                format!(
                    "unknown field {key:?}; accepted: {}",
                    INGEST_FIELDS.join(", ")
                ),
            ));
        }
    }

    let mode = match json.get("pagerank") {
        None => PagerankMode::Frozen,
        Some(v) => match v.as_str() {
            Some("frozen") => PagerankMode::Frozen,
            Some("recompute") => PagerankMode::Recompute,
            _ => {
                return Err(ApiError::new(
                    "bad_field",
                    "\"pagerank\" must be \"frozen\" or \"recompute\"",
                ))
            }
        },
    };

    let items = json
        .get("mutations")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            ApiError::new(
                "missing_field",
                "field \"mutations\" (non-empty array) is required",
            )
        })?;
    if items.is_empty() {
        return Err(ApiError::new(
            "bad_field",
            "\"mutations\" must not be empty",
        ));
    }

    let mut mutations = Vec::with_capacity(items.len());
    for (i, m) in items.iter().enumerate() {
        let path = format!("mutations[{i}]");
        let Json::Obj(obj) = m else {
            return Err(ApiError::new(
                "bad_field",
                format!("\"{path}\" must be an object"),
            ));
        };
        let op = m.get("op").and_then(Json::as_str).ok_or_else(|| {
            ApiError::new(
                "missing_field",
                format!("field \"{path}.op\" (string) is required"),
            )
        })?;
        let mutation = match op {
            "add_node" => {
                check_fields(obj, &path, &["op", "type", "name"])?;
                Mutation::AddNode {
                    type_name: str_field(m, &path, "type")?,
                    name: str_field(m, &path, "name")?,
                }
            }
            "add_edge" => {
                check_fields(obj, &path, &["op", "source", "attr", "target"])?;
                Mutation::AddEdge {
                    source: node_ref_field(m, &path, "source")?,
                    attr: str_field(m, &path, "attr")?,
                    target: node_ref_field(m, &path, "target")?,
                }
            }
            "add_text_edge" => {
                check_fields(obj, &path, &["op", "source", "attr", "value"])?;
                Mutation::AddTextEdge {
                    source: node_ref_field(m, &path, "source")?,
                    attr: str_field(m, &path, "attr")?,
                    value: str_field(m, &path, "value")?,
                }
            }
            "remove_edge" => {
                check_fields(obj, &path, &["op", "source", "attr", "target"])?;
                Mutation::RemoveEdge {
                    source: node_ref_field(m, &path, "source")?,
                    attr: str_field(m, &path, "attr")?,
                    target: node_ref_field(m, &path, "target")?,
                }
            }
            other => {
                return Err(ApiError::new(
                    "bad_field",
                    format!(
                        "unknown op {other:?} in \"{path}\"; one of add_node, add_edge, \
                         add_text_edge, remove_edge"
                    ),
                ))
            }
        };
        mutations.push(mutation);
    }
    Ok(IngestBatch { mutations, mode })
}

/// Resolve a batch's references against `g` and assemble the
/// [`GraphDelta`]. Runs inside [`patternkb_search::SharedEngine::ingest_with`]'s
/// builder, so `g` is pinned: the delta is guaranteed to apply to exactly
/// this graph. Every failure is a 400-class [`ApiError`] naming the
/// offending mutation.
pub fn compile_delta(g: &KnowledgeGraph, batch: &IngestBatch) -> Result<GraphDelta, ApiError> {
    // The resolver's text→id table costs a full graph pass, and this runs
    // under the writer lock — build it only when a mutation actually
    // addresses a node by name (id-only batches skip it entirely; the
    // lock still pins the snapshot, so lazy construction is equivalent).
    let mut resolver: Option<NameResolver<'_>> = None;
    // Names minted by this batch's add_node ops, consulted before the
    // snapshot so later mutations can reference them.
    let mut local: std::collections::HashMap<&str, NodeId> = std::collections::HashMap::new();
    let mut delta = GraphDelta::new(g);
    fn resolve<'g>(
        g: &'g KnowledgeGraph,
        resolver: &mut Option<NameResolver<'g>>,
        local: &std::collections::HashMap<&str, NodeId>,
        r: &NodeRef,
        path: String,
    ) -> Result<NodeId, ApiError> {
        match r {
            NodeRef::Id(id) => Ok(NodeId(*id)),
            NodeRef::Name(name) => {
                if let Some(&v) = local.get(name.as_str()) {
                    return Ok(v);
                }
                resolver
                    .get_or_insert_with(|| NameResolver::new(g))
                    .resolve(name)
                    .map_err(|e| ApiError::new("unresolved_node", format!("{path}: {e}")))
            }
        }
    }
    for (i, m) in batch.mutations.iter().enumerate() {
        let path = |field: &str| format!("mutations[{i}].{field}");
        let mutated = match m {
            Mutation::AddNode { type_name, name } => {
                let t = delta.add_type(type_name);
                let v = delta.add_node(t, name);
                if let Ok(v) = v {
                    if local.insert(name.as_str(), v).is_some() {
                        return Err(ApiError::new(
                            "duplicate_name",
                            format!(
                                "{}: {name:?} was already added by this batch; \
                                 batch-local names must be unique",
                                path("name")
                            ),
                        ));
                    }
                }
                v.map(|_| ())
            }
            Mutation::AddEdge {
                source,
                attr,
                target,
            } => {
                let s = resolve(g, &mut resolver, &local, source, path("source"))?;
                let t = resolve(g, &mut resolver, &local, target, path("target"))?;
                let a = delta.add_attr(attr);
                delta.add_edge(s, a, t)
            }
            Mutation::AddTextEdge {
                source,
                attr,
                value,
            } => {
                let s = resolve(g, &mut resolver, &local, source, path("source"))?;
                let a = delta.add_attr(attr);
                delta.add_text_edge(s, a, value).map(|_| ())
            }
            Mutation::RemoveEdge {
                source,
                attr,
                target,
            } => {
                let s = resolve(g, &mut resolver, &local, source, path("source"))?;
                let t = resolve(g, &mut resolver, &local, target, path("target"))?;
                match g.attr_by_text(attr) {
                    Some(a) => delta.remove_edge(s, a, t),
                    None => {
                        return Err(ApiError::new(
                            "unresolved_attr",
                            format!("{}: no attribute named {attr:?} exists", path("attr")),
                        ))
                    }
                }
            }
        };
        mutated.map_err(|e| ApiError::new("bad_mutation", format!("mutations[{i}]: {e}")))?;
    }
    Ok(delta)
}

/// Render a successful ingest as the response body.
pub fn render_ingest(outcome: &IngestOutcome, elapsed: Duration) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("version".to_string(), count(outcome.version)),
        (
            "affected_roots".to_string(),
            count(outcome.stats.affected_roots as u64),
        ),
        (
            "stats".to_string(),
            Json::Obj(vec![
                (
                    "postings_dropped".to_string(),
                    count(outcome.stats.postings_dropped as u64),
                ),
                (
                    "postings_kept".to_string(),
                    count(outcome.stats.postings_kept as u64),
                ),
                (
                    "postings_added".to_string(),
                    count(outcome.stats.postings_added as u64),
                ),
                (
                    "patterns_added".to_string(),
                    count(outcome.stats.patterns_added as u64),
                ),
            ]),
        ),
        ("elapsed_us".to_string(), count(elapsed.as_micros() as u64)),
    ])
}

/// Render a successful search as the response body. `engine` is the
/// snapshot that answered (for vocabulary/graph rendering and its data
/// version).
pub fn render_response(engine: &SearchEngine, resp: &SearchResponse) -> Json {
    let vocab = engine.text().vocab();
    let query: Vec<Json> = resp
        .query
        .keywords
        .iter()
        .map(|&w| s(vocab.resolve(w)))
        .collect();

    let mut patterns = Vec::with_capacity(resp.patterns.len());
    for (i, p) in resp.patterns.iter().enumerate() {
        let mut entry = vec![
            ("score".to_string(), num(p.score)),
            ("num_trees".to_string(), count(p.num_trees as u64)),
            ("display".to_string(), s(p.display(engine.graph()))),
        ];
        if let Some(table) = resp.tables.get(i) {
            entry.push((
                "columns".to_string(),
                Json::Arr(table.columns.iter().map(|x| s(x.as_str())).collect()),
            ));
            entry.push((
                "rows".to_string(),
                Json::Arr(
                    table
                        .rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|x| s(x.as_str())).collect()))
                        .collect(),
                ),
            ));
        }
        patterns.push(Json::Obj(entry));
    }

    let stats = Json::Obj(vec![
        (
            "candidate_roots".to_string(),
            count(resp.stats.candidate_roots as u64),
        ),
        ("subtrees".to_string(), count(resp.stats.subtrees as u64)),
        ("patterns".to_string(), count(resp.stats.patterns as u64)),
        (
            "combos_tried".to_string(),
            count(resp.stats.combos_tried as u64),
        ),
        (
            "combos_pruned".to_string(),
            count(resp.stats.combos_pruned as u64),
        ),
        (
            "shards".to_string(),
            count(resp.stats.per_shard.len() as u64),
        ),
    ]);

    let mut fields = vec![
        ("query".to_string(), Json::Arr(query)),
        ("algorithm".to_string(), s(algorithm_name(resp))),
        ("planned".to_string(), Json::Bool(resp.planned)),
        (
            "cache".to_string(),
            s(match resp.cache {
                CacheOutcome::Hit => "hit",
                CacheOutcome::Miss => "miss",
                CacheOutcome::Uncached => "uncached",
            }),
        ),
        ("engine_version".to_string(), count(engine.version())),
        (
            "elapsed_us".to_string(),
            count(resp.elapsed.as_micros() as u64),
        ),
        ("stats".to_string(), stats),
        ("patterns".to_string(), Json::Arr(patterns)),
    ];
    if !resp.relaxations.is_empty() {
        fields.push((
            "relaxations".to_string(),
            Json::Arr(
                resp.relaxations
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            (
                                "keywords".to_string(),
                                Json::Arr(
                                    r.keywords.iter().map(|&w| s(vocab.resolve(w))).collect(),
                                ),
                            ),
                            (
                                "candidate_roots".to_string(),
                                count(r.candidate_roots as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(explain) = &resp.explain {
        fields.push((
            "explain".to_string(),
            Json::Arr(explain.iter().map(|x| s(x.as_str())).collect()),
        ));
    }
    Json::Obj(fields)
}

fn algorithm_name(resp: &SearchResponse) -> &'static str {
    use patternkb_search::Algorithm;
    match resp.algorithm {
        Algorithm::Baseline => "baseline",
        Algorithm::PatternEnum => "pattern_enum",
        Algorithm::PatternEnumPruned => "pattern_enum_pruned",
        Algorithm::LinearEnum => "linear_enum",
        Algorithm::LinearEnumTopK(_) => "linear_enum_topk",
    }
}

/// The `{"error": …}` body for any failure.
pub fn error_json(kind: &str, message: &str, extra: Vec<(String, Json)>) -> Json {
    let mut err = vec![
        ("kind".to_string(), s(kind)),
        ("message".to_string(), s(message)),
    ];
    err.extend(extra);
    Json::Obj(vec![("error".to_string(), Json::Obj(err))])
}

/// Map an engine [`Error`] to `(status, body)`.
pub fn engine_error(e: &Error) -> (u16, Json) {
    match e {
        Error::EmptyQuery => (400, error_json("empty_query", &e.to_string(), vec![])),
        Error::UnknownWords(words) => (
            400,
            error_json(
                "unknown_words",
                &e.to_string(),
                vec![(
                    "words".to_string(),
                    Json::Arr(words.iter().map(|x| s(x.as_str())).collect()),
                )],
            ),
        ),
        Error::InvalidRequest(_) => (400, error_json("invalid_request", &e.to_string(), vec![])),
        Error::Planner(_) => (400, error_json("planner", &e.to_string(), vec![])),
        Error::Closed => (503, error_json("closed", &e.to_string(), vec![])),
        // A damaged mapped index stream is a server-side data fault, not
        // a client error; name it so operators can tell it from generic
        // internals.
        Error::Snapshot(_) => (500, error_json("snapshot", &e.to_string(), vec![])),
        _ => (500, error_json("internal", &e.to_string(), vec![])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_defaults() {
        let p = parse_search(br#"{"q": "database company"}"#).unwrap();
        match &p.request.input {
            patternkb_search::request::QueryInput::Text(t) => {
                assert_eq!(t, "database company")
            }
            other => panic!("expected text input, got {other:?}"),
        }
        assert_eq!(p.request.k, 100);
        assert_eq!(p.request.algorithm, AlgorithmChoice::Auto);
        assert!(p.timeout.is_none());
    }

    #[test]
    fn full_request_parses() {
        let p = parse_search(
            br#"{"q":"a b","k":7,"algorithm":"linear_enum_topk","max_rows":3,
                "compose_tables":false,"diversify":0.5,"relax":true,"explain":true,
                "strict_trees":true,"sampling":{"lambda":1000,"rho":0.25,"seed":9},
                "timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(p.request.k, 7);
        assert_eq!(p.request.algorithm, AlgorithmChoice::LinearEnumTopK);
        assert_eq!(p.request.max_rows, 3);
        assert!(!p.request.compose_tables);
        assert_eq!(p.request.diversify, Some(0.5));
        assert!(p.request.relax && p.request.explain && p.request.strict_trees);
        assert_eq!(p.request.sampling.lambda, 1000);
        assert_eq!(p.timeout, Some(Duration::from_millis(250)));
    }

    #[test]
    fn unknown_and_bad_fields_are_named() {
        let e = parse_search(br#"{"q":"a","qq":1}"#).unwrap_err();
        assert_eq!(e.kind, "unknown_field");
        assert!(e.message.contains("qq"));

        let e = parse_search(br#"{"k":5}"#).unwrap_err();
        assert_eq!(e.kind, "missing_field");

        for (body, field) in [
            (&br#"{"q":"a","k":0}"#[..], "k"),
            (br#"{"q":"a","k":-1}"#, "k"),
            (br#"{"q":"a","algorithm":"quantum"}"#, "quantum"),
            (br#"{"q":"a","diversify":1.5}"#, "diversify"),
            (br#"{"q":"a","sampling":{"lambda":1,"rho":0}}"#, "rho"),
            // Strictness reaches nested objects too: a typo'd seed must
            // not silently fall back to the default.
            (
                br#"{"q":"a","sampling":{"lambda":1,"rho":0.5,"sed":7}}"#,
                "sampling.sed",
            ),
            (br#"{"q":"a","sampling":7}"#, "sampling"),
            (br#"{"q":"a","timeout_ms":0}"#, "timeout_ms"),
            (br#"{"q":"a","relax":"yes"}"#, "relax"),
        ] {
            let e = parse_search(body).unwrap_err();
            assert!(
                e.message.contains(field),
                "{field}: {} should name it",
                e.message
            );
        }
    }

    #[test]
    fn malformed_bodies_are_typed() {
        assert_eq!(parse_search(b"{oops").unwrap_err().kind, "bad_json");
        assert_eq!(parse_search(b"[1,2]").unwrap_err().kind, "bad_body");
        assert_eq!(parse_search(&[0xff, 0xfe]).unwrap_err().kind, "bad_body");
    }

    fn figure1_graph() -> KnowledgeGraph {
        patternkb_datagen::figure1().0
    }

    #[test]
    fn ingest_batch_parses_and_compiles() {
        let batch = parse_ingest(
            br#"{"mutations":[
                {"op":"add_node","type":"Company","name":"Initech"},
                {"op":"add_text_edge","source":"Initech","attr":"Revenue","value":"US$ 1 million"},
                {"op":"add_edge","source":"SQL Server","attr":"Developer","target":"Initech"},
                {"op":"remove_edge","source":"SQL Server","attr":"Developer","target":"Microsoft"}
            ],"pagerank":"recompute"}"#,
        )
        .unwrap();
        assert_eq!(batch.mutations.len(), 4);
        assert_eq!(batch.mode, PagerankMode::Recompute);
        assert_eq!(
            batch.mutations[0],
            Mutation::AddNode {
                type_name: "Company".into(),
                name: "Initech".into()
            }
        );

        let g = figure1_graph();
        let delta = compile_delta(&g, &batch).unwrap();
        assert_eq!(delta.num_new_nodes(), 2); // Initech + the text value
        assert_eq!(delta.num_added_edges(), 2);
        assert_eq!(delta.num_removed_edges(), 1);
        // The compiled delta actually applies.
        let g2 = delta.apply(&g, PagerankMode::Recompute).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes() + 2);
    }

    #[test]
    fn ingest_default_pagerank_is_frozen_and_ids_work() {
        let batch = parse_ingest(
            br#"{"mutations":[{"op":"add_edge","source":0,"attr":"Developer","target":1}]}"#,
        )
        .unwrap();
        assert_eq!(batch.mode, PagerankMode::Frozen);
        assert_eq!(
            batch.mutations[0],
            Mutation::AddEdge {
                source: NodeRef::Id(0),
                attr: "Developer".into(),
                target: NodeRef::Id(1),
            }
        );
        // Duplicate of an existing edge (addressed purely by id): compile
        // passes shape-wise, the delta itself reports it at apply time
        // (409 on the wire).
        let g = figure1_graph();
        let e = g.edges().next().unwrap();
        let batch = parse_ingest(
            format!(
                r#"{{"mutations":[{{"op":"add_edge","source":{},"attr":{:?},"target":{}}}]}}"#,
                e.source.0,
                g.attr_text(e.attr),
                e.target.0
            )
            .as_bytes(),
        )
        .unwrap();
        let delta = compile_delta(&g, &batch).unwrap();
        assert!(delta.apply(&g, PagerankMode::Frozen).is_err());
    }

    #[test]
    fn ingest_parse_errors_name_the_field() {
        for (body, needle) in [
            (&br#"{"mutations":[]}"#[..], "mutations"),
            (br#"{"mutations":[{"op":"warp"}]}"#, "warp"),
            (
                br#"{"mutations":[{"op":"add_node","type":"T"}]}"#,
                "mutations[0].name",
            ),
            (
                br#"{"mutations":[{"op":"add_node","type":"T","name":"x","extra":1}]}"#,
                "mutations[0].extra",
            ),
            (
                br#"{"mutations":[{"op":"add_edge","source":true,"attr":"A","target":1}]}"#,
                "mutations[0].source",
            ),
            (
                br#"{"mutations":[{"op":"add_node","type":"T","name":"x"}],"pagerank":"sometimes"}"#,
                "pagerank",
            ),
            (br#"{"mutatons":[]}"#, "mutatons"),
        ] {
            let e = parse_ingest(body).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{needle}: {} should name it",
                e.message
            );
        }
    }

    #[test]
    fn ingest_compile_errors_are_typed() {
        let g = figure1_graph();
        // Unknown name.
        let batch = parse_ingest(
            br#"{"mutations":[{"op":"add_text_edge","source":"Hooli","attr":"Revenue","value":"x"}]}"#,
        )
        .unwrap();
        let e = compile_delta(&g, &batch).unwrap_err();
        assert_eq!(e.kind, "unresolved_node");
        assert!(e.message.contains("Hooli"));
        // Unknown attribute on remove (cannot possibly match an edge).
        let batch = parse_ingest(
            br#"{"mutations":[{"op":"remove_edge","source":"SQL Server","attr":"Frobnicates","target":"Microsoft"}]}"#,
        )
        .unwrap();
        let e = compile_delta(&g, &batch).unwrap_err();
        assert_eq!(e.kind, "unresolved_attr");
        // Duplicate batch-local name.
        let batch = parse_ingest(
            br#"{"mutations":[
                {"op":"add_node","type":"Company","name":"Twin"},
                {"op":"add_node","type":"Company","name":"Twin"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(
            compile_delta(&g, &batch).unwrap_err().kind,
            "duplicate_name"
        );
        // Out-of-range id is caught at delta-build time.
        let batch = parse_ingest(
            br#"{"mutations":[{"op":"add_edge","source":9999,"attr":"Developer","target":0}]}"#,
        )
        .unwrap();
        assert_eq!(compile_delta(&g, &batch).unwrap_err().kind, "bad_mutation");
    }

    #[test]
    fn ingest_batch_local_names_resolve_in_order() {
        let g = figure1_graph();
        let batch = parse_ingest(
            br#"{"mutations":[
                {"op":"add_node","type":"Software","name":"DB2"},
                {"op":"add_node","type":"Company","name":"IBM"},
                {"op":"add_edge","source":"DB2","attr":"Developer","target":"IBM"}
            ]}"#,
        )
        .unwrap();
        let delta = compile_delta(&g, &batch).unwrap();
        assert_eq!(delta.num_new_nodes(), 2);
        assert_eq!(delta.num_added_edges(), 1);
        assert!(delta.apply(&g, PagerankMode::Frozen).is_ok());
    }

    #[test]
    fn ingest_render_reports_version_and_stats() {
        let outcome = IngestOutcome {
            stats: patternkb_search::RefreshStats {
                affected_roots: 3,
                postings_dropped: 1,
                postings_kept: 40,
                postings_added: 7,
                patterns_added: 2,
            },
            version: 5,
        };
        let body = render_ingest(&outcome, Duration::from_micros(1500)).render();
        assert!(body.contains("\"version\":5"));
        assert!(body.contains("\"affected_roots\":3"));
        assert!(body.contains("\"postings_added\":7"));
        assert!(body.contains("\"elapsed_us\":1500"));
    }

    #[test]
    fn engine_errors_map_to_statuses() {
        assert_eq!(engine_error(&Error::EmptyQuery).0, 400);
        assert_eq!(engine_error(&Error::UnknownWords(vec!["x".into()])).0, 400);
        assert_eq!(engine_error(&Error::Closed).0, 503);
        let (code, body) = engine_error(&Error::UnknownWords(vec!["zebra".into()]));
        assert_eq!(code, 400);
        assert!(body.render().contains("zebra"));
    }
}
