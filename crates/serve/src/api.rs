//! The wire schema: JSON bodies mapping 1:1 onto [`SearchRequest`] /
//! [`SearchResponse`].
//!
//! Requests are parsed *strictly*: unknown fields, wrong types, and
//! out-of-range knobs are 400s naming the offending field — a typo'd knob
//! must fail loudly, not silently run with defaults. The response schema
//! mirrors [`SearchResponse`] minus the engine-internal types (patterns
//! render through their table answers and display strings).
//!
//! See the README "Serving" section for the full field reference.

use crate::json::{count, num, s, Json};
use patternkb_search::topk::SamplingConfig;
use patternkb_search::{
    AlgorithmChoice, CacheOutcome, Error, SearchEngine, SearchRequest, SearchResponse,
};
use std::time::Duration;

/// A parse/validation failure on the request body. Always a 400.
#[derive(Debug)]
pub struct ApiError {
    /// Machine-readable error class.
    pub kind: &'static str,
    /// Human-readable description naming the offending field.
    pub message: String,
}

impl ApiError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            message: message.into(),
        }
    }
}

/// A decoded `/search` body: the engine request plus the request-level
/// deadline override (`timeout_ms`), which the server clamps to its own
/// configured deadline.
#[derive(Debug)]
pub struct ParsedSearch {
    /// The engine request.
    pub request: SearchRequest,
    /// Per-request deadline override.
    pub timeout: Option<Duration>,
}

const FIELDS: [&str; 11] = [
    "q",
    "k",
    "algorithm",
    "max_rows",
    "compose_tables",
    "diversify",
    "relax",
    "explain",
    "strict_trees",
    "sampling",
    "timeout_ms",
];

/// Parse a `/search` body.
pub fn parse_search(body: &[u8]) -> Result<ParsedSearch, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new("bad_body", "request body is not UTF-8"))?;
    let json =
        Json::parse(text).map_err(|e| ApiError::new("bad_json", format!("malformed JSON: {e}")))?;
    let Json::Obj(fields) = &json else {
        return Err(ApiError::new(
            "bad_body",
            "request body must be a JSON object",
        ));
    };
    for (key, _) in fields {
        if !FIELDS.contains(&key.as_str()) {
            return Err(ApiError::new(
                "unknown_field",
                format!("unknown field {key:?}; accepted: {}", FIELDS.join(", ")),
            ));
        }
    }

    let q = json
        .get("q")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new("missing_field", "field \"q\" (string) is required"))?;
    let mut request = SearchRequest::text(q);

    if let Some(v) = json.get("k") {
        let k = v
            .as_u64()
            .filter(|&k| k >= 1)
            .ok_or_else(|| ApiError::new("bad_field", "\"k\" must be a positive integer"))?;
        request = request.k(k as usize);
    }
    if let Some(v) = json.get("algorithm") {
        let name = v
            .as_str()
            .ok_or_else(|| ApiError::new("bad_field", "\"algorithm\" must be a string"))?;
        let choice = match name {
            "auto" => AlgorithmChoice::Auto,
            "baseline" => AlgorithmChoice::Baseline,
            "pattern_enum" => AlgorithmChoice::PatternEnum,
            "pattern_enum_pruned" => AlgorithmChoice::PatternEnumPruned,
            "linear_enum" => AlgorithmChoice::LinearEnum,
            "linear_enum_topk" => AlgorithmChoice::LinearEnumTopK,
            other => {
                return Err(ApiError::new(
                    "bad_field",
                    format!(
                        "unknown algorithm {other:?}; one of auto, baseline, pattern_enum, \
                         pattern_enum_pruned, linear_enum, linear_enum_topk"
                    ),
                ))
            }
        };
        request = request.algorithm(choice);
    }
    if let Some(v) = json.get("max_rows") {
        let rows = v
            .as_u64()
            .ok_or_else(|| ApiError::new("bad_field", "\"max_rows\" must be an integer"))?;
        request = request.max_rows(rows as usize);
    }
    if let Some(v) = json.get("compose_tables") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"compose_tables\" must be a bool"))?;
        request = request.compose_tables(on);
    }
    if let Some(v) = json.get("diversify") {
        if !v.is_null() {
            let lambda = v
                .as_f64()
                .filter(|l| (0.0..=1.0).contains(l))
                .ok_or_else(|| {
                    ApiError::new(
                        "bad_field",
                        "\"diversify\" must be a number in [0, 1] or null",
                    )
                })?;
            request = request.diversify(lambda);
        }
    }
    if let Some(v) = json.get("relax") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"relax\" must be a bool"))?;
        request = request.relax(on);
    }
    if let Some(v) = json.get("explain") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"explain\" must be a bool"))?;
        request = request.explain(on);
    }
    if let Some(v) = json.get("strict_trees") {
        let on = v
            .as_bool()
            .ok_or_else(|| ApiError::new("bad_field", "\"strict_trees\" must be a bool"))?;
        request = request.strict_trees(on);
    }
    if let Some(v) = json.get("sampling") {
        if let Json::Obj(sub) = v {
            for (key, _) in sub {
                if !matches!(key.as_str(), "lambda" | "rho" | "seed") {
                    return Err(ApiError::new(
                        "unknown_field",
                        format!("unknown field \"sampling.{key}\"; accepted: lambda, rho, seed"),
                    ));
                }
            }
        } else {
            return Err(ApiError::new("bad_field", "\"sampling\" must be an object"));
        }
        let lambda = v
            .get("lambda")
            .and_then(Json::as_u64)
            .ok_or_else(|| ApiError::new("bad_field", "\"sampling.lambda\" must be an integer"))?;
        let rho = v
            .get("rho")
            .and_then(Json::as_f64)
            .filter(|r| *r > 0.0 && *r <= 1.0)
            .ok_or_else(|| {
                ApiError::new("bad_field", "\"sampling.rho\" must be a number in (0, 1]")
            })?;
        let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(42);
        request = request.sampling(SamplingConfig::new(lambda, rho, seed));
    }
    let timeout = match json.get("timeout_ms") {
        None => None,
        Some(v) => Some(Duration::from_millis(
            v.as_u64().filter(|&t| t >= 1).ok_or_else(|| {
                ApiError::new("bad_field", "\"timeout_ms\" must be a positive integer")
            })?,
        )),
    };

    Ok(ParsedSearch { request, timeout })
}

/// Render a successful search as the response body. `engine` is the
/// snapshot that answered (for vocabulary/graph rendering and its data
/// version).
pub fn render_response(engine: &SearchEngine, resp: &SearchResponse) -> Json {
    let vocab = engine.text().vocab();
    let query: Vec<Json> = resp
        .query
        .keywords
        .iter()
        .map(|&w| s(vocab.resolve(w)))
        .collect();

    let mut patterns = Vec::with_capacity(resp.patterns.len());
    for (i, p) in resp.patterns.iter().enumerate() {
        let mut entry = vec![
            ("score".to_string(), num(p.score)),
            ("num_trees".to_string(), count(p.num_trees as u64)),
            ("display".to_string(), s(p.display(engine.graph()))),
        ];
        if let Some(table) = resp.tables.get(i) {
            entry.push((
                "columns".to_string(),
                Json::Arr(table.columns.iter().map(|x| s(x.as_str())).collect()),
            ));
            entry.push((
                "rows".to_string(),
                Json::Arr(
                    table
                        .rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|x| s(x.as_str())).collect()))
                        .collect(),
                ),
            ));
        }
        patterns.push(Json::Obj(entry));
    }

    let stats = Json::Obj(vec![
        (
            "candidate_roots".to_string(),
            count(resp.stats.candidate_roots as u64),
        ),
        ("subtrees".to_string(), count(resp.stats.subtrees as u64)),
        ("patterns".to_string(), count(resp.stats.patterns as u64)),
        (
            "combos_tried".to_string(),
            count(resp.stats.combos_tried as u64),
        ),
        (
            "combos_pruned".to_string(),
            count(resp.stats.combos_pruned as u64),
        ),
        (
            "shards".to_string(),
            count(resp.stats.per_shard.len() as u64),
        ),
    ]);

    let mut fields = vec![
        ("query".to_string(), Json::Arr(query)),
        ("algorithm".to_string(), s(algorithm_name(resp))),
        ("planned".to_string(), Json::Bool(resp.planned)),
        (
            "cache".to_string(),
            s(match resp.cache {
                CacheOutcome::Hit => "hit",
                CacheOutcome::Miss => "miss",
                CacheOutcome::Uncached => "uncached",
            }),
        ),
        ("engine_version".to_string(), count(engine.version())),
        (
            "elapsed_us".to_string(),
            count(resp.elapsed.as_micros() as u64),
        ),
        ("stats".to_string(), stats),
        ("patterns".to_string(), Json::Arr(patterns)),
    ];
    if !resp.relaxations.is_empty() {
        fields.push((
            "relaxations".to_string(),
            Json::Arr(
                resp.relaxations
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            (
                                "keywords".to_string(),
                                Json::Arr(
                                    r.keywords.iter().map(|&w| s(vocab.resolve(w))).collect(),
                                ),
                            ),
                            (
                                "candidate_roots".to_string(),
                                count(r.candidate_roots as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(explain) = &resp.explain {
        fields.push((
            "explain".to_string(),
            Json::Arr(explain.iter().map(|x| s(x.as_str())).collect()),
        ));
    }
    Json::Obj(fields)
}

fn algorithm_name(resp: &SearchResponse) -> &'static str {
    use patternkb_search::Algorithm;
    match resp.algorithm {
        Algorithm::Baseline => "baseline",
        Algorithm::PatternEnum => "pattern_enum",
        Algorithm::PatternEnumPruned => "pattern_enum_pruned",
        Algorithm::LinearEnum => "linear_enum",
        Algorithm::LinearEnumTopK(_) => "linear_enum_topk",
    }
}

/// The `{"error": …}` body for any failure.
pub fn error_json(kind: &str, message: &str, extra: Vec<(String, Json)>) -> Json {
    let mut err = vec![
        ("kind".to_string(), s(kind)),
        ("message".to_string(), s(message)),
    ];
    err.extend(extra);
    Json::Obj(vec![("error".to_string(), Json::Obj(err))])
}

/// Map an engine [`Error`] to `(status, body)`.
pub fn engine_error(e: &Error) -> (u16, Json) {
    match e {
        Error::EmptyQuery => (400, error_json("empty_query", &e.to_string(), vec![])),
        Error::UnknownWords(words) => (
            400,
            error_json(
                "unknown_words",
                &e.to_string(),
                vec![(
                    "words".to_string(),
                    Json::Arr(words.iter().map(|x| s(x.as_str())).collect()),
                )],
            ),
        ),
        Error::InvalidRequest(_) => (400, error_json("invalid_request", &e.to_string(), vec![])),
        Error::Planner(_) => (400, error_json("planner", &e.to_string(), vec![])),
        Error::Closed => (503, error_json("closed", &e.to_string(), vec![])),
        _ => (500, error_json("internal", &e.to_string(), vec![])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_defaults() {
        let p = parse_search(br#"{"q": "database company"}"#).unwrap();
        match &p.request.input {
            patternkb_search::request::QueryInput::Text(t) => {
                assert_eq!(t, "database company")
            }
            other => panic!("expected text input, got {other:?}"),
        }
        assert_eq!(p.request.k, 100);
        assert_eq!(p.request.algorithm, AlgorithmChoice::Auto);
        assert!(p.timeout.is_none());
    }

    #[test]
    fn full_request_parses() {
        let p = parse_search(
            br#"{"q":"a b","k":7,"algorithm":"linear_enum_topk","max_rows":3,
                "compose_tables":false,"diversify":0.5,"relax":true,"explain":true,
                "strict_trees":true,"sampling":{"lambda":1000,"rho":0.25,"seed":9},
                "timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(p.request.k, 7);
        assert_eq!(p.request.algorithm, AlgorithmChoice::LinearEnumTopK);
        assert_eq!(p.request.max_rows, 3);
        assert!(!p.request.compose_tables);
        assert_eq!(p.request.diversify, Some(0.5));
        assert!(p.request.relax && p.request.explain && p.request.strict_trees);
        assert_eq!(p.request.sampling.lambda, 1000);
        assert_eq!(p.timeout, Some(Duration::from_millis(250)));
    }

    #[test]
    fn unknown_and_bad_fields_are_named() {
        let e = parse_search(br#"{"q":"a","qq":1}"#).unwrap_err();
        assert_eq!(e.kind, "unknown_field");
        assert!(e.message.contains("qq"));

        let e = parse_search(br#"{"k":5}"#).unwrap_err();
        assert_eq!(e.kind, "missing_field");

        for (body, field) in [
            (&br#"{"q":"a","k":0}"#[..], "k"),
            (br#"{"q":"a","k":-1}"#, "k"),
            (br#"{"q":"a","algorithm":"quantum"}"#, "quantum"),
            (br#"{"q":"a","diversify":1.5}"#, "diversify"),
            (br#"{"q":"a","sampling":{"lambda":1,"rho":0}}"#, "rho"),
            // Strictness reaches nested objects too: a typo'd seed must
            // not silently fall back to the default.
            (
                br#"{"q":"a","sampling":{"lambda":1,"rho":0.5,"sed":7}}"#,
                "sampling.sed",
            ),
            (br#"{"q":"a","sampling":7}"#, "sampling"),
            (br#"{"q":"a","timeout_ms":0}"#, "timeout_ms"),
            (br#"{"q":"a","relax":"yes"}"#, "relax"),
        ] {
            let e = parse_search(body).unwrap_err();
            assert!(
                e.message.contains(field),
                "{field}: {} should name it",
                e.message
            );
        }
    }

    #[test]
    fn malformed_bodies_are_typed() {
        assert_eq!(parse_search(b"{oops").unwrap_err().kind, "bad_json");
        assert_eq!(parse_search(b"[1,2]").unwrap_err().kind, "bad_body");
        assert_eq!(parse_search(&[0xff, 0xfe]).unwrap_err().kind, "bad_body");
    }

    #[test]
    fn engine_errors_map_to_statuses() {
        assert_eq!(engine_error(&Error::EmptyQuery).0, 400);
        assert_eq!(engine_error(&Error::UnknownWords(vec!["x".into()])).0, 400);
        assert_eq!(engine_error(&Error::Closed).0, 503);
        let (code, body) = engine_error(&Error::UnknownWords(vec!["zebra".into()]));
        assert_eq!(code, 400);
        assert!(body.render().contains("zebra"));
    }
}
