//! Minimal JSON value model, parser, and serializer (std-only).
//!
//! The serving layer speaks JSON on the wire but the workspace builds
//! offline with no external crates, so this module implements the subset
//! of RFC 8259 the API needs: the full value model, strict parsing with
//! depth/size limits (malformed bodies must become 400s, never panics or
//! unbounded work), string escapes including `\uXXXX` surrogate pairs,
//! and a canonical serializer that round-trips integers exactly up to
//! 2^53.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Deeper documents
/// are rejected (a hostile body must not overflow the stack).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects preserve insertion order (they are
/// association lists, not maps — duplicate keys are rejected at parse
/// time).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Why a document failed to parse. The offset is a byte position into the
/// input, for error messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the problem.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one complete JSON document; trailing content (other than
    /// whitespace) is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing content after JSON document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer accessor: the number must be integral and
    /// exactly representable (< 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n < 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `Json::Null` (distinguishes explicit null from absent).
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize to a compact string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience: build a number value from anything numeric.
pub fn num(n: impl Into<f64>) -> Json {
    Json::Num(n.into())
}

/// Convenience: build a number value from a usize/u64 count.
pub fn count(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Convenience: build a string value.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-wrong encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("malformed number: no digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("malformed number: no exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let span = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(span).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn structures_parse() {
        let v = Json::parse(r#" {"a": [1, 2, {"b": null}], "c": "x"} "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("b").unwrap().is_null());
        assert_eq!(v.render(), r#"{"a":[1,2,{"b":null}],"c":"x"}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn malformed_is_an_error_not_a_panic() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01x",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            "nan",
            "+1",
            "--1",
            "1.",
            "[1]]",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 10) + &"]".repeat(MAX_DEPTH + 10);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(Json::parse("5").unwrap().as_u64(), Some(5));
        assert_eq!(Json::parse("5.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
