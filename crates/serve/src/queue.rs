//! Bounded MPMC admission queue with batch pops (std `Mutex` + `Condvar`).
//!
//! The backpressure contract of the server lives here: producers
//! (connection threads) *never block* — [`BoundedQueue::try_push`] either
//! admits or refuses immediately so the caller can shed with a 429 while
//! the queue is full. Consumers (workers) block for the *first* item and
//! then drain up to a batch without further waiting, which is what makes
//! micro-batching effective exactly when it matters (under load the queue
//! is non-empty, so batches fill; when idle, batches of one keep latency
//! flat).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// See the module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    nonempty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (0 = always
    /// full: every push sheds — useful for tests and drain-only modes).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            nonempty: Condvar::new(),
        }
    }

    /// Admit `item`, or give it back immediately when the queue is full
    /// or closed. `Ok` carries the queue depth after the push (for the
    /// depth gauge).
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Pop up to `max` items: block up to `wait` for the first, then take
    /// whatever else is queued without blocking. An empty vec means the
    /// wait timed out (or the queue is closed and drained) — callers
    /// should check [`Self::is_closed`] and loop.
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.items.is_empty() && !inner.closed {
            let (guard, _timeout) = self
                .nonempty
                .wait_timeout_while(inner, wait, |st| st.items.is_empty() && !st.closed)
                .unwrap();
            inner = guard;
        }
        let take = inner.items.len().min(max.max(1));
        inner.items.drain(..take).collect()
    }

    /// Close the queue: further pushes fail, consumers drain what is left
    /// and then stop blocking.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.nonempty.notify_all();
    }

    /// Whether [`Self::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop_batch(10, Duration::from_millis(1)), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        // Zero capacity always sheds.
        let zero: BoundedQueue<u32> = BoundedQueue::new(0);
        assert_eq!(zero.try_push(9), Err(9));
    }

    #[test]
    fn batch_pop_respects_max() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4, Duration::from_millis(1)).len(), 4);
        assert_eq!(q.len(), 6);
        // max is clamped to at least one.
        assert_eq!(q.pop_batch(0, Duration::from_millis(1)).len(), 1);
    }

    #[test]
    fn pop_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let t0 = std::time::Instant::now();
        assert!(q.pop_batch(4, Duration::from_millis(20)).is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn close_wakes_and_drains() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                let batch = q2.pop_batch(4, Duration::from_secs(5));
                if batch.is_empty() {
                    if q2.is_closed() {
                        break;
                    }
                    continue;
                }
                got.extend(batch);
            }
            got
        });
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        assert_eq!(h.join().unwrap(), vec![7]);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(BoundedQueue::new(64));
        let total = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || loop {
                let batch = q.pop_batch(8, Duration::from_millis(50));
                if batch.is_empty() && q.is_closed() {
                    break;
                }
                total.fetch_add(batch.len(), std::sync::atomic::Ordering::Relaxed);
            }));
        }
        let mut pushed = 0;
        for i in 0..500 {
            if q.try_push(i).is_ok() {
                pushed += 1;
            } else {
                std::thread::yield_now();
            }
        }
        // Give consumers a moment to drain, then close.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), pushed);
    }
}
