//! # patternkb-serve
//!
//! The production serving layer: an HTTP/1.1 server over
//! [`patternkb_search::SharedEngine`] that turns the engine into an
//! operable service — the missing piece between "answers one query fast"
//! and "serves sustained concurrent traffic". Std-only by design: the
//! workspace builds offline against vendored path crates, and a serving
//! layer with zero external dependencies keeps it that way.
//!
//! ## What it provides
//!
//! * **A fixed worker pool + bounded admission queue** ([`server`]):
//!   engine concurrency is bounded by `workers` regardless of open
//!   connections; a full queue sheds instantly with `429 Retry-After`
//!   and expired requests are dropped with `503` before any search work
//!   (backpressure, not queue collapse).
//! * **Micro-batching** ([`queue`]): workers pop request batches and
//!   answer each batch on one engine snapshot — per-request overhead is
//!   amortized and a batch always sees one consistent state.
//! * **The JSON wire API** ([`api`], [`json`]): strict request parsing
//!   (unknown/ill-typed fields are 400s naming the field) mapping 1:1
//!   onto [`patternkb_search::SearchRequest`] /
//!   [`patternkb_search::SearchResponse`].
//! * **Observability** ([`metrics`]): `GET /metrics` in Prometheus text
//!   format — request counts by route/status, a latency histogram, queue
//!   depth, shed counts, cache hit rate, per-shard work, epoch/version.
//! * **The online write path** ([`server`], [`api`]): `POST
//!   /admin/ingest` accepts a JSON mutation batch (`add_node`,
//!   `add_edge`, `add_text_edge`, `remove_edge` by stable names/ids),
//!   compiles it into a [`patternkb_graph::mutate::GraphDelta`] and
//!   applies it through
//!   [`patternkb_search::SharedEngine::ingest_with`]'s incremental index
//!   refresh — never a full rebuild, and reads keep serving the old
//!   snapshot until the pointer swap. Racing ingests serialize.
//! * **Lifecycle** ([`server`]): `POST /admin/reload` hot-swaps a
//!   rebuilt engine ([`patternkb_search::SharedEngine::replace`]) while
//!   in-flight queries finish on the old epoch; `POST /admin/shutdown`
//!   (or [`Server::trigger_shutdown`]) drains gracefully.
//!
//! ## Endpoints
//!
//! | Method | Path              | Purpose                                   |
//! |--------|-------------------|-------------------------------------------|
//! | POST   | `/search`         | One keyword query (JSON body)             |
//! | GET    | `/healthz`        | Liveness (503 while draining)             |
//! | GET    | `/metrics`        | Prometheus text exposition                |
//! | POST   | `/admin/ingest`   | Online mutation batch (incremental)       |
//! | POST   | `/admin/reload`   | Hot snapshot swap (rebuild + epoch bump)  |
//! | POST   | `/admin/shutdown` | Graceful drain + stop                     |
//!
//! See the repository README's "Serving" section for the request/response
//! schema and the backpressure knobs, and `patternkb-cli serve` for the
//! ready-made binary entry point.
//!
//! ```no_run
//! use patternkb_search::EngineBuilder;
//! use patternkb_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let (graph, _) = patternkb_datagen::figure1();
//! let engine = Arc::new(EngineBuilder::new().graph(graph).build_shared()?);
//! let server = Server::start(
//!     engine,
//!     None, // no reload source
//!     ServeConfig {
//!         addr: "127.0.0.1:7878".into(),
//!         ..ServeConfig::default()
//!     },
//! )?;
//! println!("listening on {}", server.local_addr());
//! server.join(); // until POST /admin/shutdown
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;

pub use json::Json;
pub use metrics::ServerMetrics;
pub use server::{ReloadFn, ServeConfig, Server};
