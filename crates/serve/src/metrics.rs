//! Server observability: atomic counters, a latency histogram, and the
//! Prometheus text rendering behind `GET /metrics`.
//!
//! Everything on the request path is lock-free (`AtomicU64`); the only
//! mutex guards the per-shard aggregates, touched once per *answered*
//! search. Engine-side families (cache hit rate, epoch, data version) are
//! read live from the [`SharedEngine`] at render time rather than
//! mirrored, so they can never drift.

use patternkb_search::{QueryStats, SharedEngine};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds in seconds (Prometheus `le` labels),
/// log-spaced from 250µs to 10s.
pub const LATENCY_BOUNDS: [f64; 13] = [
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 10.0,
];

/// Cumulative latency histogram (search requests answered 200).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS.len()],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        for (i, bound) in LATENCY_BOUNDS.iter().enumerate() {
            if secs <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.sum_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, help: &str, out: &mut String) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        for (i, bound) in LATENCY_BOUNDS.iter().enumerate() {
            out.push_str(&format!(
                "{name}_bucket{{le=\"{bound}\"}} {}\n",
                self.buckets[i].load(Ordering::Relaxed)
            ));
        }
        let count = self.count.load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!("{name}_count {count}\n"));
    }
}

/// Routes the request counter partitions on. Fixed set so the counter
/// matrix stays atomic (no label-string allocation on the hot path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /search`
    Search,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /admin/reload`
    AdminReload,
    /// `POST /admin/ingest`
    AdminIngest,
    /// `POST /admin/checkpoint`
    AdminCheckpoint,
    /// `POST /admin/shutdown`
    AdminShutdown,
    /// Anything else (404s, bad requests, …).
    Other,
}

const ROUTES: [(Route, &str); 8] = [
    (Route::Search, "search"),
    (Route::Healthz, "healthz"),
    (Route::Metrics, "metrics"),
    (Route::AdminReload, "admin_reload"),
    (Route::AdminIngest, "admin_ingest"),
    (Route::AdminCheckpoint, "admin_checkpoint"),
    (Route::AdminShutdown, "admin_shutdown"),
    (Route::Other, "other"),
];

/// Status classes the counter matrix tracks per route — every code the
/// server emits (`http::reason` is the superset to keep in sync).
const CODES: [u16; 14] = [
    200, 400, 404, 405, 408, 409, 411, 413, 429, 431, 500, 501, 503, 505,
];

fn code_slot(code: u16) -> usize {
    CODES.iter().position(|&c| c == code).unwrap_or_else(|| {
        // Untracked codes fold into their class's generic slot.
        let fallback = if code >= 500 { 500 } else { 400 };
        CODES.iter().position(|&c| c == fallback).expect("in CODES")
    })
}

/// Per-shard work aggregates accumulated across answered searches.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardAgg {
    /// Candidate roots routed to this shard.
    pub candidate_roots: u64,
    /// Valid subtrees enumerated by this shard.
    pub subtrees: u64,
}

/// All server counters. One instance per [`crate::server::Server`].
#[derive(Default)]
pub struct ServerMetrics {
    requests: [[AtomicU64; CODES.len()]; ROUTES.len()],
    /// Latency of answered searches (queueing + execution + rendering).
    pub latency: Histogram,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// Requests refused because the queue was full (429).
    pub shed_queue_full: AtomicU64,
    /// Requests dropped because their deadline expired in the queue (503).
    pub shed_deadline: AtomicU64,
    /// Worker batch pops.
    pub batches: AtomicU64,
    /// Requests served through those batches.
    pub batched_requests: AtomicU64,
    /// Successful hot snapshot swaps.
    pub reloads: AtomicU64,
    /// Failed reload attempts.
    pub reload_failures: AtomicU64,
    /// Mutation batches applied through `POST /admin/ingest`.
    pub ingests: AtomicU64,
    /// Ingest batches refused (parse/resolution 400s, conflicts, closed).
    pub ingest_failures: AtomicU64,
    /// Duration of applied ingests (delta compile + incremental refresh +
    /// snapshot swap).
    pub ingest_refresh: Histogram,
    /// Recently drained (worker-served) request counts, for the
    /// [`Self::retry_after_secs`] estimate.
    drained: Mutex<VecDeque<(Instant, u64)>>,
    /// Connections accepted over the server's lifetime.
    pub connections_total: AtomicU64,
    /// Currently open connections.
    pub connections_active: AtomicU64,
    /// Connections refused at accept because the connection cap was hit.
    pub connections_refused: AtomicU64,
    shards: Mutex<Vec<ShardAgg>>,
}

impl ServerMetrics {
    /// Count one finished HTTP exchange.
    pub fn record(&self, route: Route, code: u16) {
        let r = ROUTES
            .iter()
            .position(|(x, _)| *x == route)
            .unwrap_or(ROUTES.len() - 1);
        self.requests[r][code_slot(code)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests answered with `code` on `route` (test/diagnostics).
    pub fn count(&self, route: Route, code: u16) -> u64 {
        let r = ROUTES
            .iter()
            .position(|(x, _)| *x == route)
            .unwrap_or(ROUTES.len() - 1);
        self.requests[r][code_slot(code)].load(Ordering::Relaxed)
    }

    /// How far back the drain-rate window looks.
    const DRAIN_WINDOW: Duration = Duration::from_secs(5);

    /// Note that a worker just drained `n` requests off the admission
    /// queue (one call per batch pop).
    pub fn note_drained(&self, n: u64) {
        self.note_drained_at(Instant::now(), n);
    }

    fn note_drained_at(&self, now: Instant, n: u64) {
        let mut window = self.drained.lock().unwrap();
        window.push_back((now, n));
        while let Some(&(t, _)) = window.front() {
            if now.duration_since(t) > Self::DRAIN_WINDOW {
                window.pop_front();
            } else {
                break;
            }
        }
    }

    /// The `Retry-After` value (seconds) derived from the live queue:
    /// current depth ÷ recent drain throughput, clamped to `[1, 30]`.
    /// Every shedding site emits this one estimate so they cannot drift.
    ///
    /// An empty queue retries in 1 s (shed was a transient spike); a
    /// backlog with *no* recent drainage is the pessimistic 30 s (workers
    /// stalled or all capacity busy on long queries).
    pub fn retry_after_secs(&self) -> u64 {
        self.retry_after_secs_at(Instant::now())
    }

    fn retry_after_secs_at(&self, now: Instant) -> u64 {
        let depth = self.queue_depth.load(Ordering::Relaxed);
        if depth == 0 {
            return 1;
        }
        let drained: u64 = self
            .drained
            .lock()
            .unwrap()
            .iter()
            .filter(|(t, _)| now.duration_since(*t) <= Self::DRAIN_WINDOW)
            .map(|&(_, n)| n)
            .sum();
        if drained == 0 {
            return 30;
        }
        let rate = drained as f64 / Self::DRAIN_WINDOW.as_secs_f64();
        ((depth as f64 / rate).ceil() as u64).clamp(1, 30)
    }

    /// Fold one answered search's per-shard stats into the aggregates.
    pub fn record_shards(&self, stats: &QueryStats) {
        let mut shards = self.shards.lock().unwrap();
        for s in &stats.per_shard {
            if s.shard >= shards.len() {
                shards.resize(s.shard + 1, ShardAgg::default());
            }
            shards[s.shard].candidate_roots += s.candidate_roots as u64;
            shards[s.shard].subtrees += s.subtrees as u64;
        }
    }

    /// Render the Prometheus exposition text. `engine` supplies the live
    /// cache/epoch/version families.
    pub fn render(&self, engine: &SharedEngine) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str(
            "# HELP patternkb_requests_total HTTP requests by route and status code.\n\
             # TYPE patternkb_requests_total counter\n",
        );
        for (r, (_, route_name)) in ROUTES.iter().enumerate() {
            for (c, code) in CODES.iter().enumerate() {
                let n = self.requests[r][c].load(Ordering::Relaxed);
                if n > 0 || (*route_name == "search" && matches!(code, 200 | 429 | 503)) {
                    out.push_str(&format!(
                        "patternkb_requests_total{{route=\"{route_name}\",code=\"{code}\"}} {n}\n"
                    ));
                }
            }
        }

        self.latency.render(
            "patternkb_search_latency_seconds",
            "Search request latency (successful requests).",
            &mut out,
        );

        out.push_str(
            "# HELP patternkb_queue_depth Requests waiting in the admission queue.\n\
             # TYPE patternkb_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "patternkb_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP patternkb_shed_total Requests shed by backpressure, by reason.\n\
             # TYPE patternkb_shed_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_shed_total{{reason=\"queue_full\"}} {}\n",
            self.shed_queue_full.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "patternkb_shed_total{{reason=\"deadline\"}} {}\n",
            self.shed_deadline.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP patternkb_batches_total Worker micro-batch pops.\n\
             # TYPE patternkb_batches_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_batches_total {}\n",
            self.batches.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP patternkb_batched_requests_total Search requests served through batches.\n\
             # TYPE patternkb_batched_requests_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_batched_requests_total {}\n",
            self.batched_requests.load(Ordering::Relaxed)
        ));

        let cache = engine.cache_stats();
        out.push_str(
            "# HELP patternkb_cache_hits_total Result-cache hits.\n\
             # TYPE patternkb_cache_hits_total counter\n",
        );
        out.push_str(&format!("patternkb_cache_hits_total {}\n", cache.hits));
        out.push_str(
            "# HELP patternkb_cache_misses_total Result-cache misses.\n\
             # TYPE patternkb_cache_misses_total counter\n",
        );
        out.push_str(&format!("patternkb_cache_misses_total {}\n", cache.misses));
        out.push_str(
            "# HELP patternkb_cache_stale_total Entries rejected as version-stale.\n\
             # TYPE patternkb_cache_stale_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_cache_stale_total {}\n",
            cache.stale_rejections
        ));
        out.push_str(
            "# HELP patternkb_cache_evictions_total Entries evicted by capacity.\n\
             # TYPE patternkb_cache_evictions_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_cache_evictions_total {}\n",
            cache.evictions
        ));

        // Storage families are read live from the serving snapshot, so an
        // ingest that materializes a mapped index (mmap → heap) is
        // reflected on the next scrape.
        let snapshot = engine.snapshot();
        let backend = snapshot.storage_backend();
        out.push_str(
            "# HELP patternkb_storage_backend Storage tier serving the path indexes (1 = active).\n\
             # TYPE patternkb_storage_backend gauge\n",
        );
        for candidate in [
            patternkb_search::StorageBackend::Heap,
            patternkb_search::StorageBackend::Mmap,
        ] {
            out.push_str(&format!(
                "patternkb_storage_backend{{backend=\"{candidate}\"}} {}\n",
                u8::from(candidate == backend)
            ));
        }
        if let Some(load) = snapshot.snapshot_load_time() {
            out.push_str(
                "# HELP patternkb_snapshot_load_seconds Index snapshot load/open time at boot.\n\
                 # TYPE patternkb_snapshot_load_seconds gauge\n",
            );
            out.push_str(&format!(
                "patternkb_snapshot_load_seconds {}\n",
                load.as_secs_f64()
            ));
        }

        out.push_str(
            "# HELP patternkb_engine_epoch Hot-swap epoch (+1 per /admin/reload).\n\
             # TYPE patternkb_engine_epoch gauge\n",
        );
        out.push_str(&format!("patternkb_engine_epoch {}\n", engine.epoch()));
        out.push_str(
            "# HELP patternkb_engine_version Data version of the serving snapshot.\n\
             # TYPE patternkb_engine_version gauge\n",
        );
        out.push_str(&format!("patternkb_engine_version {}\n", engine.version()));
        out.push_str(
            "# HELP patternkb_reloads_total Successful hot snapshot swaps.\n\
             # TYPE patternkb_reloads_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_reloads_total {}\n",
            self.reloads.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP patternkb_reload_failures_total Failed reload attempts.\n\
             # TYPE patternkb_reload_failures_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_reload_failures_total {}\n",
            self.reload_failures.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP patternkb_ingests_total Mutation batches applied via /admin/ingest.\n\
             # TYPE patternkb_ingests_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_ingests_total {}\n",
            self.ingests.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP patternkb_ingest_failures_total Ingest batches refused.\n\
             # TYPE patternkb_ingest_failures_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_ingest_failures_total {}\n",
            self.ingest_failures.load(Ordering::Relaxed)
        ));
        self.ingest_refresh.render(
            "patternkb_ingest_refresh_seconds",
            "Applied-ingest duration (delta compile + incremental refresh + swap).",
            &mut out,
        );

        out.push_str(
            "# HELP patternkb_connections_total Connections accepted.\n\
             # TYPE patternkb_connections_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_connections_total {}\n",
            self.connections_total.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP patternkb_connections_active Currently open connections.\n\
             # TYPE patternkb_connections_active gauge\n",
        );
        out.push_str(&format!(
            "patternkb_connections_active {}\n",
            self.connections_active.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP patternkb_connections_refused_total Connections refused at the cap.\n\
             # TYPE patternkb_connections_refused_total counter\n",
        );
        out.push_str(&format!(
            "patternkb_connections_refused_total {}\n",
            self.connections_refused.load(Ordering::Relaxed)
        ));

        if let Some(durability) = engine.durability() {
            let d = durability.metrics();
            out.push_str(
                "# HELP patternkb_wal_appended_total Delta records appended to the write-ahead log.\n\
                 # TYPE patternkb_wal_appended_total counter\n",
            );
            out.push_str(&format!(
                "patternkb_wal_appended_total {}\n",
                d.appended_total
            ));
            out.push_str(
                "# HELP patternkb_wal_bytes Current write-ahead log size (shrinks on checkpoint).\n\
                 # TYPE patternkb_wal_bytes gauge\n",
            );
            out.push_str(&format!("patternkb_wal_bytes {}\n", d.log_bytes));
            out.push_str(
                "# HELP patternkb_wal_records Records currently in the write-ahead log.\n\
                 # TYPE patternkb_wal_records gauge\n",
            );
            out.push_str(&format!("patternkb_wal_records {}\n", d.log_records));

            let name = "patternkb_wal_fsync_seconds";
            out.push_str(&format!(
                "# HELP {name} Write-ahead log fsync latency (policy: {}).\n# TYPE {name} histogram\n",
                d.fsync_policy
            ));
            for (i, bound) in patternkb_search::FSYNC_BOUNDS.iter().enumerate() {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{bound}\"}} {}\n",
                    d.fsync.buckets[i]
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", d.fsync.count));
            out.push_str(&format!(
                "{name}_sum {}\n",
                d.fsync.total_micros as f64 / 1e6
            ));
            out.push_str(&format!("{name}_count {}\n", d.fsync.count));

            out.push_str(
                "# HELP patternkb_checkpoints_total Checkpoints completed since boot.\n\
                 # TYPE patternkb_checkpoints_total counter\n",
            );
            out.push_str(&format!(
                "patternkb_checkpoints_total {}\n",
                d.checkpoints_total
            ));
            out.push_str(
                "# HELP patternkb_checkpoint_failures_total Checkpoint attempts that failed.\n\
                 # TYPE patternkb_checkpoint_failures_total counter\n",
            );
            out.push_str(&format!(
                "patternkb_checkpoint_failures_total {}\n",
                d.checkpoint_failures
            ));
            if let Some(age) = d.last_checkpoint_age {
                out.push_str(
                    "# HELP patternkb_checkpoint_age_seconds Time since the last completed checkpoint.\n\
                     # TYPE patternkb_checkpoint_age_seconds gauge\n",
                );
                out.push_str(&format!(
                    "patternkb_checkpoint_age_seconds {}\n",
                    age.as_secs_f64()
                ));
            }
        }

        out.push_str(
            "# HELP patternkb_shard_candidate_roots_total Candidate roots per index shard.\n\
             # TYPE patternkb_shard_candidate_roots_total counter\n\
             # HELP patternkb_shard_subtrees_total Valid subtrees enumerated per index shard.\n\
             # TYPE patternkb_shard_subtrees_total counter\n",
        );
        for (i, agg) in self.shards.lock().unwrap().iter().enumerate() {
            out.push_str(&format!(
                "patternkb_shard_candidate_roots_total{{shard=\"{i}\"}} {}\n",
                agg.candidate_roots
            ));
            out.push_str(&format!(
                "patternkb_shard_subtrees_total{{shard=\"{i}\"}} {}\n",
                agg.subtrees
            ));
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(100)); // <= every bound
        h.observe(Duration::from_millis(30)); // > 25ms bound
        assert_eq!(h.count(), 2);
        let mut out = String::new();
        h.render("t", "test histogram", &mut out);
        assert!(out.contains("t_bucket{le=\"0.00025\"} 1\n"));
        assert!(out.contains("t_bucket{le=\"0.05\"} 2\n"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 2\n"));
        assert!(out.contains("t_count 2\n"));
    }

    #[test]
    fn request_matrix_counts() {
        let m = ServerMetrics::default();
        m.record(Route::Search, 200);
        m.record(Route::Search, 200);
        m.record(Route::Search, 429);
        m.record(Route::Other, 404);
        // Unknown 5xx folds into the 500 slot; unknown 4xx into 400.
        m.record(Route::Search, 502);
        assert_eq!(m.count(Route::Search, 200), 2);
        assert_eq!(m.count(Route::Search, 429), 1);
        assert_eq!(m.count(Route::Other, 404), 1);
        assert_eq!(m.count(Route::Search, 500), 1);
    }

    #[test]
    fn retry_after_derives_from_queue_and_drain_rate() {
        let m = ServerMetrics::default();
        let now = Instant::now();

        // Empty queue: retry shortly no matter the drain history.
        assert_eq!(m.retry_after_secs_at(now), 1);

        // Backlog with nothing draining: pessimistic cap.
        m.queue_depth.store(100, Ordering::Relaxed);
        assert_eq!(m.retry_after_secs_at(now), 30);

        // 50 drained in the 5s window → 10/s; 100 queued → 10s.
        m.note_drained_at(now, 50);
        assert_eq!(m.retry_after_secs_at(now), 10);

        // Faster drainage shrinks the estimate, floored at 1.
        m.note_drained_at(now, 950);
        assert_eq!(m.retry_after_secs_at(now), 1);

        // Entries age out of the window; backlog alone is capped at 30.
        let later = now + Duration::from_secs(11);
        m.note_drained_at(later, 0); // triggers expiry of old entries
        assert_eq!(m.retry_after_secs_at(later), 30);
    }

    #[test]
    fn retry_after_is_clamped() {
        let m = ServerMetrics::default();
        let now = Instant::now();
        m.queue_depth.store(100_000, Ordering::Relaxed);
        m.note_drained_at(now, 1);
        assert_eq!(m.retry_after_secs_at(now), 30);
    }

    #[test]
    fn shard_aggregates_grow() {
        use patternkb_search::ShardStats;
        let m = ServerMetrics::default();
        let stats = QueryStats {
            per_shard: vec![
                ShardStats {
                    shard: 0,
                    candidate_roots: 3,
                    subtrees: 5,
                    patterns: 1,
                },
                ShardStats {
                    shard: 2,
                    candidate_roots: 1,
                    subtrees: 2,
                    patterns: 1,
                },
            ],
            ..QueryStats::default()
        };
        m.record_shards(&stats);
        m.record_shards(&stats);
        let shards = m.shards.lock().unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].candidate_roots, 6);
        assert_eq!(shards[2].subtrees, 4);
    }
}
