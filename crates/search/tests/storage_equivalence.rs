//! The mapped (v5, decode-on-first-touch) storage tier is
//! **bit-identical** to the heap tier.
//!
//! Every algorithm (baseline, `PATTERNENUM`, pruned `PATTERNENUM` — both
//! against each other and against the exact enumerator, `LINEARENUM`,
//! `LINEARENUM-TOPK` exact and sampled, unified ranking, individual
//! subtrees) must return exactly the same answers — same patterns, same
//! score **bits**, same order, same materialized rows — whether the
//! postings are served from fully decoded heap structures or read in
//! place from a v5 container with per-word decode deferred to first
//! touch. Exercised on the paper's Figure-1 graph, on the Zipf-skewed
//! synthetic Wiki KB, across shard counts, and through a proptest sweep
//! over random Zipf graphs and queries; the engine-level suite also pins
//! heap/mmap equality end to end through `EngineBuilder::storage`.

use patternkb_datagen::figure1;
use patternkb_datagen::queries::QueryGenerator;
use patternkb_datagen::wiki::{wiki, WikiConfig};
use patternkb_graph::KnowledgeGraph;
use patternkb_index::storage::{encode_v5, open_bytes};
use patternkb_index::{build_indexes, BuildConfig, PathIndexes, StorageBackend};
use patternkb_search::baseline::baseline;
use patternkb_search::bound::pattern_enum_pruned;
use patternkb_search::common::QueryContext;
use patternkb_search::individual::top_individual;
use patternkb_search::linear_enum::linear_enum;
use patternkb_search::pattern_enum::pattern_enum;
use patternkb_search::topk::{linear_enum_topk, SamplingConfig};
use patternkb_search::unified::{unified_ranking, UnifiedConfig};
use patternkb_search::{Query, SearchConfig, SearchResult};
use patternkb_text::{SynonymTable, TextIndex};

fn heap_index(g: &KnowledgeGraph, t: &TextIndex, d: usize, shards: usize) -> PathIndexes {
    build_indexes(
        g,
        t,
        &BuildConfig {
            d,
            threads: 1,
            shards,
        },
    )
}

/// Round-trip a built index through the v5 container onto the mapped
/// tier: same postings, storage-resident, decode deferred.
fn mapped_index(idx: &PathIndexes) -> PathIndexes {
    let mapped = open_bytes(encode_v5(idx)).expect("v5 opens");
    assert_eq!(mapped.storage_backend(), StorageBackend::Mmap);
    mapped
}

/// Assert two results are identical to the bit: patterns, order, scores,
/// tree counts, and materialized rows.
fn assert_identical(a: &SearchResult, b: &SearchResult, label: &str) {
    assert_eq!(a.patterns.len(), b.patterns.len(), "{label}: result size");
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x.key(), y.key(), "{label}: pattern identity/order");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{label}: score bits ({} vs {})",
            x.score,
            y.score
        );
        assert_eq!(x.num_trees, y.num_trees, "{label}: |trees(P)|");
        assert_eq!(x.trees.len(), y.trees.len(), "{label}: materialized rows");
        for (ta, tb) in x.trees.iter().zip(&y.trees) {
            assert_eq!(ta.root, tb.root, "{label}: row root");
            assert_eq!(ta.score.to_bits(), tb.score.to_bits(), "{label}: row score");
            assert_eq!(ta.paths.len(), tb.paths.len(), "{label}: row paths");
            for (pa, pb) in ta.paths.iter().zip(&tb.paths) {
                assert_eq!(pa.nodes, pb.nodes, "{label}: row path nodes");
                assert_eq!(pa.edge_terminal, pb.edge_terminal, "{label}: row kind");
            }
        }
    }
    assert_eq!(a.stats.subtrees, b.stats.subtrees, "{label}: subtree count");
    assert_eq!(
        a.stats.candidate_roots, b.stats.candidate_roots,
        "{label}: candidate roots"
    );
}

/// Run every algorithm on the heap index and its mapped round-trip and
/// demand bit-identical output, including pruned-vs-exact *within* the
/// mapped tier.
fn check_backends(g: &KnowledgeGraph, t: &TextIndex, d: usize, shards: usize, q: &Query, k: usize) {
    let heap = heap_index(g, t, d, shards);
    let mapped = mapped_index(&heap);
    let cfg = SearchConfig::top(k);

    let Some(hctx) = QueryContext::new(g, &heap, q) else {
        assert!(
            QueryContext::new(g, &mapped, q).is_none(),
            "unanswerable on heap must be unanswerable on mmap"
        );
        return;
    };
    let mctx = QueryContext::new(g, &mapped, q).expect("answerable stays answerable");
    let label = |algo: &str| format!("{algo} shards={shards} k={k}");

    assert_identical(
        &linear_enum(&hctx, &cfg),
        &linear_enum(&mctx, &cfg),
        &label("linear_enum"),
    );
    let h_pe = pattern_enum(&hctx, &cfg);
    let m_pe = pattern_enum(&mctx, &cfg);
    assert_identical(&h_pe, &m_pe, &label("pattern_enum"));
    // Pruned vs pruned across tiers, and pruned vs exact on the mapped
    // tier (score-bound block skipping reads bounds from mapped bytes).
    let h_pruned = pattern_enum_pruned(&hctx, &cfg);
    let m_pruned = pattern_enum_pruned(&mctx, &cfg);
    for (refr, got, what) in [
        (&h_pruned, &m_pruned, "pruned heap vs mmap"),
        (&m_pe, &m_pruned, "exact vs pruned on mmap"),
    ] {
        assert_eq!(refr.patterns.len(), got.patterns.len(), "{what}");
        for (x, y) in refr.patterns.iter().zip(&got.patterns) {
            assert_eq!(x.key(), y.key(), "{}: {what}", label("pattern_enum_pruned"));
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}");
            assert_eq!(x.num_trees, y.num_trees, "{what}");
        }
    }
    assert_identical(
        &linear_enum_topk(&hctx, &cfg, &SamplingConfig::exact()),
        &linear_enum_topk(&mctx, &cfg, &SamplingConfig::exact()),
        &label("linear_enum_topk[exact]"),
    );
    assert_identical(
        &linear_enum_topk(&hctx, &cfg, &SamplingConfig::new(0, 0.5, 13)),
        &linear_enum_topk(&mctx, &cfg, &SamplingConfig::new(0, 0.5, 13)),
        &label("linear_enum_topk[rho=0.5]"),
    );
    assert_identical(
        &baseline(g, t, q, &cfg, d, heap.bounds()),
        &baseline(g, t, q, &cfg, d, mapped.bounds()),
        &label("baseline"),
    );

    let h_trees = top_individual(&hctx, &cfg, k);
    let m_trees = top_individual(&mctx, &cfg, k);
    assert_eq!(h_trees.len(), m_trees.len(), "{}", label("top_individual"));
    for (a, b) in h_trees.iter().zip(&m_trees) {
        assert_eq!(a.tree.root, b.tree.root, "{}", label("top_individual"));
        assert_eq!(a.tree.score.to_bits(), b.tree.score.to_bits());
        assert_eq!(a.pattern_key, b.pattern_key);
    }

    let h_unified = unified_ranking(&hctx, &cfg, &UnifiedConfig { blend: 1.0, k });
    let m_unified = unified_ranking(&mctx, &cfg, &UnifiedConfig { blend: 1.0, k });
    assert_eq!(h_unified.len(), m_unified.len(), "{}", label("unified"));
    for (a, b) in h_unified.iter().zip(&m_unified) {
        assert_eq!(a.is_pattern(), b.is_pattern(), "{}", label("unified"));
        assert_eq!(a.score().to_bits(), b.score().to_bits());
    }
}

#[test]
fn figure1_all_algorithms_heap_vs_mmap() {
    let (g, _) = figure1();
    let t = TextIndex::build(&g, SynonymTable::new());
    for query in [
        "database software company revenue",
        "database company",
        "revenue",
        "bill gates",
        "software",
        "oracle gates", // unanswerable multi-keyword
    ] {
        let q = Query::parse(&t, query).unwrap();
        for shards in [1usize, 3] {
            for k in [1, 3, 100] {
                check_backends(&g, &t, 3, shards, &q, k);
            }
        }
    }
}

#[test]
fn zipf_dataset_all_algorithms_heap_vs_mmap() {
    let g = wiki(&WikiConfig::tiny(5));
    let t = TextIndex::build(&g, SynonymTable::new());
    let mut qg = QueryGenerator::new(&g, &t, 3, 17);
    let mut checked = 0;
    for m in [1usize, 2, 3] {
        for _ in 0..3 {
            let Some(spec) = qg.anchored(m) else { continue };
            let q = Query::from_ids(spec.keywords);
            check_backends(&g, &t, 3, 2, &q, 10);
            checked += 1;
        }
    }
    assert!(checked >= 5, "zipf generator produced too few queries");
}

#[test]
fn engine_builder_storage_mmap_end_to_end() {
    use patternkb_search::{EngineBuilder, SearchRequest};

    let (g, _) = figure1();
    let reference = EngineBuilder::new()
        .graph(g)
        .threads(1)
        .shards(2)
        .build()
        .unwrap();
    let dir = std::env::temp_dir().join("patternkb_storage_equivalence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1.pkb5");
    patternkb_index::storage::save_v5(reference.index(), &path).unwrap();

    let (g, _) = figure1();
    let mmap_engine = EngineBuilder::new()
        .graph(g)
        .index_snapshot(&path)
        .storage(StorageBackend::Mmap)
        .build()
        .unwrap();
    assert_eq!(mmap_engine.storage_backend(), StorageBackend::Mmap);
    assert!(mmap_engine.snapshot_load_time().is_some());

    let (g, _) = figure1();
    let heap_engine = EngineBuilder::new()
        .graph(g)
        .index_snapshot(&path)
        .build()
        .unwrap();
    assert_eq!(heap_engine.storage_backend(), StorageBackend::Heap);
    std::fs::remove_file(&path).ok();

    for query in [
        "database software company revenue",
        "bill gates",
        "software",
    ] {
        let req = SearchRequest::text(query).k(50);
        let a = reference.respond(&req).unwrap();
        let b = mmap_engine.respond(&req).unwrap();
        let c = heap_engine.respond(&req).unwrap();
        for other in [&b, &c] {
            assert_eq!(a.patterns.len(), other.patterns.len(), "{query}");
            for (x, y) in a.patterns.iter().zip(&other.patterns) {
                assert_eq!(x.key(), y.key(), "{query}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{query}");
            }
        }
    }
}

/// Durable boot: a checkpoint's index blob is a v5 container, so a
/// `--storage mmap` boot opens it without decoding; heap boots decode
/// the same blob; and a legacy checkpoint whose blob is a raw PKBI
/// image still boots on either setting (falling back to heap decode).
#[test]
fn durable_boot_takes_the_v5_checkpoint_fast_path() {
    use patternkb_search::{EngineBuilder, SearchRequest};

    let dir = std::env::temp_dir().join(format!(
        "patternkb_storage_boot_test_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mk = || {
        let (g, _) = figure1();
        EngineBuilder::new()
            .graph(g)
            .threads(1)
            .shards(2)
            .data_dir(&dir)
    };
    {
        let shared = mk().build_shared().unwrap();
        let d = shared.durability().expect("durable boot");
        d.checkpoint_now(&shared.snapshot()).unwrap();
    }
    let (cp, _) = patternkb_wal::checkpoint::load_latest(&dir)
        .unwrap()
        .expect("checkpoint written");
    assert_eq!(&cp.index[..4], b"PKB5", "checkpoints carry v5 index blobs");

    let answers = |shared: &patternkb_search::SharedEngine| {
        ["database software company revenue", "bill gates"].map(|q| {
            let r = shared.respond(&SearchRequest::text(q).k(20)).unwrap();
            r.patterns
                .iter()
                .map(|p| (p.key().to_vec(), p.score.to_bits()))
                .collect::<Vec<_>>()
        })
    };

    let heap_boot = mk().build_shared().unwrap();
    assert_eq!(heap_boot.snapshot().storage_backend(), StorageBackend::Heap);
    let mmap_boot = mk().storage(StorageBackend::Mmap).build_shared().unwrap();
    let booted = mmap_boot.snapshot();
    assert_eq!(booted.storage_backend(), StorageBackend::Mmap);
    assert!(booted.snapshot_load_time().is_some());
    assert_eq!(answers(&heap_boot), answers(&mmap_boot));
    drop((heap_boot, mmap_boot));

    // Rewrite the checkpoint with a pre-v5 raw PKBI index blob: both
    // boot settings must still come up (mmap falls back to decoding).
    let reference = {
        let (g, _) = figure1();
        EngineBuilder::new()
            .graph(g)
            .threads(1)
            .shards(2)
            .build()
            .unwrap()
    };
    let legacy = patternkb_wal::checkpoint::Checkpoint {
        version: cp.version,
        graph: cp.graph.clone(),
        index: patternkb_index::snapshot::encode(reference.index()),
    };
    patternkb_wal::checkpoint::write(&dir, &legacy).unwrap();
    let legacy_mmap_boot = mk().storage(StorageBackend::Mmap).build_shared().unwrap();
    assert_eq!(
        legacy_mmap_boot.snapshot().storage_backend(),
        StorageBackend::Heap,
        "pre-v5 checkpoint blobs decode onto the heap tier"
    );
    let legacy_heap_boot = mk().build_shared().unwrap();
    assert_eq!(answers(&legacy_heap_boot), answers(&legacy_mmap_boot));
    drop((legacy_heap_boot, legacy_mmap_boot));
    std::fs::remove_dir_all(&dir).ok();
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random Zipf graphs × random queries: the mapped tier stays
        /// bit-identical to the heap tier for every algorithm, including
        /// the pruned-vs-exact cross-check on mapped bytes.
        #[test]
        fn mmap_equals_heap(
            seed in 0u64..1000,
            query_seed in 0u64..1000,
            m in 1usize..4,
            shards in prop_oneof![Just(1usize), Just(2), Just(5)],
            k in prop_oneof![Just(1usize), Just(5), Just(50)],
        ) {
            let g = wiki(&WikiConfig {
                entities: 120,
                types: 6,
                attrs_per_type: 3,
                attr_pool: 6,
                vocab: 40,
                avg_degree: 3.0,
                value_pool: 15,
                seed,
                ..WikiConfig::default()
            });
            let t = TextIndex::build(&g, SynonymTable::new());
            let mut qg = QueryGenerator::new(&g, &t, 2, query_seed);
            if let Some(spec) = qg.anchored(m) {
                let q = Query::from_ids(spec.keywords);
                check_backends(&g, &t, 2, shards, &q, k);
            }
        }
    }
}
