//! Sharded execution is **bit-identical** to single-shard execution.
//!
//! For every algorithm (baseline, `PATTERNENUM`, pruned `PATTERNENUM`,
//! `LINEARENUM`, `LINEARENUM-TOPK` exact and sampled, unified ranking,
//! individual subtrees), partitioning the index into S ∈ {2, 3, 7}
//! root-range shards must return exactly the same answers — same
//! patterns, same score **bits**, same order, same materialized rows — as
//! S = 1. Exercised on the paper's Figure-1 graph and on the Zipf-skewed
//! synthetic Wiki KB (datagen's generators drive every choice through a
//! Zipf sampler), plus a proptest sweep over random Zipf graphs, seeds,
//! and queries.

use patternkb_datagen::figure1;
use patternkb_datagen::queries::QueryGenerator;
use patternkb_datagen::wiki::{wiki, WikiConfig};
use patternkb_graph::KnowledgeGraph;
use patternkb_index::{build_indexes, BuildConfig, PathIndexes};
use patternkb_search::baseline::baseline;
use patternkb_search::bound::pattern_enum_pruned;
use patternkb_search::common::QueryContext;
use patternkb_search::individual::top_individual;
use patternkb_search::linear_enum::linear_enum;
use patternkb_search::pattern_enum::pattern_enum;
use patternkb_search::topk::{linear_enum_topk, SamplingConfig};
use patternkb_search::unified::{unified_ranking, UnifiedConfig};
use patternkb_search::{Query, SearchConfig, SearchResult};
use patternkb_text::{SynonymTable, TextIndex};

const SHARD_COUNTS: [usize; 3] = [2, 3, 7];

fn index(g: &KnowledgeGraph, t: &TextIndex, d: usize, shards: usize) -> PathIndexes {
    build_indexes(
        g,
        t,
        &BuildConfig {
            d,
            threads: 1,
            shards,
        },
    )
}

/// Assert two results are identical to the bit: patterns, order, scores,
/// tree counts, and materialized rows.
fn assert_identical(a: &SearchResult, b: &SearchResult, label: &str) {
    assert_eq!(a.patterns.len(), b.patterns.len(), "{label}: result size");
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x.key(), y.key(), "{label}: pattern identity/order");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{label}: score bits ({} vs {})",
            x.score,
            y.score
        );
        assert_eq!(x.num_trees, y.num_trees, "{label}: |trees(P)|");
        assert_eq!(x.trees.len(), y.trees.len(), "{label}: materialized rows");
        for (ta, tb) in x.trees.iter().zip(&y.trees) {
            assert_eq!(ta.root, tb.root, "{label}: row root");
            assert_eq!(ta.score.to_bits(), tb.score.to_bits(), "{label}: row score");
            assert_eq!(ta.paths.len(), tb.paths.len(), "{label}: row paths");
            for (pa, pb) in ta.paths.iter().zip(&tb.paths) {
                assert_eq!(pa.nodes, pb.nodes, "{label}: row path nodes");
                assert_eq!(pa.edge_terminal, pb.edge_terminal, "{label}: row kind");
            }
        }
    }
    assert_eq!(a.stats.subtrees, b.stats.subtrees, "{label}: subtree count");
    assert_eq!(
        a.stats.candidate_roots, b.stats.candidate_roots,
        "{label}: candidate roots"
    );
}

/// Run every algorithm at every shard count against the single-shard
/// reference for one `(graph, query)` pair.
fn check_all_algorithms(g: &KnowledgeGraph, t: &TextIndex, d: usize, q: &Query, k: usize) {
    let reference = index(g, t, d, 1);
    let cfg = SearchConfig::top(k);
    let Some(ref_ctx) = QueryContext::new(g, &reference, q) else {
        // Unanswerable in the reference ⇒ unanswerable everywhere.
        for &shards in &SHARD_COUNTS {
            let idx = index(g, t, d, shards);
            assert!(QueryContext::new(g, &idx, q).is_none());
        }
        return;
    };

    let ref_le = linear_enum(&ref_ctx, &cfg);
    let ref_pe = pattern_enum(&ref_ctx, &cfg);
    let ref_pruned = pattern_enum_pruned(&ref_ctx, &cfg);
    let ref_topk = linear_enum_topk(&ref_ctx, &cfg, &SamplingConfig::exact());
    let ref_sampled = linear_enum_topk(&ref_ctx, &cfg, &SamplingConfig::new(0, 0.5, 13));
    let ref_base = baseline(g, t, q, &cfg, d, reference.bounds());
    let ref_trees = top_individual(&ref_ctx, &cfg, k);
    let ref_unified = unified_ranking(&ref_ctx, &cfg, &UnifiedConfig { blend: 1.0, k });

    for &shards in &SHARD_COUNTS {
        let idx = index(g, t, d, shards);
        let ctx = QueryContext::new(g, &idx, q).expect("answerable stays answerable");
        let label = |algo: &str| format!("{algo} shards={shards} k={k}");

        assert_identical(&ref_le, &linear_enum(&ctx, &cfg), &label("linear_enum"));
        assert_identical(&ref_pe, &pattern_enum(&ctx, &cfg), &label("pattern_enum"));
        // Pruned: pruning nondeterminism may differ, the top-k must not.
        let pruned = pattern_enum_pruned(&ctx, &cfg);
        assert_eq!(ref_pruned.patterns.len(), pruned.patterns.len());
        for (x, y) in ref_pruned.patterns.iter().zip(&pruned.patterns) {
            assert_eq!(x.key(), y.key(), "{}", label("pattern_enum_pruned"));
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.num_trees, y.num_trees);
        }
        assert_identical(
            &ref_topk,
            &linear_enum_topk(&ctx, &cfg, &SamplingConfig::exact()),
            &label("linear_enum_topk[exact]"),
        );
        assert_identical(
            &ref_sampled,
            &linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.5, 13)),
            &label("linear_enum_topk[rho=0.5]"),
        );
        assert_identical(
            &ref_base,
            &baseline(g, t, q, &cfg, d, idx.bounds()),
            &label("baseline"),
        );

        let trees = top_individual(&ctx, &cfg, k);
        assert_eq!(ref_trees.len(), trees.len(), "{}", label("top_individual"));
        for (a, b) in ref_trees.iter().zip(&trees) {
            assert_eq!(a.tree.root, b.tree.root, "{}", label("top_individual"));
            assert_eq!(a.tree.score.to_bits(), b.tree.score.to_bits());
            assert_eq!(a.pattern_key, b.pattern_key);
        }

        let unified = unified_ranking(&ctx, &cfg, &UnifiedConfig { blend: 1.0, k });
        assert_eq!(ref_unified.len(), unified.len(), "{}", label("unified"));
        for (a, b) in ref_unified.iter().zip(&unified) {
            assert_eq!(a.is_pattern(), b.is_pattern(), "{}", label("unified"));
            assert_eq!(a.score().to_bits(), b.score().to_bits());
        }
    }
}

#[test]
fn figure1_all_algorithms_all_shard_counts() {
    let (g, _) = figure1();
    let t = TextIndex::build(&g, SynonymTable::new());
    for query in [
        "database software company revenue",
        "database company",
        "revenue",
        "bill gates",
        "software",
        "oracle gates", // unanswerable multi-keyword
    ] {
        let q = Query::parse(&t, query).unwrap();
        for k in [1, 3, 100] {
            check_all_algorithms(&g, &t, 3, &q, k);
        }
    }
}

#[test]
fn zipf_dataset_all_algorithms_all_shard_counts() {
    // The Zipf-skewed Wiki KB: skewed types, hub entities, head-heavy
    // vocabulary — the shape the ROADMAP's sharding work targets.
    let g = wiki(&WikiConfig::tiny(5));
    let t = TextIndex::build(&g, SynonymTable::new());
    let mut qg = QueryGenerator::new(&g, &t, 3, 17);
    let mut checked = 0;
    for m in [1usize, 2, 3] {
        for _ in 0..3 {
            let Some(spec) = qg.anchored(m) else { continue };
            let q = Query::from_ids(spec.keywords);
            check_all_algorithms(&g, &t, 3, &q, 10);
            checked += 1;
        }
    }
    assert!(checked >= 5, "zipf generator produced too few queries");
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random Zipf graphs × random queries × S ∈ {2, 3, 7}: sharded
        /// results stay bit-identical to S = 1 for every algorithm.
        #[test]
        fn sharded_equals_single_shard(
            seed in 0u64..1000,
            query_seed in 0u64..1000,
            m in 1usize..4,
            k in prop_oneof![Just(1usize), Just(5), Just(50)],
        ) {
            let g = wiki(&WikiConfig {
                entities: 120,
                types: 6,
                attrs_per_type: 3,
                attr_pool: 6,
                vocab: 40,
                avg_degree: 3.0,
                value_pool: 15,
                seed,
                ..WikiConfig::default()
            });
            let t = TextIndex::build(&g, SynonymTable::new());
            let mut qg = QueryGenerator::new(&g, &t, 2, query_seed);
            if let Some(spec) = qg.anchored(m) {
                let q = Query::from_ids(spec.keywords);
                check_all_algorithms(&g, &t, 2, &q, k);
            }
        }
    }
}
