//! The online write path is **equivalent to rebuilding**: chaining N
//! random `GraphDelta` batches (adds *and* removes, including removing a
//! node's last text edge) through [`SharedEngine::ingest_with`] must leave
//! an engine that answers bit-identically to a fresh build on the final
//! graph — across shard counts {1, 3}.
//!
//! This is the correctness contract behind `POST /admin/ingest`: the
//! incremental refresh may re-enumerate only the affected roots, but no
//! sequence of online mutations may ever make its answers drift from what
//! a full offline rebuild would say.

use patternkb_datagen::wiki::{wiki, WikiConfig};
use patternkb_graph::mutate::{DeltaError, GraphDelta, PagerankMode};
use patternkb_graph::{AttrId, KnowledgeGraph, NodeId, TypeId};
use patternkb_search::{
    AlgorithmChoice, EngineBuilder, Error, SearchRequest, SearchResponse, SharedEngine,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Word pool for generated node names and text values: new vocabulary
/// (exercising text-index growth) mixed with nothing graph-specific.
const WORDS: [&str; 10] = [
    "quasar", "nebula", "pulsar", "comet", "meteor", "aurora", "zenith", "parsec", "quark",
    "photon",
];

/// One planned mutation. Ids are precomputed by the generator (delta ids
/// are deterministic: base nodes, then additions in order), so the same
/// plan builds the same delta against the same base graph twice — once
/// inside `ingest_with`, once on the independently tracked graph.
#[derive(Clone, Debug)]
enum Op {
    AddNode { t: TypeId, name: String },
    AddEdge { s: NodeId, a: AttrId, t: NodeId },
    AddTextEdge { s: NodeId, a: AttrId, value: String },
    RemoveEdge { s: NodeId, a: AttrId, t: NodeId },
}

fn build_delta(g: &KnowledgeGraph, plan: &[Op]) -> GraphDelta {
    let mut d = GraphDelta::new(g);
    for op in plan {
        match op {
            Op::AddNode { t, name } => {
                d.add_node(*t, name).unwrap();
            }
            Op::AddEdge { s, a, t } => d.add_edge(*s, *a, *t).unwrap(),
            Op::AddTextEdge { s, a, value } => {
                d.add_text_edge(*s, *a, value).unwrap();
            }
            Op::RemoveEdge { s, a, t } => d.remove_edge(*s, *a, *t).unwrap(),
        }
    }
    d
}

/// Generate a batch of mutations valid against `g` (so `GraphDelta::apply`
/// cannot reject it): no duplicate additions, no double removals, and
/// every id in range. Mirrors the delta's id assignment (including
/// text-value dedup within the batch).
fn gen_plan(g: &KnowledgeGraph, rng: &mut SmallRng, max_ops: usize) -> Vec<Op> {
    let base_nodes = g.num_nodes();
    let mut next_id = base_nodes;
    let mut text_values: HashMap<String, NodeId> = HashMap::new();
    let mut added: HashSet<(NodeId, AttrId, NodeId)> = HashSet::new();
    let mut removed: HashSet<(NodeId, AttrId, NodeId)> = HashSet::new();
    let base_edges: Vec<(NodeId, AttrId, NodeId)> =
        g.edges().map(|e| (e.source, e.attr, e.target)).collect();
    // Text nodes whose single incoming edge a removal would orphan — the
    // "remove a node's last text edge" case the refresh must survive.
    let last_text_edges: Vec<(NodeId, AttrId, NodeId)> = base_edges
        .iter()
        .copied()
        .filter(|&(_, _, t)| g.is_text_node(t) && g.in_degree(t) == 1)
        .collect();

    let mut plan = Vec::new();
    let word = |rng: &mut SmallRng| WORDS[rng.gen_range(0..WORDS.len())].to_string();
    let ops = 1 + rng.gen_range(0..max_ops);
    for _ in 0..ops {
        match rng.gen_range(0..4u32) {
            0 => {
                // Skip TEXT_TYPE (type 0): plain-text nodes come from
                // add_text_edge, like the production wire format.
                if g.num_types() < 2 {
                    continue;
                }
                let t = TypeId(rng.gen_range(1..g.num_types() as u32));
                let name = format!("{} {}", word(rng), word(rng));
                plan.push(Op::AddNode { t, name });
                next_id += 1;
            }
            1 => {
                if g.num_attrs() == 0 {
                    continue;
                }
                let s = NodeId(rng.gen_range(0..next_id as u32));
                let a = AttrId(rng.gen_range(0..g.num_attrs() as u32));
                let value = format!("{} {}", word(rng), word(rng));
                let t = match text_values.get(&value) {
                    Some(&t) => t,
                    None => {
                        let t = NodeId(next_id as u32);
                        text_values.insert(value.clone(), t);
                        next_id += 1;
                        t
                    }
                };
                // A duplicate (s, a, t) is only possible when `t` came
                // from an earlier plan entry's value (a freshly minted id
                // is greater than anything in `added`), so skipping the
                // push leaves the id bookkeeping consistent.
                if added.insert((s, a, t)) {
                    plan.push(Op::AddTextEdge { s, a, value });
                }
            }
            2 => {
                if g.num_attrs() == 0 {
                    continue;
                }
                let s = NodeId(rng.gen_range(0..next_id as u32));
                let t = NodeId(rng.gen_range(0..next_id as u32));
                let a = AttrId(rng.gen_range(0..g.num_attrs() as u32));
                let survives_in_base = g.has_edge(s, a, t) && !removed.contains(&(s, a, t));
                if survives_in_base || !added.insert((s, a, t)) {
                    continue;
                }
                plan.push(Op::AddEdge { s, a, t });
            }
            _ => {
                if base_edges.is_empty() {
                    continue;
                }
                // Half the time, aim specifically at a last-text-edge.
                let pool = if !last_text_edges.is_empty() && rng.gen_bool(0.5) {
                    &last_text_edges
                } else {
                    &base_edges
                };
                let (s, a, t) = pool[rng.gen_range(0..pool.len())];
                if added.contains(&(s, a, t)) || !removed.insert((s, a, t)) {
                    continue;
                }
                plan.push(Op::RemoveEdge { s, a, t });
            }
        }
    }
    plan
}

fn small_wiki(seed: u64) -> KnowledgeGraph {
    wiki(&WikiConfig {
        entities: 60,
        types: 4,
        attrs_per_type: 3,
        attr_pool: 6,
        vocab: 30,
        avg_degree: 3.0,
        value_pool: 12,
        seed,
        ..WikiConfig::default()
    })
}

/// Distinct query tokens drawn from the final graph's node texts plus the
/// generator's word pool (covers both surviving old facts and ingested
/// new ones).
fn query_words(g: &KnowledgeGraph) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    let mut seen = HashSet::new();
    for v in g.nodes() {
        for tok in g.node_text(v).split_whitespace().take(1) {
            if seen.insert(tok.to_lowercase()) {
                words.push(tok.to_string());
            }
            if words.len() >= 6 {
                break;
            }
        }
        if words.len() >= 6 {
            break;
        }
    }
    words.extend(WORDS.iter().take(3).map(|w| w.to_string()));
    words
}

fn respond_pair(
    chained: &SharedEngine,
    fresh: &patternkb_search::SearchEngine,
    req: &SearchRequest,
    label: &str,
) {
    // Pruned execution visits combinations in an index-layout-dependent
    // order, so its *work counters* may differ between a refreshed and a
    // fresh index; the answers must not.
    let compare_work = !matches!(req.algorithm, AlgorithmChoice::PatternEnumPruned);
    let a = chained.respond(req);
    let b = fresh.respond(req);
    match (a, b) {
        (Ok(a), Ok(b)) => assert_bit_identical(&a, &b, compare_work, label),
        (Err(Error::UnknownWords(wa)), Err(Error::UnknownWords(wb))) => {
            assert_eq!(wa, wb, "{label}: unknown-word sets diverge")
        }
        (a, b) => panic!("{label}: outcome mismatch: {a:?} vs {b:?}"),
    }
}

fn assert_bit_identical(a: &SearchResponse, b: &SearchResponse, compare_work: bool, label: &str) {
    assert_eq!(a.patterns.len(), b.patterns.len(), "{label}: result size");
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x.key(), y.key(), "{label}: pattern identity/order");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{label}: score bits ({} vs {})",
            x.score,
            y.score
        );
        assert_eq!(x.num_trees, y.num_trees, "{label}: |trees(P)|");
    }
    if compare_work {
        assert_eq!(a.stats.subtrees, b.stats.subtrees, "{label}: subtrees");
    }
}

/// Chain `batches` random deltas through `ingest_with` at `shards`, then
/// compare against a fresh build on the independently tracked final graph.
fn check_chain(seed: u64, batches: usize, shards: usize) {
    let mut current = small_wiki(seed);
    let shared = EngineBuilder::new()
        .graph(small_wiki(seed))
        .threads(1)
        .shards(shards)
        .build_shared()
        .unwrap();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5DEECE66D);

    for b in 0..batches {
        let plan = gen_plan(&current, &mut rng, 6);
        if plan.is_empty() {
            continue;
        }
        let before = shared.version();
        let outcome = shared
            .ingest_with(PagerankMode::Recompute, |snap| {
                Ok::<_, DeltaError>(build_delta(snap.graph(), &plan))
            })
            .unwrap_or_else(|e| panic!("seed {seed} batch {b}: ingest failed: {e}"));
        assert_eq!(outcome.version, before + 1);
        // Track the same mutation independently of the engine.
        let delta = build_delta(&current, &plan);
        current = delta.apply(&current, PagerankMode::Recompute).unwrap();
        assert_eq!(shared.snapshot().graph().num_nodes(), current.num_nodes());
        assert_eq!(shared.snapshot().graph().num_edges(), current.num_edges());
    }

    let words = query_words(&current);
    let fresh = EngineBuilder::new()
        .graph(current)
        .threads(1)
        .shards(shards)
        .build()
        .unwrap();
    for k in [1usize, 10, 50] {
        for w in &words {
            for (algo, name) in [
                (AlgorithmChoice::PatternEnum, "pattern_enum"),
                (AlgorithmChoice::PatternEnumPruned, "pruned"),
                (AlgorithmChoice::LinearEnum, "linear_enum"),
            ] {
                let req = SearchRequest::text(w).k(k).algorithm(algo);
                respond_pair(
                    &shared,
                    &fresh,
                    &req,
                    &format!("seed {seed} shards {shards} {name} k={k} q={w:?}"),
                );
            }
        }
        // One multi-keyword query too.
        if words.len() >= 2 {
            let q = format!("{} {}", words[0], words[1]);
            let req = SearchRequest::text(&q)
                .k(k)
                .algorithm(AlgorithmChoice::PatternEnum);
            respond_pair(
                &shared,
                &fresh,
                &req,
                &format!("seed {seed} shards {shards} multi k={k}"),
            );
        }
    }
}

#[test]
fn removing_a_nodes_last_text_edge_matches_fresh_build() {
    // Deterministic version of the nastiest case: the text value node is
    // orphaned (its only incoming edge removed), its word postings must
    // vanish, and the refreshed index must agree with a rebuild.
    let (g, _) = patternkb_datagen::figure1();
    let shared = EngineBuilder::new()
        .graph(g.clone())
        .threads(1)
        .build_shared()
        .unwrap();
    // Find some text node with exactly one incoming edge.
    let (s, a, t) = g
        .edges()
        .map(|e| (e.source, e.attr, e.target))
        .find(|&(_, _, t)| g.is_text_node(t) && g.in_degree(t) == 1)
        .expect("figure1 has single-use text values");
    shared
        .ingest_with(PagerankMode::Recompute, |snap| {
            let mut d = GraphDelta::new(snap.graph());
            d.remove_edge(s, a, t)?;
            Ok::<_, DeltaError>(d)
        })
        .unwrap();

    let mut d = GraphDelta::new(&g);
    d.remove_edge(s, a, t).unwrap();
    let final_g = d.apply(&g, PagerankMode::Recompute).unwrap();
    let fresh = EngineBuilder::new()
        .graph(final_g)
        .threads(1)
        .build()
        .unwrap();
    for q in ["database software company revenue", "company", "revenue"] {
        let req = SearchRequest::text(q).k(50);
        respond_pair(&shared, &fresh, &req, &format!("last-text-edge q={q:?}"));
    }
}

/// Scratch data dir for a durable chain; removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("patternkb_recovery_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Crash recovery ≡ fresh build of the surviving prefix: chain random
/// batches through a durable engine, then simulate a crash by truncating
/// the on-disk write-ahead log at arbitrary byte positions — clean record
/// boundaries and torn mid-record cuts alike — and reboot from the data
/// dir. Whatever prefix of the acked history survives the cut, the
/// recovered engine must answer bit-identically to an engine built fresh
/// on that prefix's graph. A mid-chain checkpoint (when the history is
/// long enough) additionally exercises the checkpoint + tail boot path.
fn check_crash_recovery(seed: u64, batches: usize, shards: usize) {
    use patternkb_search::FsyncPolicy;

    let scratch = ScratchDir::new(&format!("s{seed}_sh{shards}"));
    let dir = &scratch.0;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    // checkpoint_after = version to checkpoint at (0 = never).
    let checkpoint_after = if batches >= 2 {
        rng.gen_range(0..batches as u64)
    } else {
        0
    };

    // graphs[v] = the graph at engine version v, tracked independently.
    let mut graphs = vec![small_wiki(seed)];
    let mut cp_version = 0u64;
    {
        let shared = EngineBuilder::new()
            .graph(small_wiki(seed))
            .threads(1)
            .shards(shards)
            .data_dir(dir)
            .fsync(FsyncPolicy::Always)
            .build_shared()
            .unwrap();
        for b in 0..batches {
            let plan = gen_plan(graphs.last().unwrap(), &mut rng, 5);
            if !plan.is_empty() {
                shared
                    .ingest_with(PagerankMode::Recompute, |snap| {
                        Ok::<_, DeltaError>(build_delta(snap.graph(), &plan))
                    })
                    .unwrap_or_else(|e| panic!("seed {seed} batch {b}: ingest failed: {e}"));
                let delta = build_delta(graphs.last().unwrap(), &plan);
                graphs.push(
                    delta
                        .apply(graphs.last().unwrap(), PagerankMode::Recompute)
                        .unwrap(),
                );
            }
            if shared.version() == checkpoint_after && shared.version() > 0 && cp_version == 0 {
                let d = shared.durability().expect("durable boot");
                d.checkpoint_now(&shared.snapshot()).unwrap();
                cp_version = shared.version();
            }
        }
        assert_eq!(shared.version() as usize, graphs.len() - 1);
    } // drop: joins the flusher + checkpointer, final sync

    let wal_path = dir.join("wal.log");
    let pristine = std::fs::read(&wal_path).unwrap();
    let full = patternkb_wal::replay(&wal_path).unwrap();

    // Cut points: every clean record boundary (including the bare header
    // and the full file) plus a torn cut inside every record.
    let mut cuts: Vec<usize> = full.records.iter().map(|r| r.offset as usize).collect();
    cuts.push(full.valid_len as usize);
    for r in &full.records {
        let start = r.offset as usize;
        let end = start + 16 + r.payload.len();
        cuts.push(rng.gen_range(start + 1..end));
    }
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        std::fs::write(&wal_path, &pristine[..cut]).unwrap();
        let surviving = patternkb_wal::replay(&wal_path).unwrap();
        let expected = surviving
            .records
            .last()
            .map(|r| r.version)
            .unwrap_or(cp_version)
            .max(cp_version);

        let recovered = EngineBuilder::new()
            .graph(small_wiki(seed))
            .threads(1)
            .shards(shards)
            .data_dir(dir)
            .build_shared()
            .unwrap();
        assert_eq!(
            recovered.version(),
            expected,
            "seed {seed} shards {shards} cut {cut}: wrong recovered version"
        );

        let prefix_graph = graphs[expected as usize].clone();
        let words = query_words(&prefix_graph);
        let fresh = EngineBuilder::new()
            .graph(prefix_graph)
            .threads(1)
            .shards(shards)
            .build()
            .unwrap();
        for w in words.iter().take(4) {
            for algo in [
                AlgorithmChoice::PatternEnum,
                AlgorithmChoice::PatternEnumPruned,
            ] {
                let req = SearchRequest::text(w).k(10).algorithm(algo);
                respond_pair(
                    &recovered,
                    &fresh,
                    &req,
                    &format!("seed {seed} shards {shards} cut {cut} q={w:?}"),
                );
            }
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// N chained random batches ≡ fresh build, at 1 and 3 shards.
        #[test]
        fn chained_ingests_match_fresh_build(
            seed in 0u64..500,
            batches in 1usize..4,
        ) {
            for shards in [1usize, 3] {
                check_chain(seed, batches, shards);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Reboot after a crash (log truncated anywhere) ≡ fresh build of
        /// the surviving prefix, at 1 and 3 shards.
        #[test]
        fn crash_recovery_matches_fresh_build_of_surviving_prefix(
            seed in 0u64..500,
            batches in 1usize..4,
        ) {
            for shards in [1usize, 3] {
                check_crash_recovery(seed, batches, shards);
            }
        }
    }
}
