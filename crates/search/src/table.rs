//! Table-answer composition (§2.2.2, "Convert tree patterns into table
//! answers" and Figure 3).
//!
//! Each subtree of a pattern becomes one row. Columns come from the
//! per-keyword path patterns: one column per node position plus a value
//! column for edge matches. Per the paper, columns reached through the same
//! edge signature are created **once** even when shared by several
//! keywords' paths; column identity is the *pattern prefix* (the paper's
//! column name `τ(v1)α(e1)…`). In the rare case where two keyword paths of
//! one subtree share a pattern prefix but diverge in actual nodes, the cell
//! shows all distinct values joined by `" / "` (the paper leaves this case
//! unspecified; see DESIGN.md §2).

use crate::result::RankedPattern;
use patternkb_graph::{AttrId, KnowledgeGraph, NodeId, TypeId};

/// Provenance of one table column — which pattern position created it.
/// Drives the friendly renaming/reordering in [`crate::presentation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Nodes between the root and this column (0 = the root column).
    pub depth: usize,
    /// Whether this is the *value* column of an edge-terminal match (the
    /// paper's "Revenue" cell in Figure 3).
    pub is_value: bool,
    /// The attribute traversed into this column (`None` for the root).
    pub attr: Option<AttrId>,
    /// The entity type shown in the column (`None` for value columns,
    /// whose pattern deliberately omits the leaf type).
    pub node_type: Option<TypeId>,
    /// Index of the keyword whose path first created the column.
    pub first_keyword: usize,
}

/// A rendered table answer: column headers plus one row per subtree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableAnswer {
    /// Column headers, root first, then in keyword/depth order of first
    /// appearance.
    pub columns: Vec<String>,
    /// One row per materialized subtree, cells aligned with `columns`.
    pub rows: Vec<Vec<String>>,
    /// Per-column provenance, aligned with `columns`.
    pub meta: Vec<ColumnMeta>,
}

impl TableAnswer {
    /// Compose the table for a ranked pattern.
    pub fn from_pattern(g: &KnowledgeGraph, p: &RankedPattern) -> Self {
        // --- column layout from the pattern ---
        let mut col_keys: Vec<Vec<u32>> = Vec::new();
        let mut columns: Vec<String> = Vec::new();
        let mut meta: Vec<ColumnMeta> = Vec::new();
        // slots[i][j] = column index of keyword i's j-th value (node
        // positions, then the leaf for edge-terminal patterns).
        let mut slots: Vec<Vec<usize>> = Vec::with_capacity(p.pattern.len());

        for (kw, pat) in p.pattern.iter().enumerate() {
            let l = pat.types.len();
            let mut my_slots = Vec::with_capacity(l + 1);
            let mut prefix: Vec<u32> = Vec::with_capacity(2 * l + 1);
            for j in 0..l {
                prefix.push(pat.types[j].0);
                let col = find_or_insert(
                    &mut col_keys,
                    &prefix,
                    || {
                        (
                            if j == 0 {
                                root_name(g, pat.types[0])
                            } else {
                                node_name(g, pat.attrs[j - 1], pat.types[j])
                            },
                            ColumnMeta {
                                depth: j,
                                is_value: false,
                                attr: (j > 0).then(|| pat.attrs[j - 1]),
                                node_type: Some(pat.types[j]),
                                first_keyword: kw,
                            },
                        )
                    },
                    &mut columns,
                    &mut meta,
                );
                my_slots.push(col);
                if j + 1 < l {
                    prefix.push(pat.attrs[j].0);
                }
            }
            if pat.edge_terminal {
                prefix.push(pat.attrs[l - 1].0);
                let col = find_or_insert(
                    &mut col_keys,
                    &prefix,
                    || {
                        (
                            g.attr_text(pat.attrs[l - 1]).to_string(),
                            ColumnMeta {
                                depth: l,
                                is_value: true,
                                attr: Some(pat.attrs[l - 1]),
                                node_type: None,
                                first_keyword: kw,
                            },
                        )
                    },
                    &mut columns,
                    &mut meta,
                );
                my_slots.push(col);
            }
            slots.push(my_slots);
        }

        // --- rows from the materialized subtrees ---
        let mut rows = Vec::with_capacity(p.trees.len());
        for tree in &p.trees {
            let mut row: Vec<String> = vec![String::new(); columns.len()];
            for (i, path) in tree.paths.iter().enumerate() {
                for (j, &node) in path.nodes.iter().enumerate() {
                    let col = slots[i][j];
                    push_cell(&mut row[col], g, node);
                }
            }
            rows.push(row);
        }

        TableAnswer {
            columns,
            rows,
            meta,
        }
    }

    /// A copy keeping only the first `n` rows (for previews; scores and
    /// columns are unaffected).
    pub fn truncate_rows(&self, n: usize) -> TableAnswer {
        TableAnswer {
            columns: self.columns.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
            meta: self.meta.clone(),
        }
    }

    /// Render as a fixed-width ASCII table (for the examples and the case
    /// study of Figures 14–15).
    pub fn render(&self) -> String {
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let render_row = |cells: &[String]| {
            let mut s = String::from("|");
            for c in 0..ncols {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(widths[c] - cell.len() + 1));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&render_row(&self.columns));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

fn find_or_insert(
    keys: &mut Vec<Vec<u32>>,
    prefix: &[u32],
    make: impl FnOnce() -> (String, ColumnMeta),
    columns: &mut Vec<String>,
    meta: &mut Vec<ColumnMeta>,
) -> usize {
    if let Some(i) = keys.iter().position(|k| k == prefix) {
        return i;
    }
    keys.push(prefix.to_vec());
    let (name, m) = make();
    columns.push(name);
    meta.push(m);
    keys.len() - 1
}

fn root_name(g: &KnowledgeGraph, t: patternkb_graph::TypeId) -> String {
    if t == KnowledgeGraph::TEXT_TYPE {
        "*".to_string()
    } else {
        g.type_text(t).to_string()
    }
}

fn node_name(g: &KnowledgeGraph, a: patternkb_graph::AttrId, t: patternkb_graph::TypeId) -> String {
    if t == KnowledgeGraph::TEXT_TYPE {
        g.attr_text(a).to_string()
    } else {
        format!("{} ({})", g.attr_text(a), g.type_text(t))
    }
}

fn push_cell(cell: &mut String, g: &KnowledgeGraph, node: NodeId) {
    let text = g.node_text(node);
    if cell.is_empty() {
        cell.push_str(text);
    } else if cell != text && !cell.split(" / ").any(|part| part == text) {
        cell.push_str(" / ");
        cell.push_str(text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::QueryContext;
    use crate::linear_enum::linear_enum;
    use crate::{Query, SearchConfig};
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn top_pattern_table() -> (TableAnswer, patternkb_graph::KnowledgeGraph) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let r = linear_enum(&ctx, &SearchConfig::top(10));
        let table = TableAnswer::from_pattern(&g, r.top().unwrap());
        (table, g)
    }

    #[test]
    fn figure3_shape() {
        // The paper's Figure 3: columns Software / Genre→Model / Developer→
        // Company / Revenue; rows SQL Server and Oracle DB.
        let (table, _) = top_pattern_table();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns.len(), 4, "{:?}", table.columns);
        assert!(table.columns[0].contains("Software"));
        assert!(table.columns.iter().any(|c| c.contains("Genre")));
        assert!(table.columns.iter().any(|c| c.contains("Company")));
        assert!(table.columns.iter().any(|c| c == "Revenue"));
    }

    #[test]
    fn figure3_values() {
        let (table, _) = top_pattern_table();
        let flat: Vec<String> = table.rows.iter().flatten().cloned().collect();
        assert!(flat.iter().any(|c| c == "SQL Server"));
        assert!(flat.iter().any(|c| c == "Oracle DB"));
        assert!(flat.iter().any(|c| c == "Relational database"));
        assert!(flat.iter().any(|c| c == "US$ 77 billion"));
        assert!(flat.iter().any(|c| c == "US$ 37 billion"));
    }

    #[test]
    fn shared_root_column_is_deduped() {
        // All four keyword paths start at the Software root; the root
        // column must appear exactly once.
        let (table, _) = top_pattern_table();
        let roots = table.columns.iter().filter(|c| *c == "Software").count();
        assert_eq!(roots, 1);
    }

    #[test]
    fn render_is_aligned() {
        let (table, _) = top_pattern_table();
        let shown = table.render();
        let lines: Vec<&str> = shown.lines().collect();
        assert!(lines.len() >= 5);
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "all lines same width");
        assert!(shown.contains("SQL Server"));
    }

    #[test]
    fn divergent_values_under_one_column_are_joined() {
        // Two keywords matched through the *same* pattern prefix but
        // different actual nodes: root -A-> "left leaf" and root -A-> "right
        // leaf", both of type T. The merged column shows both values.
        let mut b = patternkb_graph::GraphBuilder::new();
        let root_t = b.add_type("Root");
        let leaf_t = b.add_type("Leaf");
        let a = b.add_attr("Link");
        let r = b.add_node(root_t, "origin");
        let x = b.add_node(leaf_t, "left leaf");
        let y = b.add_node(leaf_t, "right leaf");
        b.add_edge(r, a, x);
        b.add_edge(r, a, y);
        let g = b.build();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 2,
                threads: 1,
                shards: 1,
            },
        );
        let q = Query::parse(&t, "left right").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let res = linear_enum(&ctx, &SearchConfig::top(10));
        let p = res
            .patterns
            .iter()
            .find(|p| p.num_trees == 1 && p.pattern.iter().all(|pp| pp.num_nodes() == 2))
            .expect("the (Root)(Link)(Leaf)² pattern exists");
        let table = TableAnswer::from_pattern(&g, p);
        // Root column + one merged Leaf column.
        assert_eq!(table.columns.len(), 2, "{:?}", table.columns);
        let cell = &table.rows[0][1];
        assert!(
            cell == "left leaf / right leaf" || cell == "right leaf / left leaf",
            "divergent values joined, got {cell:?}"
        );
    }

    #[test]
    fn empty_pattern_renders() {
        let p = RankedPattern {
            pattern: vec![],
            score: 0.0,
            num_trees: 0,
            trees: vec![],
        };
        let (g, _) = figure1();
        let table = TableAnswer::from_pattern(&g, &p);
        assert!(table.columns.is_empty());
        assert!(table.rows.is_empty());
        let _ = table.render();
    }
}
