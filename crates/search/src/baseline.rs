//! The enumeration–aggregation baseline of §2.3, shard-parallel.
//!
//! A straightforward adaptation of backward search over the database graph
//! (BANKS \[10\] and successors): **no path index** is used. Per keyword,
//! backward BFS over reverse edges marks every node that can reach a
//! matched element within the height bound; the masks' intersection gives
//! candidate roots; forward bounded DFS from each root enumerates the
//! per-keyword match paths; the path product enumerates valid subtrees,
//! which are grouped into one **global** pattern dictionary — the group-by
//! that the paper identifies as this approach's bottleneck.
//!
//! The baseline takes the engine's shard bounds so its candidate roots
//! partition into the same contiguous ranges as the index-based
//! algorithms: one worker per range (via [`crate::common::run_parallel`]),
//! each with a private pattern interner and dictionary, merged (with
//! pattern-id re-interning) at the end.

use crate::common::{run_parallel, TreeDict};
use crate::result::{HotPathStats, QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::subtree::{node_slices_form_tree, TreePath, ValidSubtree};
use crate::{Query, SearchConfig};
use patternkb_graph::ids::Id;
use patternkb_graph::{traversal, KnowledgeGraph, NodeId};
use patternkb_index::{PathPattern, PatternSet};
use patternkb_text::TextIndex;
use std::time::Instant;

/// One enumerated root-to-match path (the baseline's in-memory analogue of
/// an index posting).
struct BasePath {
    pattern: u32,
    nodes: Vec<NodeId>,
    edge_terminal: bool,
    len: f64,
    pagerank: f64,
    sim: f64,
}

/// One worker's private enumeration state and output.
struct BaselineWorker {
    patset: PatternSet,
    /// Tree-pattern key (worker-local pattern ids) → group, interned.
    dict: TreeDict,
    subtrees: usize,
    candidates: usize,
}

/// Run the baseline for `query` with height threshold `d`, parallelizing
/// over the candidate-root ranges described by `bounds` (the engine passes
/// its index's shard bounds; `&[0, u32::MAX]` runs one worker).
pub fn baseline(
    g: &KnowledgeGraph,
    text: &TextIndex,
    query: &Query,
    cfg: &SearchConfig,
    d: usize,
    bounds: &[u32],
) -> SearchResult {
    let t0 = Instant::now();
    let m = query.keywords.len();
    assert!(m > 0, "empty query");
    assert!(bounds.len() >= 2, "bounds must describe at least one range");

    // --- backward search: per-keyword reachability masks ---
    let mut combined: Option<Vec<bool>> = None;
    for &w in &query.keywords {
        let node_matches = text.nodes_matching(w).iter().copied();
        let mut mask = traversal::backward_reach_mask(g, node_matches, d);
        if d >= 2 {
            // Edge matches: the root must reach the edge's *source* within
            // d − 1 nodes (the implied leaf consumes the last level).
            let sources = text
                .attrs_matching(w)
                .iter()
                .flat_map(|&a| text.attr_sources(a).iter().copied());
            let edge_mask = traversal::backward_reach_mask(g, sources, d - 1);
            for (m0, e) in mask.iter_mut().zip(edge_mask) {
                *m0 |= e;
            }
        }
        combined = Some(match combined {
            None => mask,
            Some(mut acc) => {
                for (a, b) in acc.iter_mut().zip(mask) {
                    *a &= b;
                }
                acc
            }
        });
    }
    let mask = combined.expect("at least one keyword");
    let candidates: Vec<NodeId> = g.nodes().filter(|v| mask[v.index()]).collect();

    // --- forward enumeration + aggregation, one worker per root range ---
    let num_ranges = bounds.len() - 1;
    let ranges: Vec<&[NodeId]> = (0..num_ranges)
        .map(|s| {
            let lo = candidates.partition_point(|r| r.0 < bounds[s]);
            let hi = if bounds[s + 1] == u32::MAX {
                candidates.len()
            } else {
                candidates.partition_point(|r| r.0 < bounds[s + 1])
            };
            &candidates[lo..hi]
        })
        .collect();
    let workers: Vec<BaselineWorker> = run_parallel(&ranges, |range| {
        baseline_range(g, text, query, cfg, d, range)
    });

    // --- merge: re-intern worker-local pattern ids globally, fold the
    //     per-worker groups in range order (ascending roots). ---
    let mut patset = PatternSet::new();
    let mut dict = TreeDict::new(m);
    let mut subtrees = 0usize;
    let mut per_shard = Vec::with_capacity(workers.len());
    for (s, worker) in workers.into_iter().enumerate() {
        per_shard.push(ShardStats {
            shard: s,
            candidate_roots: worker.candidates,
            subtrees: worker.subtrees,
            patterns: worker.dict.len(),
        });
        subtrees += worker.subtrees;
        let remap: Vec<u32> = (0..worker.patset.len())
            .map(|i| {
                patset
                    .intern_key(worker.patset.key(patternkb_index::PatternId(i as u32)))
                    .0
            })
            .collect();
        let mut gkey: Vec<u32> = Vec::with_capacity(m);
        worker.dict.drain_live(|key, group| {
            gkey.clear();
            gkey.extend(key.iter().map(|&p| remap[p as usize]));
            dict.fold(&gkey, group, cfg.max_rows);
        });
    }

    let patterns_found = dict.len();
    let hot = HotPathStats {
        keys_interned: dict.keys_interned() as u64,
        key_arena_bytes: dict.arena_bytes() as u64,
        ..Default::default()
    };
    let mut patterns: Vec<RankedPattern> = Vec::with_capacity(patterns_found);
    dict.drain_live(|key, group| {
        patterns.push(RankedPattern {
            pattern: key
                .iter()
                .map(|&p| patset.decode(patternkb_index::PatternId(p)))
                .collect::<Vec<PathPattern>>(),
            score: group.acc.finish(cfg.scoring.aggregation),
            num_trees: group.acc.count as usize,
            trees: group.trees,
        });
    });

    SearchResult {
        patterns,
        stats: QueryStats {
            candidate_roots: candidates.len(),
            subtrees,
            patterns: patterns_found,
            combos_tried: patterns_found,
            combos_pruned: 0,
            per_shard,
            hot,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

/// Enumerate one contiguous candidate-root range with a worker-local
/// pattern interner and dictionary.
fn baseline_range(
    g: &KnowledgeGraph,
    text: &TextIndex,
    query: &Query,
    cfg: &SearchConfig,
    d: usize,
    candidates: &[NodeId],
) -> BaselineWorker {
    let m = query.keywords.len();
    let mut patset = PatternSet::new();
    let mut dict = TreeDict::new(m);
    let mut subtrees = 0usize;
    let mut key_buf: Vec<u32> = Vec::new();
    let mut per_kw: Vec<Vec<BasePath>> = (0..m).map(|_| Vec::new()).collect();

    for &r in candidates {
        for list in &mut per_kw {
            list.clear();
        }
        traversal::for_each_path(g, r, d, |nodes, attrs| {
            let l = nodes.len();
            let t = *nodes.last().expect("non-empty");
            let t_type = g.node_type(t);
            // Node-terminal matches.
            for (i, &w) in query.keywords.iter().enumerate() {
                if text.node_matches(w, t, t_type) {
                    key_buf.clear();
                    key_buf.push((l as u32) << 1);
                    for j in 0..l {
                        key_buf.push(g.node_type(nodes[j]).as_u32());
                        if j < attrs.len() {
                            key_buf.push(attrs[j].as_u32());
                        }
                    }
                    per_kw[i].push(BasePath {
                        pattern: patset.intern_key(&key_buf).0,
                        nodes: nodes.to_vec(),
                        edge_terminal: false,
                        len: l as f64,
                        pagerank: g.pagerank(t),
                        sim: text.sim_node(w, t, t_type),
                    });
                }
            }
            // Edge-terminal matches.
            if l < d {
                for (attr, target) in g.out_edges(t) {
                    if nodes.contains(&target) {
                        continue;
                    }
                    for (i, &w) in query.keywords.iter().enumerate() {
                        if text.attr_matches(w, attr) {
                            key_buf.clear();
                            key_buf.push(((l as u32) << 1) | 1);
                            for j in 0..l {
                                key_buf.push(g.node_type(nodes[j]).as_u32());
                                if j < attrs.len() {
                                    key_buf.push(attrs[j].as_u32());
                                }
                            }
                            key_buf.push(attr.as_u32());
                            let mut path_nodes = Vec::with_capacity(l + 1);
                            path_nodes.extend_from_slice(nodes);
                            path_nodes.push(target);
                            per_kw[i].push(BasePath {
                                pattern: patset.intern_key(&key_buf).0,
                                nodes: path_nodes,
                                edge_terminal: true,
                                len: (l + 1) as f64,
                                pagerank: g.pagerank(t),
                                sim: text.sim_attr(w, attr),
                            });
                        }
                    }
                }
            }
        });
        if per_kw.iter().any(Vec::is_empty) {
            continue; // mask over-approximation (rare; see module docs)
        }

        // Path product across keywords.
        let mut idx = vec![0usize; m];
        let mut tree_key: Vec<u32> = vec![0; m];
        loop {
            let chosen: Vec<&BasePath> = (0..m).map(|i| &per_kw[i][idx[i]]).collect();
            let valid = if cfg.strict_trees {
                let slices: Vec<&[NodeId]> = chosen.iter().map(|p| p.nodes.as_slice()).collect();
                node_slices_form_tree(r, &slices)
            } else {
                true
            };
            if valid {
                subtrees += 1;
                for i in 0..m {
                    tree_key[i] = chosen[i].pattern;
                }
                let mut len = 0.0;
                let mut pr = 0.0;
                let mut sim = 0.0;
                for p in &chosen {
                    len += p.len;
                    pr += p.pagerank;
                    sim += p.sim;
                }
                let score = cfg.scoring.tree_score(len, pr, sim);
                let group = dict.group_mut(&tree_key);
                group.acc.push(score);
                if group.trees.len() < cfg.max_rows {
                    group.trees.push(ValidSubtree {
                        root: r,
                        paths: chosen
                            .iter()
                            .map(|p| TreePath {
                                nodes: p.nodes.clone(),
                                edge_terminal: p.edge_terminal,
                            })
                            .collect(),
                        score,
                    });
                }
            }
            // Odometer.
            let mut pos = m;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < per_kw[pos].len() {
                    break;
                }
                idx[pos] = 0;
            }
            if done {
                break;
            }
        }
    }

    BaselineWorker {
        patset,
        dict,
        subtrees,
        candidates: candidates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::QueryContext;
    use crate::linear_enum::linear_enum;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::SynonymTable;

    fn setup() -> (KnowledgeGraph, TextIndex, patternkb_index::PathIndexes) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn agrees_with_linear_enum_on_figure1() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "revenue",
            "database company",
            "software developer",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let cfg = SearchConfig::top(100);
            let bl = baseline(&g, &t, &q, &cfg, 3, &[0, u32::MAX]);
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            let le = linear_enum(&ctx, &cfg);
            assert_eq!(bl.patterns.len(), le.patterns.len(), "query {query}");
            for (a, b) in bl.patterns.iter().zip(&le.patterns) {
                assert_eq!(a.key(), b.key(), "query {query}");
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "query {query}: {} vs {}",
                    a.score,
                    b.score
                );
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }

    #[test]
    fn candidate_roots_match_index_based() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let cfg = SearchConfig::top(100);
        let bl = baseline(&g, &t, &q, &cfg, 3, &[0, u32::MAX]);
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        assert_eq!(bl.stats.candidate_roots, ctx.candidate_roots().len());
    }

    #[test]
    fn respects_d() {
        let (g, t, _) = setup();
        let q = Query::parse(&t, "software revenue").unwrap();
        let cfg = SearchConfig::top(100);
        let d2 = baseline(&g, &t, &q, &cfg, 2, &[0, u32::MAX]);
        let d3 = baseline(&g, &t, &q, &cfg, 3, &[0, u32::MAX]);
        // With d = 2 the only root reaching both a Software match (type) and
        // a Revenue edge within the bounds is... nothing: software matches
        // SQL Server/Oracle DB, whose revenue edges sit 3 levels deep.
        assert!(d2.patterns.len() < d3.patterns.len());
        for p in &d2.patterns {
            assert!(p.height() <= 2);
        }
    }
}
