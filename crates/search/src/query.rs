//! Keyword queries.
//!
//! A query is a set of canonical word ids `q = {w1, …, wm}` (§2.2). Parsing
//! runs raw user text through the same tokenize→stem→synonym pipeline as
//! indexing, so "Mel Gibson movies" and "movie mel gibson" are the same
//! query.

use patternkb_graph::WordId;
use patternkb_text::TextIndex;

/// A parsed keyword query (distinct canonical words, in first-seen order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Canonical keyword ids.
    pub keywords: Vec<WordId>,
}

/// Why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The input contained no tokens at all.
    Empty,
    /// Some tokens never occur in the knowledge base (canonical forms
    /// listed); such a keyword can match nothing, so the query would have
    /// zero answers.
    UnknownWords(Vec<String>),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty query"),
            ParseError::UnknownWords(ws) => {
                write!(
                    f,
                    "keywords not found in the knowledge base: {}",
                    ws.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl Query {
    /// Build from pre-canonicalized ids (deduplicated, order preserved).
    pub fn from_ids(ids: impl IntoIterator<Item = WordId>) -> Self {
        let mut keywords = Vec::new();
        for id in ids {
            if !keywords.contains(&id) {
                keywords.push(id);
            }
        }
        Query { keywords }
    }

    /// Parse raw text against a knowledge base's text index.
    pub fn parse(text: &TextIndex, input: &str) -> Result<Self, ParseError> {
        let mut keywords = Vec::new();
        let mut unknown = Vec::new();
        let mut any = false;
        patternkb_text::tokenize::for_each_token(input, |tok| {
            any = true;
            match text.lookup_word(tok) {
                Some(w) => {
                    if !keywords.contains(&w) {
                        keywords.push(w);
                    }
                }
                None => {
                    let canon = text.vocab().canonical_form(tok);
                    if !unknown.contains(&canon) {
                        unknown.push(canon);
                    }
                }
            }
        });
        if !any {
            return Err(ParseError::Empty);
        }
        if !unknown.is_empty() {
            return Err(ParseError::UnknownWords(unknown));
        }
        Ok(Query { keywords })
    }

    /// Number of keywords `m`.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Whether the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternkb_graph::GraphBuilder;
    use patternkb_text::SynonymTable;

    fn text_index() -> TextIndex {
        let mut b = GraphBuilder::new();
        b.skip_pagerank();
        let t = b.add_type("Software");
        let a = b.add_attr("Revenue");
        let v = b.add_node(t, "SQL Server database");
        b.add_text_edge(v, a, "lots");
        TextIndex::build(&b.build(), SynonymTable::new())
    }

    #[test]
    fn parse_happy_path() {
        let t = text_index();
        let q = Query::parse(&t, "database software").unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn parse_dedups_variants() {
        let t = text_index();
        let q = Query::parse(&t, "database databases DATABASE").unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn parse_rejects_unknown() {
        let t = text_index();
        match Query::parse(&t, "database zebra") {
            Err(ParseError::UnknownWords(ws)) => assert_eq!(ws, vec!["zebra".to_string()]),
            other => panic!("expected UnknownWords, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_empty() {
        let t = text_index();
        assert_eq!(Query::parse(&t, "  ...  "), Err(ParseError::Empty));
        let err = format!("{}", Query::parse(&t, "").unwrap_err());
        assert!(err.contains("empty"));
    }

    #[test]
    fn from_ids_dedups() {
        let q = Query::from_ids([WordId(3), WordId(1), WordId(3)]);
        assert_eq!(q.keywords, vec![WordId(3), WordId(1)]);
    }
}
