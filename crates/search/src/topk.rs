//! `LINEARENUM-TOPK` — Algorithm 4: type partitioning (§4.2.1) plus
//! root sampling (§4.2.2) — shard-parallel.
//!
//! Candidate roots are processed one root **type** at a time, bounding the
//! `TreeDict` to a single partition. Per type `C`:
//!
//! 1. the number of valid subtrees rooted in the partition is computed
//!    *without enumeration* as `N_R = Σ_r Πᵢ |Paths(wᵢ, r)|` (line 4);
//! 2. if `N_R ≥ Λ`, each root is expanded only with probability `ρ`
//!    (lines 5–8) and pattern scores are estimated from the sample
//!    (Horvitz–Thompson for `Sum`/`Count`);
//! 3. only the partition's estimated top-k patterns get their exact scores
//!    and subtrees recomputed (line 11) before entering the global queue.
//!
//! With `Λ = ∞` or `ρ = 1` the result is the exact top-k (Theorem 4); with
//! sampling, the pairwise error probability decays as
//! `exp(−2·((s1−s2)/(s1+s2))²·ρ²)` (Theorem 5).
//!
//! ## Sharded execution
//!
//! The pipeline splits into two shard-parallel phases with a barrier at
//! the sampling decision (the `N_R ≥ Λ` test needs the **global** count
//! per type, not a per-shard one): phase A computes each shard's per-type
//! candidate roots and `N_R` contribution; phase B expands each shard's
//! (sampled) roots into per-type dictionaries; the per-type merge, the
//! estimated-top-k selection, and the exact re-scoring then run over the
//! merged state exactly as a single-shard pass would. Root selection is
//! **hash-based per root** (not a sequential RNG), so the sampled set is a
//! pure function of `(seed, root)` — independent of iteration order and of
//! the shard count, which keeps sampled runs bit-identical across shard
//! layouts too.

use crate::common::{
    expand_root, for_each_path_tuple, materialize_tree, merge_shard_dicts, run_sharded,
    QueryContext, TreeDict,
};
use crate::result::{QueryStats, RankedPattern, SearchResult, ShardStats};
use crate::score::ScoreAcc;
use crate::subtree::node_slices_form_tree;
use crate::SearchConfig;
use patternkb_graph::{FxHashMap, NodeId, TypeId};
use patternkb_index::{PatternId, Posting};
use std::collections::BTreeMap;
use std::time::Instant;

/// Sampling parameters (`Λ`, `ρ`) of Algorithm 4.
#[derive(Clone, Copy, Debug)]
pub struct SamplingConfig {
    /// Sampling threshold `Λ`: partitions with at least this many valid
    /// subtrees are sampled. `u64::MAX` disables sampling entirely.
    pub lambda: u64,
    /// Sampling rate `ρ ∈ (0, 1]`.
    pub rho: f64,
    /// Seed for the per-root Bernoulli selection hash.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            lambda: u64::MAX,
            rho: 1.0,
            seed: 42,
        }
    }
}

impl SamplingConfig {
    /// No sampling: exact top-k (`Λ = ∞, ρ = 1`).
    pub fn exact() -> Self {
        Self::default()
    }

    /// Sample at threshold `lambda` with rate `rho`.
    pub fn new(lambda: u64, rho: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rho) && rho > 0.0,
            "rho must be in (0,1]"
        );
        SamplingConfig { lambda, rho, seed }
    }
}

/// SplitMix64 finalizer — a strong 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The per-root Bernoulli draw: include `root` iff
/// `hash(seed, root) / 2⁶⁴ < rho`. Deterministic per `(seed, root)`, so
/// the sampled set does not depend on iteration order or sharding.
#[inline]
pub(crate) fn root_sampled(seed: u64, root: NodeId, rho: f64) -> bool {
    let u = mix64(seed ^ (root.0 as u64).wrapping_mul(0xd1b54a32d192ed03));
    // Top 53 bits → uniform in [0, 1).
    ((u >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rho
}

/// Phase-A output of one shard: per root type, the shard's candidate
/// roots (ascending) and its `N_R` contribution. `partitions[i]` always
/// describes `ctx.shards[i]` — [`run_sharded`] returns results in input
/// order.
struct ShardPartition {
    by_type: FxHashMap<TypeId, (Vec<NodeId>, u64)>,
}

/// Run `LINEARENUM-TOPK`.
pub fn linear_enum_topk(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    samp: &SamplingConfig,
) -> SearchResult {
    let t0 = Instant::now();

    // --- Phase A (shard-parallel): partition candidate roots by type and
    //     count N_R per (shard, type) without enumeration (line 4). ---
    let partitions: Vec<ShardPartition> = run_sharded(&ctx.shards, |shard| {
        let mut by_type: FxHashMap<TypeId, (Vec<NodeId>, u64)> = FxHashMap::default();
        for &r in shard.candidate_roots() {
            let mut prod: u64 = 1;
            for w in &shard.words {
                prod = prod.saturating_mul(w.num_paths_of_root(r) as u64);
            }
            let entry = by_type.entry(shard.g.node_type(r)).or_default();
            entry.0.push(r);
            entry.1 = entry.1.saturating_add(prod);
        }
        by_type
    })
    .into_iter()
    .map(|by_type| ShardPartition { by_type })
    .collect();

    // Global sampling decision per type (line 5) — the barrier.
    let mut n_r_global: BTreeMap<TypeId, u64> = BTreeMap::new();
    for part in &partitions {
        for (&c, &(_, n_r)) in &part.by_type {
            let total = n_r_global.entry(c).or_default();
            *total = total.saturating_add(n_r);
        }
    }
    let rates: FxHashMap<TypeId, f64> = n_r_global
        .iter()
        .map(|(&c, &n_r)| (c, if n_r >= samp.lambda { samp.rho } else { 1.0 }))
        .collect();

    // --- Phase B (shard-parallel): expand each shard's (sampled) roots
    //     into per-type dictionaries (lines 6–8). ---
    let pairs: Vec<(&crate::common::ShardContext<'_>, &ShardPartition)> =
        ctx.shards.iter().zip(&partitions).collect();
    let expansions: Vec<(FxHashMap<TypeId, TreeDict>, usize)> =
        crate::common::run_parallel(&pairs, |&(shard, part)| {
            let mut dicts: FxHashMap<TypeId, TreeDict> = FxHashMap::default();
            let mut subtrees = 0usize;
            for (&c, (roots, _)) in &part.by_type {
                let rate = rates[&c];
                let dict = dicts.entry(c).or_insert_with(|| TreeDict::new(shard.m()));
                for &r in roots {
                    if rate >= 1.0 || root_sampled(samp.seed, r, rate) {
                        subtrees += expand_root(shard, cfg, r, dict);
                    }
                }
            }
            (dicts, subtrees)
        });

    // --- Per-type merge + estimated selection + exact re-scoring, in
    //     type-id order for determinism (lines 9–11). ---
    let mut per_shard: Vec<ShardStats> = ctx
        .shards
        .iter()
        .zip(&expansions)
        .zip(&partitions)
        .map(|((shard, (dicts, subtrees)), part)| ShardStats {
            shard: shard.shard,
            candidate_roots: part.by_type.values().map(|(roots, _)| roots.len()).sum(),
            subtrees: *subtrees,
            patterns: dicts.values().map(TreeDict::len).sum(),
        })
        .collect();

    let candidate_roots: usize = per_shard.iter().map(|s| s.candidate_roots).sum();
    let mut subtrees_expanded: usize = per_shard.iter().map(|s| s.subtrees).sum();
    let mut patterns_seen = 0usize;
    let mut keys_interned = 0u64;
    let mut key_arena_bytes = 0u64;
    let mut global: Vec<RankedPattern> = Vec::new();
    let mut expansions = expansions;

    let types: Vec<TypeId> = n_r_global.keys().copied().collect();
    for &c in &types {
        let rate = rates[&c];
        // Merge the shards' per-type dictionaries in shard order.
        let dicts: Vec<TreeDict> = expansions
            .iter_mut()
            .map(|(d, _)| d.remove(&c).unwrap_or_else(|| TreeDict::new(ctx.m())))
            .collect();
        let dict = merge_shard_dicts(dicts, ctx.m(), cfg.max_rows);
        patterns_seen += dict.len();
        keys_interned += dict.keys_interned() as u64;
        key_arena_bytes += dict.arena_bytes() as u64;

        // Lines 9–10: estimated scores; keep the partition's top-k.
        let mut local: Vec<(Vec<u32>, crate::common::PatternGroup, f64)> = Vec::new();
        dict.drain_live(|key, group| {
            let est = group.acc.finish_estimated(cfg.scoring.aggregation, rate);
            local.push((key.to_vec(), group, est));
        });
        local.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        local.truncate(cfg.k);

        // Line 11: exact re-scoring for the estimated winners.
        for (key, group, _est) in local {
            let (score, num_trees, trees) = if rate >= 1.0 {
                (
                    group.acc.finish(cfg.scoring.aggregation),
                    group.acc.count as usize,
                    group.trees,
                )
            } else {
                let pattern_ids: Vec<PatternId> = key.iter().map(|&p| PatternId(p)).collect();
                let (acc, trees, rescored) =
                    exact_pattern_score(ctx, cfg, &partitions, c, &pattern_ids, &mut per_shard);
                subtrees_expanded += rescored;
                (
                    acc.finish(cfg.scoring.aggregation),
                    acc.count as usize,
                    trees,
                )
            };
            if num_trees == 0 {
                continue;
            }
            global.push(RankedPattern {
                pattern: ctx.decode_key(&key),
                score,
                num_trees,
                trees,
            });
        }
        // Keep the global queue bounded (paper: queue of size k).
        if global.len() > 4 * cfg.k.max(4) {
            global.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.key().cmp(&b.key()))
            });
            global.truncate(cfg.k);
        }
    }

    let hot = {
        let mut hot = ctx.hot_stats();
        hot.keys_interned = keys_interned;
        hot.key_arena_bytes = key_arena_bytes;
        hot
    };
    SearchResult {
        patterns: global,
        stats: QueryStats {
            candidate_roots,
            subtrees: subtrees_expanded,
            patterns: patterns_seen,
            combos_tried: patterns_seen,
            combos_pruned: 0,
            per_shard,
            hot,
            elapsed: t0.elapsed(),
        },
    }
    .finalize(cfg.k)
}

/// Exact score and subtrees of one tree pattern over a root partition
/// (type `c`), via `Paths(wᵢ, r, Pᵢ)` lookups (root-first index). The
/// partition's roots are walked shard by shard in ascending order, so the
/// materialized rows match a single-shard pass. Returns the accumulator,
/// rows, and the number of subtrees re-enumerated.
fn exact_pattern_score(
    ctx: &QueryContext<'_>,
    cfg: &SearchConfig,
    partitions: &[ShardPartition],
    c: TypeId,
    pattern: &[PatternId],
    per_shard: &mut [ShardStats],
) -> (ScoreAcc, Vec<crate::subtree::ValidSubtree>, usize) {
    let m = ctx.m();
    let mut acc = ScoreAcc::new();
    let mut trees = Vec::new();
    let mut rescored = 0usize;
    let mut slices: Vec<&[Posting]> = Vec::with_capacity(m);
    let mut scratch: Vec<&Posting> = Vec::with_capacity(m);
    let mut node_scratch: Vec<&[NodeId]> = Vec::with_capacity(m);
    for (shard_pos, part) in partitions.iter().enumerate() {
        let shard = &ctx.shards[shard_pos];
        let Some((roots, _)) = part.by_type.get(&c) else {
            continue;
        };
        let rescored_before = rescored;
        for &r in roots {
            slices.clear();
            let mut empty = false;
            for (i, w) in shard.words.iter().enumerate() {
                let s = w.paths_of_root_pattern(r, pattern[i]);
                if s.is_empty() {
                    empty = true;
                    break;
                }
                slices.push(s);
            }
            if empty {
                continue;
            }
            rescored += for_each_path_tuple(&slices, &mut scratch, |tuple| {
                if cfg.strict_trees {
                    node_scratch.clear();
                    for (i, p) in tuple.iter().enumerate() {
                        node_scratch.push(shard.words[i].nodes_of(p));
                    }
                    if !node_slices_form_tree(r, &node_scratch) {
                        return;
                    }
                }
                let score = cfg.scoring.tree_score_of(tuple);
                acc.push(score);
                if trees.len() < cfg.max_rows {
                    trees.push(materialize_tree(&shard.words, r, tuple, score));
                }
            });
        }
        // Same unit as the headline `stats.subtrees` (tuples enumerated),
        // so the per-shard split always sums to the total.
        per_shard[shard_pos].subtrees += rescored - rescored_before;
    }
    (acc, trees, rescored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_enum::linear_enum;
    use crate::Query;
    use patternkb_datagen::figure1;
    use patternkb_index::{build_indexes, BuildConfig};
    use patternkb_text::{SynonymTable, TextIndex};

    fn setup() -> (
        patternkb_graph::KnowledgeGraph,
        TextIndex,
        patternkb_index::PathIndexes,
    ) {
        let (g, _) = figure1();
        let t = TextIndex::build(&g, SynonymTable::new());
        let idx = build_indexes(
            &g,
            &t,
            &BuildConfig {
                d: 3,
                threads: 1,
                shards: 1,
            },
        );
        (g, t, idx)
    }

    #[test]
    fn exact_mode_matches_linear_enum() {
        let (g, t, idx) = setup();
        for query in [
            "database software company revenue",
            "revenue",
            "database company",
        ] {
            let q = Query::parse(&t, query).unwrap();
            let ctx = QueryContext::new(&g, &idx, &q).unwrap();
            let cfg = SearchConfig::top(100);
            let le = linear_enum(&ctx, &cfg);
            let tk = linear_enum_topk(&ctx, &cfg, &SamplingConfig::exact());
            assert_eq!(le.patterns.len(), tk.patterns.len(), "query {query}");
            for (a, b) in le.patterns.iter().zip(&tk.patterns) {
                assert_eq!(a.key(), b.key());
                assert!((a.score - b.score).abs() < 1e-9);
                assert_eq!(a.num_trees, b.num_trees);
            }
        }
    }

    #[test]
    fn always_sampling_rho_one_is_exact() {
        // Λ = 0 forces the sampling code path; ρ = 1 keeps every root, and
        // estimated == exact.
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let le = linear_enum(&ctx, &cfg);
        let tk = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 1.0, 1));
        assert_eq!(le.patterns.len(), tk.patterns.len());
        for (a, b) in le.patterns.iter().zip(&tk.patterns) {
            assert_eq!(a.key(), b.key());
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_scores_are_exact_for_reported_patterns() {
        // Whatever sampling does to the *selection*, reported scores are
        // recomputed exactly (line 11).
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(100);
        let exact = linear_enum(&ctx, &cfg);
        let sampled = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.5, 7));
        for p in &sampled.patterns {
            let reference = exact
                .patterns
                .iter()
                .find(|e| e.key() == p.key())
                .expect("sampled pattern exists exactly");
            assert!((reference.score - p.score).abs() < 1e-9);
            assert_eq!(reference.num_trees, p.num_trees);
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let (g, t, idx) = setup();
        let q = Query::parse(&t, "database software company revenue").unwrap();
        let ctx = QueryContext::new(&g, &idx, &q).unwrap();
        let cfg = SearchConfig::top(10);
        let a = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.4, 99));
        let b = linear_enum_topk(&ctx, &cfg, &SamplingConfig::new(0, 0.4, 99));
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.key(), y.key());
        }
    }

    #[test]
    fn root_sampling_is_order_free_and_roughly_calibrated() {
        // The per-root hash draw hits ≈ ρ of a large root population and is
        // a pure function of (seed, root).
        let n = 20_000u32;
        for rho in [0.1f64, 0.5, 0.9] {
            let hits = (0..n).filter(|&r| root_sampled(42, NodeId(r), rho)).count() as f64;
            let frac = hits / n as f64;
            assert!(
                (frac - rho).abs() < 0.02,
                "rho {rho}: sampled fraction {frac}"
            );
        }
        for r in (0..200).map(NodeId) {
            assert_eq!(root_sampled(7, r, 0.3), root_sampled(7, r, 0.3));
        }
    }

    #[test]
    #[should_panic(expected = "rho must be")]
    fn rejects_zero_rho() {
        SamplingConfig::new(10, 0.0, 1);
    }
}
